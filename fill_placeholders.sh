#!/bin/bash
# Creates placeholder lib.rs for crates that don't have one yet, so the
# workspace builds while crates are being implemented one at a time.
for f in crates/road crates/traffic crates/queue crates/microsim crates/traci crates/core crates/bench .; do
  if [ ! -f "$f/src/lib.rs" ]; then echo '//! placeholder' > "$f/src/lib.rs"; fi
done
