//! # velopt — queue-aware velocity optimization for pure electric vehicles
//!
//! A from-scratch Rust reproduction of *"Velocity Optimization of Pure
//! Electric Vehicles with Traffic Dynamics Consideration"* (Kang, Shen,
//! Sarker — ICDCS 2017).
//!
//! Prior eco-driving optimizers assume an EV can pass a traffic light the
//! instant it turns green. In reality the queue of waiting vehicles takes
//! seconds to discharge, so "optimal" profiles still brake and stop. This
//! system predicts the **queue length** in front of each light (deep-
//! learning traffic-volume prediction + a vehicle-movement discharge model)
//! and plans a velocity profile, via dynamic programming, that arrives at
//! every light inside the **queue-free window `T_q`** — no stops, no
//! unnecessary decelerations, measurably less energy.
//!
//! This crate is the facade: it re-exports the workspace's crates so
//! downstream users need a single dependency.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`common`] | `velopt-common` | units, stats, time series, RNG |
//! | [`energy`] | `velopt-ev-energy` | EV dynamics + battery model (Eq. 1–3) |
//! | [`road`] | `velopt-road` | corridors, signals, grades |
//! | [`traffic`] | `velopt-traffic` | volume feed + SAE predictor (Fig. 4) |
//! | [`queue`] | `velopt-queue` | VM/QL models, `T_q` windows (Eq. 4–6) |
//! | [`optimizer`] | `velopt-core` | the queue-aware DP (Eq. 7–12) |
//! | [`cloud`] | `velopt-cloud` | the vehicular-cloud optimization service |
//! | [`microsim`] | `velopt-microsim` | Krauss traffic simulator (SUMO substitute) |
//! | [`traci`] | `velopt-traci` | TraCI wire protocol client + server |
//! | [`cosim`] | `velopt-cosim` | fleet co-simulation: microsim EVs replanning through the cloud |
//!
//! # Quickstart
//!
//! ```
//! # fn main() -> velopt::Result<()> {
//! use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};
//!
//! // The paper's US-25 experiment: 4.2 km, one stop sign, two lights.
//! let system = VelocityOptimizationSystem::new(SystemConfig::us25())?;
//! let profile = system.optimize()?;
//! assert_eq!(profile.window_violations, 0);
//! println!(
//!     "trip: {:.0} s, energy: {:.1} mAh",
//!     profile.trip_time.value(),
//!     profile.total_energy.to_milliamp_hours()
//! );
//! # Ok(())
//! # }
//! ```

pub use velopt_cloud as cloud;
pub use velopt_common as common;
pub use velopt_core as optimizer;
pub use velopt_cosim as cosim;
pub use velopt_ev_energy as energy;
pub use velopt_microsim as microsim;
pub use velopt_queue as queue;
pub use velopt_road as road;
pub use velopt_traci as traci;
pub use velopt_traffic as traffic;

pub use velopt_common::{Error, Result};
