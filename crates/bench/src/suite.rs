//! The continuous-benchmark suite behind the `bench-suite` binary.
//!
//! Criterion answers "how fast is this on my machine, interactively"; this
//! module answers "did the solver get slower since the committed baseline"
//! in CI. It runs a fixed, seeded scenario matrix over the DP solver, the
//! SAE traffic predictor's mini-batch kernels, the cloud reactor, and the
//! sharded microsimulation network, summarizes each scenario as wall-time
//! percentiles plus the component's own work counters (DP states and memo
//! traffic; gemm FLOPs and scratch reuse/allocations; buffer-pool reuse;
//! vehicle-steps), serializes the report as JSON (`BENCH_dp.json`),
//! and compares two reports under a relative tolerance so a perf
//! regression fails the build instead of landing silently.
//!
//! Everything here is deterministic: starts are jittered with a fixed
//! [`SplitMix64`] seed, so two runs of the same build solve bit-identical
//! problems and only the wall-clock numbers move.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use telemetry::json::Json;
use velopt_cloud::protocol::{read_frame, tags, write_frame};
use velopt_cloud::{CloudServer, PredictBatchRequest, PredictQuery, ServerConfig, TripRequest};
use velopt_common::rng::SplitMix64;
use velopt_common::stats::Percentiles;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_common::{Error, Result};
use velopt_core::batch::PlanRequest;
use velopt_core::dp::{DpConfig, DpOptimizer, SolverArena, StartState, TimeHandling};
use velopt_core::metrics::SolverMetrics;
use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt_core::replan::{ReplanConfig, Replanner};
use velopt_core::route::{RouteConfig, RouteMetrics, RouteQuery, Router};
use velopt_core::windows::green_only_constraints;
use velopt_ev_energy::{EnergyModel, VehicleParams};
use velopt_microsim::{
    CorridorSpec, KraussParams, Network, SimConfig, Simulation, StepMetrics, VehicleMix,
};
use velopt_queue::QueueParams;
use velopt_road::{CorridorTemplate, NetworkTemplate, Road, RoadBuilder};
use velopt_traffic::nn::SgdConfig;
use velopt_traffic::{
    SaeConfig, SaePredictor, SaePredictorConfig, TrainMetrics, VolumeGenerator, VolumePredictor,
    VolumeQuery, VolumeScratch,
};

/// The fixed seed every scenario derives its jitter streams from.
pub const BENCH_SEED: u64 = 0x9E37_2026;

/// How much work the matrix does per scenario.
#[derive(Debug, Clone, Copy)]
pub struct MatrixSpec {
    /// Solves per single-trip scenario.
    pub trip_iters: usize,
    /// Trips per batch request.
    pub batch_size: usize,
    /// Batch requests timed.
    pub batch_iters: usize,
    /// Replanner control ticks timed.
    pub replan_ticks: usize,
    /// Full SAE trainings timed.
    pub sae_train_iters: usize,
    /// Batched multi-horizon rollouts timed.
    pub sae_predict_iters: usize,
    /// Simultaneous connections held open against the cloud reactor.
    pub cloud_clients: usize,
    /// Lockstep request rounds timed across those connections.
    pub cloud_rounds: usize,
    /// Vehicles in the co-simulation replan storm (the wave size; the
    /// coalescing server's `batch_max` is pinned to it so every round is
    /// exactly one flush).
    pub cosim_vehicles: usize,
    /// Distinct trip keys the storm's vehicles share (its corridors).
    pub cosim_corridors: usize,
    /// Lockstep storm rounds timed, each with fresh trip keys.
    pub cosim_rounds: usize,
    /// Grid side of the seeded routing network (`route_grid²` junctions).
    pub route_grid: usize,
    /// Timed routing iterations; each runs the seeded query set against a
    /// cold router, so the work counters are per-iteration invariant.
    pub route_iters: usize,
    /// Corridors in the sharded microsimulation network.
    pub network_corridors: usize,
    /// Untimed simulated seconds that fill the network with traffic before
    /// the timed rounds start.
    pub network_warmup_s: f64,
    /// Timed rounds, each advancing the network by one simulated second.
    pub network_rounds: usize,
    /// Untimed simulated seconds that fill the single-corridor step-engine
    /// scenario with traffic before its timed rounds.
    pub step_warmup_s: f64,
    /// Timed rounds of the step-engine scenario, alternating between the
    /// forced-scalar and auto-dispatch twin simulations.
    pub step_rounds: usize,
    /// Simulated seconds each step-engine round advances (ten ticks per
    /// second); long enough that a round is far above timer noise.
    pub step_round_s: usize,
}

impl MatrixSpec {
    /// The full matrix (local runs, baseline refreshes).
    pub fn full() -> Self {
        Self {
            trip_iters: 12,
            batch_size: 64,
            batch_iters: 4,
            replan_ticks: 120,
            sae_train_iters: 10,
            sae_predict_iters: 16,
            cloud_clients: 256,
            cloud_rounds: 6,
            cosim_vehicles: 48,
            cosim_corridors: 6,
            cosim_rounds: 5,
            route_grid: 8,
            route_iters: 4,
            network_corridors: 128,
            network_warmup_s: 600.0,
            network_rounds: 24,
            step_warmup_s: 2700.0,
            step_rounds: 24,
            step_round_s: 5,
        }
    }

    /// The reduced matrix CI's `bench-smoke` job runs on every push.
    pub fn quick() -> Self {
        Self {
            trip_iters: 5,
            batch_size: 16,
            batch_iters: 3,
            replan_ticks: 48,
            sae_train_iters: 5,
            sae_predict_iters: 8,
            cloud_clients: 64,
            cloud_rounds: 4,
            cosim_vehicles: 16,
            cosim_corridors: 4,
            cosim_rounds: 3,
            route_grid: 8,
            route_iters: 2,
            network_corridors: 12,
            network_warmup_s: 120.0,
            network_rounds: 6,
            step_warmup_s: 900.0,
            step_rounds: 8,
            step_round_s: 5,
        }
    }
}

/// One scenario's summary: wall-time spread plus the solver work that
/// produced it (so a "faster because it searched less" regression is
/// visible next to the timing win).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Stable scenario name (the comparator joins on it).
    pub name: String,
    /// Timed iterations behind the percentiles.
    pub iterations: u64,
    /// Seconds per iteration.
    pub wall_seconds: Percentiles,
    /// Total DP states relaxed across all iterations.
    pub states_expanded: u64,
    /// Total candidate transitions pruned across all iterations.
    pub states_pruned: u64,
    /// Layer allocations avoided via arena reuse.
    pub arena_reuse_hits: u64,
    /// Layer buffers freshly allocated.
    pub arena_allocations: u64,
    /// Transition-cost tables served from the arena's memo.
    pub memo_hits: u64,
    /// Transition-cost tables built from the energy model.
    pub memo_misses: u64,
    /// Energy-model segment evaluations across all iterations (zero once
    /// the memo is warm).
    pub energy_evals: u64,
    /// Speed rows the reachability masks proved dead and skipped.
    pub rows_skipped: u64,
    /// Speed rows relaxed through the AVX2 microkernels (DP scenarios;
    /// zero under forced-scalar dispatch). Chunk-geometry dependent, so
    /// reported for visibility but never gated.
    pub simd_rows: u64,
    /// Window refreshes served by incremental dirty-suffix repair (the
    /// `replan_refresh` scenario; zero elsewhere). The refresh schedule is
    /// seeded and the solver deterministic, so the per-iteration count is
    /// machine-invariant and `--check-work` floors it.
    pub repair_hits: u64,
    /// Window refreshes that fell back to a full retention re-solve.
    pub repair_full_resolves: u64,
    /// DP layers the repair path retained instead of re-relaxing.
    pub repair_layers_skipped: u64,
    /// Median scalar-dispatch wall time divided by the SIMD median for the
    /// same seeded workload — a same-run ratio, so machine speed cancels
    /// out (zero for scenarios that time only one dispatch).
    pub simd_speedup: f64,
    /// Median from-scratch refresh wall time divided by the repair-enabled
    /// median over the same window schedule — a same-run ratio (zero for
    /// non-refresh scenarios).
    pub repair_speedup: f64,
    /// Multiply-add FLOPs through the traffic gemm kernels (SAE scenarios;
    /// zero for the DP scenarios).
    pub gemm_flops: u64,
    /// Training/inference scratch geometries served from existing buffers.
    pub scratch_reuse_hits: u64,
    /// Scratch geometries that required fresh allocations (zero in steady
    /// state for the batched-inference scenario).
    pub scratch_allocations: u64,
    /// Cloud response buffers served from the per-shard pools (the
    /// `cloud_serve` scenario; zero elsewhere).
    pub buf_reuse: u64,
    /// Cloud response buffers freshly allocated (zero in steady state once
    /// the pools are warm).
    pub buf_alloc: u64,
    /// Plan responses that skipped `encode_profile` by cloning the cached
    /// frame bytes.
    pub plan_encode_skipped: u64,
    /// Identical in-flight trip requests folded into another waiter's
    /// solve by the coalescer (the `cloud_cosim` scenario; zero
    /// elsewhere). The storm is seeded and flushes on an exact waiter
    /// count, so this is machine-invariant.
    pub coalesce_hits: u64,
    /// Fresh DP solves the coalescer dispatched (distinct keys per flush).
    pub coalesce_flights: u64,
    /// Coalescing windows flushed to the batch solver.
    pub batch_flushes: u64,
    /// Median round time of the same storm served without coalescing,
    /// divided by the coalesced median — a same-run ratio, so machine
    /// speed cancels out (zero for non-cosim scenarios).
    pub storm_speedup: f64,
    /// Vehicle-steps executed by the sharded network during the timed
    /// rounds (the `microsim_network` scenario; zero elsewhere). The
    /// network is bit-deterministic across shard counts, so this is
    /// machine-invariant.
    pub vehicles_stepped: u64,
    /// Junction handoffs routed during the timed rounds (zero elsewhere).
    pub network_handoffs: u64,
    /// Full DP solves the router requested from its edge-cost oracle (the
    /// `route_plan` scenario; zero elsewhere). The network and query set
    /// are seeded and the search deterministic, so the per-iteration count
    /// is machine-invariant and `--check-work` ceilings it.
    pub route_oracle_calls: u64,
    /// Edge traversals the router discarded on their certified `emin`
    /// lower bound alone, before any oracle evaluation.
    pub route_edges_pruned: u64,
    /// Edge traversals priced from the (corridor class, departure bin)
    /// plan memo without touching the oracle.
    pub route_plan_memo_hits: u64,
    /// Oracle calls of the featureless Dijkstra sweep (lower bounds, plan
    /// memo, and batching all off) divided by the full router's, over the
    /// identical seeded query set — a same-run work ratio, so it is
    /// machine-invariant (zero for non-routing scenarios).
    pub route_oracle_ratio: f64,
    /// Vehicle lanes the microsim step engine evaluated through the AVX2
    /// Krauss kernel during the timed rounds (the microsim scenarios; zero
    /// elsewhere). Dispatch-dependent — zero on scalar hosts or under
    /// `VELOPT_MICROSIM_SIMD=off` — so reported for visibility but never
    /// gated; the gated quantity is the dispatch-invariant lane total.
    pub sim_simd_lanes: u64,
    /// Vehicle lanes evaluated through the portable Krauss kernel (lane 0,
    /// ragged tails, forced-scalar runs). `sim_simd_lanes +
    /// sim_scalar_lanes` is the dispatch-invariant vehicle-step total the
    /// work gate floors alongside `vehicles_stepped`.
    pub sim_scalar_lanes: u64,
    /// Steps that grew the microsim's pooled scratch during the timed
    /// rounds. The timed rounds run after warm-up, so this is the step
    /// engine's zero-steady-state-allocation pin: `--check-work` ceilings
    /// it at the baseline.
    pub sim_arena_grows: u64,
    /// Median forced-scalar wall time of the identical seeded microsim
    /// workload divided by the auto-dispatch median — a same-run ratio
    /// measured back-to-back, so machine speed cancels out (zero for
    /// non-microsim scenarios).
    pub microsim_simd_speedup: f64,
}

impl ScenarioResult {
    fn from_samples(name: &str, samples: &[f64], metrics: &SolverMetrics) -> Result<Self> {
        Ok(Self {
            name: name.to_string(),
            iterations: samples.len() as u64,
            wall_seconds: Percentiles::from_samples(samples)?,
            states_expanded: metrics.states_expanded,
            states_pruned: metrics.states_pruned,
            arena_reuse_hits: metrics.arena_reuse_hits,
            arena_allocations: metrics.arena_allocations,
            memo_hits: metrics.memo_hits,
            memo_misses: metrics.memo_misses,
            energy_evals: metrics.energy_evals,
            rows_skipped: metrics.rows_skipped,
            simd_rows: metrics.simd_rows,
            repair_hits: metrics.repair_hits,
            repair_full_resolves: metrics.repair_full_resolves,
            repair_layers_skipped: metrics.repair_layers_skipped,
            simd_speedup: 0.0,
            repair_speedup: 0.0,
            gemm_flops: 0,
            scratch_reuse_hits: 0,
            scratch_allocations: 0,
            buf_reuse: 0,
            buf_alloc: 0,
            plan_encode_skipped: 0,
            coalesce_hits: 0,
            coalesce_flights: 0,
            batch_flushes: 0,
            storm_speedup: 0.0,
            vehicles_stepped: 0,
            network_handoffs: 0,
            route_oracle_calls: 0,
            route_edges_pruned: 0,
            route_plan_memo_hits: 0,
            route_oracle_ratio: 0.0,
            sim_simd_lanes: 0,
            sim_scalar_lanes: 0,
            sim_arena_grows: 0,
            microsim_simd_speedup: 0.0,
        })
    }

    /// Summary for a traffic-predictor scenario: wall percentiles plus the
    /// trainer's deterministic work counters; the DP counters stay zero.
    fn from_traffic_samples(name: &str, samples: &[f64], metrics: &TrainMetrics) -> Result<Self> {
        Ok(Self {
            name: name.to_string(),
            iterations: samples.len() as u64,
            wall_seconds: Percentiles::from_samples(samples)?,
            states_expanded: 0,
            states_pruned: 0,
            arena_reuse_hits: 0,
            arena_allocations: 0,
            memo_hits: 0,
            memo_misses: 0,
            energy_evals: 0,
            rows_skipped: 0,
            simd_rows: 0,
            repair_hits: 0,
            repair_full_resolves: 0,
            repair_layers_skipped: 0,
            simd_speedup: 0.0,
            repair_speedup: 0.0,
            gemm_flops: metrics.gemm_flops,
            scratch_reuse_hits: metrics.scratch_reuse_hits,
            scratch_allocations: metrics.scratch_allocations,
            buf_reuse: 0,
            buf_alloc: 0,
            plan_encode_skipped: 0,
            coalesce_hits: 0,
            coalesce_flights: 0,
            batch_flushes: 0,
            storm_speedup: 0.0,
            vehicles_stepped: 0,
            network_handoffs: 0,
            route_oracle_calls: 0,
            route_edges_pruned: 0,
            route_plan_memo_hits: 0,
            route_oracle_ratio: 0.0,
            sim_simd_lanes: 0,
            sim_scalar_lanes: 0,
            sim_arena_grows: 0,
            microsim_simd_speedup: 0.0,
        })
    }

    /// Summary for the cloud serving scenario: wall percentiles over the
    /// lockstep rounds plus the server's steady-state buffer-pool and
    /// encode-skip deltas; the DP and gemm counters stay zero.
    fn from_cloud_samples(
        name: &str,
        samples: &[f64],
        buf_reuse: u64,
        buf_alloc: u64,
        plan_encode_skipped: u64,
    ) -> Result<Self> {
        Ok(Self {
            name: name.to_string(),
            iterations: samples.len() as u64,
            wall_seconds: Percentiles::from_samples(samples)?,
            states_expanded: 0,
            states_pruned: 0,
            arena_reuse_hits: 0,
            arena_allocations: 0,
            memo_hits: 0,
            memo_misses: 0,
            energy_evals: 0,
            rows_skipped: 0,
            simd_rows: 0,
            repair_hits: 0,
            repair_full_resolves: 0,
            repair_layers_skipped: 0,
            simd_speedup: 0.0,
            repair_speedup: 0.0,
            gemm_flops: 0,
            scratch_reuse_hits: 0,
            scratch_allocations: 0,
            buf_reuse,
            buf_alloc,
            plan_encode_skipped,
            coalesce_hits: 0,
            coalesce_flights: 0,
            batch_flushes: 0,
            storm_speedup: 0.0,
            vehicles_stepped: 0,
            network_handoffs: 0,
            route_oracle_calls: 0,
            route_edges_pruned: 0,
            route_plan_memo_hits: 0,
            route_oracle_ratio: 0.0,
            sim_simd_lanes: 0,
            sim_scalar_lanes: 0,
            sim_arena_grows: 0,
            microsim_simd_speedup: 0.0,
        })
    }

    /// Summary for the co-simulation storm scenario: wall percentiles over
    /// the coalesced lockstep rounds, the coalescer's deterministic
    /// counters, and the same-run speedup over uncoalesced dispatch; every
    /// other counter stays zero.
    fn from_cosim_samples(
        name: &str,
        samples: &[f64],
        coalesce_hits: u64,
        coalesce_flights: u64,
        batch_flushes: u64,
        storm_speedup: f64,
    ) -> Result<Self> {
        Ok(Self {
            name: name.to_string(),
            iterations: samples.len() as u64,
            wall_seconds: Percentiles::from_samples(samples)?,
            states_expanded: 0,
            states_pruned: 0,
            arena_reuse_hits: 0,
            arena_allocations: 0,
            memo_hits: 0,
            memo_misses: 0,
            energy_evals: 0,
            rows_skipped: 0,
            simd_rows: 0,
            repair_hits: 0,
            repair_full_resolves: 0,
            repair_layers_skipped: 0,
            simd_speedup: 0.0,
            repair_speedup: 0.0,
            gemm_flops: 0,
            scratch_reuse_hits: 0,
            scratch_allocations: 0,
            buf_reuse: 0,
            buf_alloc: 0,
            plan_encode_skipped: 0,
            coalesce_hits,
            coalesce_flights,
            batch_flushes,
            storm_speedup,
            vehicles_stepped: 0,
            network_handoffs: 0,
            route_oracle_calls: 0,
            route_edges_pruned: 0,
            route_plan_memo_hits: 0,
            route_oracle_ratio: 0.0,
            sim_simd_lanes: 0,
            sim_scalar_lanes: 0,
            sim_arena_grows: 0,
            microsim_simd_speedup: 0.0,
        })
    }

    /// Summary for the microsimulation scenarios: wall percentiles over the
    /// timed rounds, the simulator's deterministic work deltas, the step
    /// engine's kernel-lane split and pooled-scratch counters, and the
    /// same-run forced-scalar/auto speedup; every other counter stays zero.
    fn from_network_samples(
        name: &str,
        samples: &[f64],
        vehicles_stepped: u64,
        network_handoffs: u64,
        step_metrics: velopt_microsim::StepMetrics,
        microsim_simd_speedup: f64,
    ) -> Result<Self> {
        Ok(Self {
            name: name.to_string(),
            iterations: samples.len() as u64,
            wall_seconds: Percentiles::from_samples(samples)?,
            states_expanded: 0,
            states_pruned: 0,
            arena_reuse_hits: 0,
            arena_allocations: 0,
            memo_hits: 0,
            memo_misses: 0,
            energy_evals: 0,
            rows_skipped: 0,
            simd_rows: 0,
            repair_hits: 0,
            repair_full_resolves: 0,
            repair_layers_skipped: 0,
            simd_speedup: 0.0,
            repair_speedup: 0.0,
            gemm_flops: 0,
            scratch_reuse_hits: 0,
            scratch_allocations: 0,
            buf_reuse: 0,
            buf_alloc: 0,
            plan_encode_skipped: 0,
            coalesce_hits: 0,
            coalesce_flights: 0,
            batch_flushes: 0,
            storm_speedup: 0.0,
            vehicles_stepped,
            network_handoffs,
            route_oracle_calls: 0,
            route_edges_pruned: 0,
            route_plan_memo_hits: 0,
            route_oracle_ratio: 0.0,
            sim_simd_lanes: step_metrics.simd_lanes,
            sim_scalar_lanes: step_metrics.scalar_lanes,
            sim_arena_grows: step_metrics.arena_grows,
            microsim_simd_speedup,
        })
    }

    /// Summary for the routing scenario: wall percentiles over the cold
    /// searches, the router's deterministic work counters, and the same-run
    /// oracle-call ratio over featureless Dijkstra; every other counter
    /// stays zero.
    fn from_route_samples(
        name: &str,
        samples: &[f64],
        metrics: &RouteMetrics,
        route_oracle_ratio: f64,
    ) -> Result<Self> {
        Ok(Self {
            name: name.to_string(),
            iterations: samples.len() as u64,
            wall_seconds: Percentiles::from_samples(samples)?,
            states_expanded: 0,
            states_pruned: 0,
            arena_reuse_hits: 0,
            arena_allocations: 0,
            memo_hits: 0,
            memo_misses: 0,
            energy_evals: 0,
            rows_skipped: 0,
            simd_rows: 0,
            repair_hits: 0,
            repair_full_resolves: 0,
            repair_layers_skipped: 0,
            simd_speedup: 0.0,
            repair_speedup: 0.0,
            gemm_flops: 0,
            scratch_reuse_hits: 0,
            scratch_allocations: 0,
            buf_reuse: 0,
            buf_alloc: 0,
            plan_encode_skipped: 0,
            coalesce_hits: 0,
            coalesce_flights: 0,
            batch_flushes: 0,
            storm_speedup: 0.0,
            vehicles_stepped: 0,
            network_handoffs: 0,
            route_oracle_calls: metrics.oracle_calls,
            route_edges_pruned: metrics.edges_pruned,
            route_plan_memo_hits: metrics.plan_memo_hits,
            route_oracle_ratio,
            sim_simd_lanes: 0,
            sim_scalar_lanes: 0,
            sim_arena_grows: 0,
            microsim_simd_speedup: 0.0,
        })
    }

    /// Fraction of transition-table fetches served from the memo, in
    /// `[0, 1]`; `1.0` for a scenario that fetched no tables.
    pub fn memo_hit_rate(&self) -> f64 {
        let fetches = self.memo_hits + self.memo_misses;
        if fetches == 0 {
            return 1.0;
        }
        self.memo_hits as f64 / fetches as f64
    }

    /// Fraction of cloud response buffers served from the pools, in
    /// `[0, 1]`; `1.0` for a scenario with no buffer traffic.
    pub fn buffer_reuse_rate(&self) -> f64 {
        let total = self.buf_reuse + self.buf_alloc;
        if total == 0 {
            return 1.0;
        }
        self.buf_reuse as f64 / total as f64
    }

    /// Average waiters folded into each coalescing flush (requests per
    /// window); `0.0` for a scenario with no flushes. Collapsing toward
    /// `1.0` means every request flushed alone and batching is off.
    pub fn batch_fill(&self) -> f64 {
        if self.batch_flushes == 0 {
            return 0.0;
        }
        (self.coalesce_hits + self.coalesce_flights) as f64 / self.batch_flushes as f64
    }

    fn to_json(&self) -> Json {
        let p = &self.wall_seconds;
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("iterations".into(), Json::Num(self.iterations as f64)),
            (
                "wall_seconds".into(),
                Json::Obj(vec![
                    ("min".into(), Json::Num(p.min)),
                    ("p50".into(), Json::Num(p.p50)),
                    ("p90".into(), Json::Num(p.p90)),
                    ("p95".into(), Json::Num(p.p95)),
                    ("p99".into(), Json::Num(p.p99)),
                    ("max".into(), Json::Num(p.max)),
                ]),
            ),
            (
                "states_expanded".into(),
                Json::Num(self.states_expanded as f64),
            ),
            ("states_pruned".into(), Json::Num(self.states_pruned as f64)),
            (
                "arena_reuse_hits".into(),
                Json::Num(self.arena_reuse_hits as f64),
            ),
            (
                "arena_allocations".into(),
                Json::Num(self.arena_allocations as f64),
            ),
            ("memo_hits".into(), Json::Num(self.memo_hits as f64)),
            ("memo_misses".into(), Json::Num(self.memo_misses as f64)),
            ("memo_hit_rate".into(), Json::Num(self.memo_hit_rate())),
            ("energy_evals".into(), Json::Num(self.energy_evals as f64)),
            ("rows_skipped".into(), Json::Num(self.rows_skipped as f64)),
            ("simd_rows".into(), Json::Num(self.simd_rows as f64)),
            ("repair_hits".into(), Json::Num(self.repair_hits as f64)),
            (
                "repair_full_resolves".into(),
                Json::Num(self.repair_full_resolves as f64),
            ),
            (
                "repair_layers_skipped".into(),
                Json::Num(self.repair_layers_skipped as f64),
            ),
            ("simd_speedup".into(), Json::Num(self.simd_speedup)),
            ("repair_speedup".into(), Json::Num(self.repair_speedup)),
            ("gemm_flops".into(), Json::Num(self.gemm_flops as f64)),
            (
                "scratch_reuse_hits".into(),
                Json::Num(self.scratch_reuse_hits as f64),
            ),
            (
                "scratch_allocations".into(),
                Json::Num(self.scratch_allocations as f64),
            ),
            ("buf_reuse".into(), Json::Num(self.buf_reuse as f64)),
            ("buf_alloc".into(), Json::Num(self.buf_alloc as f64)),
            (
                "plan_encode_skipped".into(),
                Json::Num(self.plan_encode_skipped as f64),
            ),
            ("coalesce_hits".into(), Json::Num(self.coalesce_hits as f64)),
            (
                "coalesce_flights".into(),
                Json::Num(self.coalesce_flights as f64),
            ),
            ("batch_flushes".into(), Json::Num(self.batch_flushes as f64)),
            ("storm_speedup".into(), Json::Num(self.storm_speedup)),
            (
                "vehicles_stepped".into(),
                Json::Num(self.vehicles_stepped as f64),
            ),
            (
                "network_handoffs".into(),
                Json::Num(self.network_handoffs as f64),
            ),
            (
                "route_oracle_calls".into(),
                Json::Num(self.route_oracle_calls as f64),
            ),
            (
                "route_edges_pruned".into(),
                Json::Num(self.route_edges_pruned as f64),
            ),
            (
                "route_plan_memo_hits".into(),
                Json::Num(self.route_plan_memo_hits as f64),
            ),
            (
                "route_oracle_ratio".into(),
                Json::Num(self.route_oracle_ratio),
            ),
            (
                "sim_simd_lanes".into(),
                Json::Num(self.sim_simd_lanes as f64),
            ),
            (
                "sim_scalar_lanes".into(),
                Json::Num(self.sim_scalar_lanes as f64),
            ),
            (
                "sim_arena_grows".into(),
                Json::Num(self.sim_arena_grows as f64),
            ),
            (
                "microsim_simd_speedup".into(),
                Json::Num(self.microsim_simd_speedup),
            ),
        ])
    }

    fn from_json(value: &Json, index: usize) -> Result<Self> {
        let field = |key: &str| {
            value.get(key).and_then(Json::as_f64).ok_or_else(|| {
                Error::invalid_input(format!("scenario {index}: missing number {key:?}"))
            })
        };
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::invalid_input(format!("scenario {index}: missing \"name\"")))?
            .to_string();
        let wall = value.get("wall_seconds").ok_or_else(|| {
            Error::invalid_input(format!("scenario {index}: missing \"wall_seconds\""))
        })?;
        let pct = |key: &str| {
            wall.get(key).and_then(Json::as_f64).ok_or_else(|| {
                Error::invalid_input(format!("scenario {index}: missing wall_seconds.{key}"))
            })
        };
        let p90 = pct("p90")?;
        Ok(Self {
            name,
            iterations: field("iterations")? as u64,
            wall_seconds: Percentiles {
                min: pct("min")?,
                p50: pct("p50")?,
                p90,
                // p95 joined the format with the cloud scenario; an older
                // baseline reads its p90 (the field is never gated on).
                p95: wall.get("p95").and_then(Json::as_f64).unwrap_or(p90),
                p99: pct("p99")?,
                max: pct("max")?,
            },
            states_expanded: field("states_expanded")? as u64,
            states_pruned: field("states_pruned")? as u64,
            arena_reuse_hits: field("arena_reuse_hits")? as u64,
            arena_allocations: field("arena_allocations")? as u64,
            // Memo counters appeared after the format's first release, so a
            // pre-memo baseline simply reads as zero.
            memo_hits: optional(value, "memo_hits"),
            memo_misses: optional(value, "memo_misses"),
            energy_evals: optional(value, "energy_evals"),
            rows_skipped: optional(value, "rows_skipped"),
            // SIMD and repair counters appeared with the vectorized relax
            // kernels; older baselines read as zero, disabling their floors.
            simd_rows: optional(value, "simd_rows"),
            repair_hits: optional(value, "repair_hits"),
            repair_full_resolves: optional(value, "repair_full_resolves"),
            repair_layers_skipped: optional(value, "repair_layers_skipped"),
            simd_speedup: value
                .get("simd_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            repair_speedup: value
                .get("repair_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            // Traffic counters appeared with the SAE scenarios; older
            // baselines read as zero too.
            gemm_flops: optional(value, "gemm_flops"),
            scratch_reuse_hits: optional(value, "scratch_reuse_hits"),
            scratch_allocations: optional(value, "scratch_allocations"),
            // Cloud counters appeared with the serving scenario; older
            // baselines read as zero, which disables the reuse-rate gate.
            buf_reuse: optional(value, "buf_reuse"),
            buf_alloc: optional(value, "buf_alloc"),
            plan_encode_skipped: optional(value, "plan_encode_skipped"),
            // Coalescing counters appeared with the co-simulation storm
            // scenario; older baselines read as zero, disabling the
            // coalesce floors.
            coalesce_hits: optional(value, "coalesce_hits"),
            coalesce_flights: optional(value, "coalesce_flights"),
            batch_flushes: optional(value, "batch_flushes"),
            storm_speedup: value
                .get("storm_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            // Network counters appeared with the sharded microsimulation
            // scenario; older baselines read as zero, disabling the gate.
            vehicles_stepped: optional(value, "vehicles_stepped"),
            network_handoffs: optional(value, "network_handoffs"),
            // Routing counters appeared with the graph-routing scenario;
            // older baselines read as zero, disabling the route floors.
            route_oracle_calls: optional(value, "route_oracle_calls"),
            route_edges_pruned: optional(value, "route_edges_pruned"),
            route_plan_memo_hits: optional(value, "route_plan_memo_hits"),
            route_oracle_ratio: value
                .get("route_oracle_ratio")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            // Step-engine counters appeared with the SoA microsim rewrite;
            // older baselines read as zero, disabling the lane floor, the
            // arena-grow ceiling, and the microsim speedup gate.
            sim_simd_lanes: optional(value, "sim_simd_lanes"),
            sim_scalar_lanes: optional(value, "sim_scalar_lanes"),
            sim_arena_grows: optional(value, "sim_arena_grows"),
            microsim_simd_speedup: value
                .get("microsim_simd_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

/// Reads an optional numeric counter, defaulting to zero when the field is
/// absent (older reports predate the memo counters).
fn optional(value: &Json, key: &str) -> u64 {
    value.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// A full suite run: every scenario's summary, in matrix order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// One entry per scenario.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    /// Serializes the report (the `BENCH_dp.json` format).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![(
            "scenarios".into(),
            Json::Arr(self.scenarios.iter().map(ScenarioResult::to_json).collect()),
        )])
        .to_string()
    }

    /// Parses a report back.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] naming the defect — an empty or
    /// malformed document, a missing `scenarios` array, or a scenario with
    /// missing fields — never panics.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = Json::parse(text)
            .map_err(|e| Error::invalid_input(format!("malformed report: {e}")))?;
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::invalid_input("report has no \"scenarios\" array"))?;
        Ok(Self {
            scenarios: scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| ScenarioResult::from_json(s, i))
                .collect::<Result<Vec<_>>>()?,
        })
    }

    /// Looks a scenario up by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// What the comparator concluded about `current` vs `baseline`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Human-readable regression messages (non-empty = gate fails).
    pub regressions: Vec<String>,
    /// Scenarios in the current report the baseline does not know —
    /// warnings, not failures, so adding a scenario never blocks a PR.
    pub missing: Vec<String>,
    /// Scenarios compared and found within tolerance.
    pub passed: usize,
}

impl Comparison {
    /// `true` when at least one scenario regressed.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Absolute slack added on top of the relative tolerance, so scenarios
/// whose median is microseconds (the replanner's stale-plan ticks) are not
/// failed over scheduler noise that is huge relatively but meaningless
/// absolutely.
pub const ABSOLUTE_SLACK_SECONDS: f64 = 2e-3;

/// Absolute slack for the per-iteration states-expanded gate: one state
/// per iteration absorbs integer rounding when iteration counts differ
/// between the baseline refresh and the CI run.
pub const WORK_SLACK_STATES_PER_ITER: f64 = 1.0;

/// Absolute slack for the energy-evaluation gate: roughly one cold
/// transition-table build (`n_speeds²` lattice points), so a scenario that
/// legitimately pays one extra cold start does not trip the gate.
pub const WORK_SLACK_ENERGY_EVALS: f64 = 1024.0;

/// Absolute slack for the per-iteration gemm-FLOP gate: one small batched
/// forward, absorbing integer rounding when iteration counts differ.
pub const WORK_SLACK_FLOPS_PER_ITER: f64 = 1024.0;

/// Absolute slack for the per-iteration scratch-allocation gate: one
/// geometry rebuild, so a legitimate extra cold start does not trip it.
/// Anything beyond that means buffers stopped being recycled.
pub const WORK_SLACK_SCRATCH_ALLOCS_PER_ITER: f64 = 1.0;

/// Absolute slack for the per-iteration vehicle-steps gate: one vehicle
/// per iteration absorbs integer rounding when iteration counts differ.
/// The gate is a **floor** — the sharded network is bit-deterministic, so
/// a round that suddenly steps fewer vehicles means the scenario silently
/// shrank and its timing win is fake.
pub const WORK_SLACK_VEHICLE_STEPS_PER_ITER: f64 = 1.0;

/// Absolute slack for the per-iteration coalesce-hits floor: one folded
/// request per iteration absorbs integer rounding when iteration counts
/// differ. The floor catches single-flight dedupe silently disengaging —
/// the storm is seeded and flushes on an exact waiter count, so the hit
/// count per round is a constant of the scenario shape.
pub const WORK_SLACK_COALESCE_HITS_PER_ITER: f64 = 1.0;

/// Absolute slack for the batch-fill floor (average waiters per flush):
/// one request of headroom, so a single early timeout flush does not trip
/// the gate. Fill collapsing toward one means every trip dispatched alone
/// and the batching layer is off.
pub const WORK_SLACK_BATCH_FILL: f64 = 1.0;

/// Minimum same-run speedup of coalesced+batched storm serving over
/// uncoalesced dispatch at the same worker count. The ratio divides two
/// medians measured back-to-back on the same machine, so host speed
/// cancels out; falling below 2x means the coalescer stopped earning its
/// keep. The gate only applies when the baseline itself demonstrated the
/// floor, so reduced local runs never trip it on themselves.
pub const MIN_STORM_SPEEDUP: f64 = 2.0;

/// Absolute slack for the per-iteration repair-hits floor. The refresh
/// schedule is seeded and the solver deterministic, so nearly every timed
/// refresh should be served by dirty-suffix repair; one fallback per eight
/// ticks of headroom absorbs a legitimately unrepairable shift without
/// letting repair silently disengage (which would re-run the full DP every
/// tick and still "pass" on a fast machine).
pub const WORK_SLACK_REPAIR_HITS_PER_ITER: f64 = 0.125;

/// Minimum same-run speedup of SIMD dispatch over forced-scalar dispatch
/// on the seeded exact-solve workloads. The ratio divides two medians
/// measured back-to-back on the same machine, so host speed cancels out;
/// falling below 2x means the vectorized relax kernels stopped earning
/// their keep. The gate only applies when the baseline itself demonstrated
/// the floor, so scalar-only hosts never trip it on themselves.
pub const MIN_SIMD_SPEEDUP: f64 = 2.0;

/// Minimum same-run speedup of repair-enabled window refreshes over
/// from-scratch refreshes of the identical window schedule. Same-run
/// ratio, baseline-armed, like [`MIN_SIMD_SPEEDUP`]; falling below 3x
/// means incremental repair no longer beats re-solving.
pub const MIN_REPAIR_SPEEDUP: f64 = 3.0;

/// Absolute slack for the per-iteration route-oracle-call ceiling: one
/// solve per iteration absorbs integer rounding when iteration counts
/// differ between the baseline refresh and the CI run. The routing network
/// and query set are seeded and the search deterministic, so beyond that
/// slack a higher count means a pruning layer disengaged.
pub const WORK_SLACK_ROUTE_ORACLE_CALLS_PER_ITER: f64 = 1.0;

/// Minimum same-run ratio of featureless-Dijkstra oracle calls over the
/// full router's on the seeded routing network: the certified `emin`
/// lower bounds, the shared-segment plan memo, and batched frontier
/// evaluation together must keep at least 5x of the edge DP solves off
/// the oracle. The ratio divides two deterministic counters from the same
/// run, so host speed is irrelevant; the gate only applies when the
/// baseline itself cleared the floor, so reduced local matrices never
/// trip it on themselves.
pub const MIN_ROUTE_ORACLE_RATIO: f64 = 5.0;

/// Minimum same-run speedup of the microsim step engine's auto dispatch
/// over forced-scalar (`simd: false`) on the identical seeded traffic. The
/// ratio divides two per-round medians measured interleaved on the same
/// machine, so host speed and drift cancel out. The floor is deliberately
/// far below the lane kernels' isolated gain (the AVX2 Krauss lanes
/// microbenchmark at roughly 3x over scalar): Amdahl caps the whole-step
/// ratio because the constraint sweep, the RNG-ordered dawdle pass, the
/// collision guard, and the AoS write-back are dispatch-invariant scalar
/// work shared by both flavors, leaving a measured whole-step ratio near
/// 1.4x on the bench host. Falling below the floor therefore does not mean
/// "a bit slower" — it means the vectorized kernels stopped contributing
/// at all (dispatch regressed to scalar, or a kernel change destroyed the
/// win). Baseline-armed like [`MIN_SIMD_SPEEDUP`], so scalar-only hosts
/// never trip it on themselves.
pub const MIN_MICROSIM_SIMD_SPEEDUP: f64 = 1.15;

/// Absolute slack for the microsim pooled-scratch ceiling: one growth
/// across the timed rounds absorbs a legitimate high-water bump (a traffic
/// burst past the warm-up's maximum). Beyond that, the step arena stopped
/// reusing its capacity and per-tick allocation crept back into the hot
/// loop. Only applies when the baseline recorded step-engine lane traffic.
pub const WORK_SLACK_ARENA_GROWS: f64 = 1.0;

/// Absolute slack for the per-iteration kernel-lane floor: one lane per
/// iteration absorbs integer rounding when iteration counts differ. The
/// lane total (`sim_simd_lanes + sim_scalar_lanes`) is dispatch-invariant
/// and equals the vehicle-steps the engine executed, so a floor on it
/// catches the step engine silently dropping work.
pub const WORK_SLACK_SIM_LANES_PER_ITER: f64 = 1.0;

/// Minimum steady-state cloud buffer reuse rate. The `cloud_serve`
/// scenario's counters are deltas taken after a warm-up round, so nearly
/// every response should come from the pools; below this, response
/// allocation has crept back into the serving hot path. The gate only
/// applies when the baseline recorded buffer traffic, so pre-reactor
/// baselines do not trip it.
pub const MIN_BUF_REUSE_RATE: f64 = 0.90;

/// Compares a current report against a baseline: a scenario regresses when
/// its median wall time exceeds the baseline median by **strictly more**
/// than `tolerance` (so `tolerance = 0.15` allows up to exactly +15%),
/// with [`ABSOLUTE_SLACK_SECONDS`] of headroom for sub-millisecond medians.
///
/// Work counters are gated too, under the same tolerance, because the
/// solver is deterministic and a work regression is a real regression even
/// when the wall clock hides it on a fast machine:
///
/// * `states_expanded`, normalized per iteration (every iteration solves
///   the identical problem, so the per-iteration count is machine- and
///   iteration-count-invariant), with [`WORK_SLACK_STATES_PER_ITER`];
/// * `energy_evals`, compared in absolute terms with
///   [`WORK_SLACK_ENERGY_EVALS`] — with a working memo the total is one
///   cold build regardless of iteration count, and a broken memo scales it
///   by the iteration count, which is exactly what the gate should catch.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for a baseline with no scenarios (an
/// empty gate would vacuously pass) or a negative/non-finite tolerance.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> Result<Comparison> {
    if baseline.scenarios.is_empty() {
        return Err(Error::invalid_input(
            "baseline contains no scenarios; refusing to compare against an empty gate",
        ));
    }
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(Error::invalid_input(format!(
            "tolerance must be a non-negative finite fraction, got {tolerance}"
        )));
    }
    let mut outcome = Comparison::default();
    for scenario in &current.scenarios {
        let Some(base) = baseline.scenario(&scenario.name) else {
            outcome.missing.push(scenario.name.clone());
            continue;
        };
        let before = outcome.regressions.len();
        let limit = base.wall_seconds.p50 * (1.0 + tolerance) + ABSOLUTE_SLACK_SECONDS;
        if scenario.wall_seconds.p50 > limit {
            outcome.regressions.push(format!(
                "{}: median {:.4}s exceeds baseline {:.4}s by more than {:.0}% (limit {:.4}s)",
                scenario.name,
                scenario.wall_seconds.p50,
                base.wall_seconds.p50,
                tolerance * 100.0,
                limit,
            ));
        }
        work_regressions(scenario, base, tolerance, &mut outcome.regressions);
        if outcome.regressions.len() == before {
            outcome.passed += 1;
        }
    }
    Ok(outcome)
}

/// Appends work-counter regression messages for one scenario pair.
fn work_regressions(
    scenario: &ScenarioResult,
    base: &ScenarioResult,
    tolerance: f64,
    regressions: &mut Vec<String>,
) {
    let per_iter = |v: u64, iters: u64| v as f64 / iters.max(1) as f64;
    let current_states = per_iter(scenario.states_expanded, scenario.iterations);
    let base_states = per_iter(base.states_expanded, base.iterations);
    let states_limit = base_states * (1.0 + tolerance) + WORK_SLACK_STATES_PER_ITER;
    if current_states > states_limit {
        regressions.push(format!(
            "{}: {:.0} states expanded per iteration exceeds baseline {:.0} \
             by more than {:.0}% (limit {:.0})",
            scenario.name,
            current_states,
            base_states,
            tolerance * 100.0,
            states_limit,
        ));
    }
    let evals_limit = base.energy_evals as f64 * (1.0 + tolerance) + WORK_SLACK_ENERGY_EVALS;
    if scenario.energy_evals as f64 > evals_limit {
        regressions.push(format!(
            "{}: {} energy evaluations exceeds baseline {} by more than {:.0}% \
             (limit {:.0}) — is the transition memo still engaged?",
            scenario.name,
            scenario.energy_evals,
            base.energy_evals,
            tolerance * 100.0,
            evals_limit,
        ));
    }
    let current_flops = per_iter(scenario.gemm_flops, scenario.iterations);
    let base_flops = per_iter(base.gemm_flops, base.iterations);
    let flops_limit = base_flops * (1.0 + tolerance) + WORK_SLACK_FLOPS_PER_ITER;
    if current_flops > flops_limit {
        regressions.push(format!(
            "{}: {:.0} gemm FLOPs per iteration exceeds baseline {:.0} \
             by more than {:.0}% (limit {:.0})",
            scenario.name,
            current_flops,
            base_flops,
            tolerance * 100.0,
            flops_limit,
        ));
    }
    let current_allocs = per_iter(scenario.scratch_allocations, scenario.iterations);
    let base_allocs = per_iter(base.scratch_allocations, base.iterations);
    let allocs_limit = base_allocs * (1.0 + tolerance) + WORK_SLACK_SCRATCH_ALLOCS_PER_ITER;
    if current_allocs > allocs_limit {
        regressions.push(format!(
            "{}: {:.1} scratch allocations per iteration exceeds baseline {:.1} \
             by more than {:.0}% (limit {:.1}) — are the arenas still recycled?",
            scenario.name,
            current_allocs,
            base_allocs,
            tolerance * 100.0,
            allocs_limit,
        ));
    }
    // A floor, not a ceiling: the network is deterministic, so stepping
    // fewer vehicles than the baseline means the scenario lost traffic
    // (broken arrivals, dropped handoffs) and its wall time is not
    // comparable. Only applies when the baseline recorded vehicle traffic.
    let current_stepped = per_iter(scenario.vehicles_stepped, scenario.iterations);
    let base_stepped = per_iter(base.vehicles_stepped, base.iterations);
    let stepped_floor =
        base_stepped * (1.0 - tolerance.min(1.0)) - WORK_SLACK_VEHICLE_STEPS_PER_ITER;
    if base_stepped > 0.0 && current_stepped < stepped_floor {
        regressions.push(format!(
            "{}: {:.0} vehicle-steps per iteration fell below baseline {:.0} \
             by more than {:.0}% (floor {:.0}) — did the network lose traffic?",
            scenario.name,
            current_stepped,
            base_stepped,
            tolerance * 100.0,
            stepped_floor,
        ));
    }
    // Floor on the step engine's dispatch-invariant lane total, and a
    // ceiling on its pooled-scratch growths, both only when the baseline
    // recorded step-engine traffic (pre-SoA baselines read zero). The lane
    // split itself (simd vs scalar) is host-dependent and never gated.
    let lane_total = |s: &ScenarioResult| s.sim_simd_lanes + s.sim_scalar_lanes;
    let current_lanes = per_iter(lane_total(scenario), scenario.iterations);
    let base_lanes = per_iter(lane_total(base), base.iterations);
    let lanes_floor = base_lanes * (1.0 - tolerance.min(1.0)) - WORK_SLACK_SIM_LANES_PER_ITER;
    if base_lanes > 0.0 && current_lanes < lanes_floor {
        regressions.push(format!(
            "{}: {:.0} kernel lanes per iteration fell below baseline {:.0} \
             by more than {:.0}% (floor {:.0}) — did the step engine lose traffic?",
            scenario.name,
            current_lanes,
            base_lanes,
            tolerance * 100.0,
            lanes_floor,
        ));
    }
    let grows_limit = base.sim_arena_grows as f64 * (1.0 + tolerance) + WORK_SLACK_ARENA_GROWS;
    if base_lanes > 0.0 && scenario.sim_arena_grows as f64 > grows_limit {
        regressions.push(format!(
            "{}: {} step-arena growths exceeds baseline {} by more than {:.0}% \
             (limit {:.0}) — is the pooled step scratch still reused?",
            scenario.name,
            scenario.sim_arena_grows,
            base.sim_arena_grows,
            tolerance * 100.0,
            grows_limit,
        ));
    }
    // Absolute floor on the microsim same-run speedup, baseline-armed like
    // the DP SIMD gate: once a baseline demonstrated the lane kernels
    // beating forced-scalar on this scenario, losing that is a regression
    // even though the wall clock alone could hide it.
    if base.microsim_simd_speedup >= MIN_MICROSIM_SIMD_SPEEDUP
        && scenario.microsim_simd_speedup < MIN_MICROSIM_SIMD_SPEEDUP
    {
        regressions.push(format!(
            "{}: microsim SIMD speedup {:.2}x fell below the {:.1}x floor \
             (baseline {:.2}x) — the lane kernels no longer beat scalar",
            scenario.name,
            scenario.microsim_simd_speedup,
            MIN_MICROSIM_SIMD_SPEEDUP,
            base.microsim_simd_speedup,
        ));
    }
    // Floor on incremental-repair engagement: the refresh schedule is
    // seeded and the solver deterministic, so hits per iteration are a
    // constant of the scenario shape; falling below the baseline means
    // refreshes quietly degraded to full re-solves. Only applies when the
    // baseline recorded repair traffic.
    let current_repairs = per_iter(scenario.repair_hits, scenario.iterations);
    let base_repairs = per_iter(base.repair_hits, base.iterations);
    let repairs_floor = base_repairs * (1.0 - tolerance.min(1.0)) - WORK_SLACK_REPAIR_HITS_PER_ITER;
    if base_repairs > 0.0 && current_repairs < repairs_floor {
        regressions.push(format!(
            "{}: {:.2} repair hits per iteration fell below baseline {:.2} \
             by more than {:.0}% (floor {:.2}) — are refreshes still repaired \
             instead of re-solved?",
            scenario.name,
            current_repairs,
            base_repairs,
            tolerance * 100.0,
            repairs_floor,
        ));
    }
    // Absolute floors on the same-run speedup ratios, baseline-armed like
    // the storm gate below: once a baseline demonstrated the SIMD or
    // repair win on this scenario, losing it is a regression even though
    // the wall clock alone could hide it on a faster machine.
    if base.simd_speedup >= MIN_SIMD_SPEEDUP && scenario.simd_speedup < MIN_SIMD_SPEEDUP {
        regressions.push(format!(
            "{}: SIMD speedup {:.2}x fell below the {:.1}x floor \
             (baseline {:.2}x) — vectorized relaxation no longer beats scalar",
            scenario.name, scenario.simd_speedup, MIN_SIMD_SPEEDUP, base.simd_speedup,
        ));
    }
    if base.repair_speedup >= MIN_REPAIR_SPEEDUP && scenario.repair_speedup < MIN_REPAIR_SPEEDUP {
        regressions.push(format!(
            "{}: repair speedup {:.2}x fell below the {:.1}x floor \
             (baseline {:.2}x) — incremental repair no longer beats re-solving",
            scenario.name, scenario.repair_speedup, MIN_REPAIR_SPEEDUP, base.repair_speedup,
        ));
    }
    // Ceiling on the router's oracle traffic: the routing network and its
    // query set are seeded, so the per-iteration solve count is a constant
    // of the build; growing past the baseline means the lower bounds, the
    // plan memo, or batched evaluation stopped deduplicating work.
    let current_oracle = per_iter(scenario.route_oracle_calls, scenario.iterations);
    let base_oracle = per_iter(base.route_oracle_calls, base.iterations);
    let oracle_limit = base_oracle * (1.0 + tolerance) + WORK_SLACK_ROUTE_ORACLE_CALLS_PER_ITER;
    if current_oracle > oracle_limit {
        regressions.push(format!(
            "{}: {:.0} route oracle calls per iteration exceeds baseline {:.0} \
             by more than {:.0}% (limit {:.0}) — are the emin bounds and plan \
             memo still engaged?",
            scenario.name,
            current_oracle,
            base_oracle,
            tolerance * 100.0,
            oracle_limit,
        ));
    }
    // Absolute floor on the same-run oracle-call ratio, baseline-armed
    // like the speedup gates: once a baseline demonstrated the router
    // doing 5x less oracle work than featureless Dijkstra, losing that
    // is a regression even though the wall clock could hide it.
    if base.route_oracle_ratio >= MIN_ROUTE_ORACLE_RATIO
        && scenario.route_oracle_ratio < MIN_ROUTE_ORACLE_RATIO
    {
        regressions.push(format!(
            "{}: route oracle ratio {:.2}x fell below the {:.1}x floor \
             (baseline {:.2}x) — certified pruning no longer beats Dijkstra",
            scenario.name,
            scenario.route_oracle_ratio,
            MIN_ROUTE_ORACLE_RATIO,
            base.route_oracle_ratio,
        ));
    }
    // Absolute floor, not a relative gate: steady-state serving must keep
    // recycling response buffers regardless of what the baseline measured.
    if base.buf_reuse + base.buf_alloc > 0
        && scenario.buf_reuse + scenario.buf_alloc > 0
        && scenario.buffer_reuse_rate() < MIN_BUF_REUSE_RATE
    {
        regressions.push(format!(
            "{}: buffer reuse rate {:.1}% fell below the {:.0}% floor \
             ({} reuses vs {} allocations) — is the response pool still engaged?",
            scenario.name,
            scenario.buffer_reuse_rate() * 100.0,
            MIN_BUF_REUSE_RATE * 100.0,
            scenario.buf_reuse,
            scenario.buf_alloc,
        ));
    }
    // Floors for the co-simulation storm. The scenario is seeded and the
    // coalescing window flushes on an exact waiter count, so hits per
    // iteration and waiters per flush are constants of the shape; falling
    // below the baseline means dedupe or batching silently disengaged.
    // Each floor only applies when the baseline recorded that traffic.
    let current_hits = per_iter(scenario.coalesce_hits, scenario.iterations);
    let base_hits = per_iter(base.coalesce_hits, base.iterations);
    let hits_floor = base_hits * (1.0 - tolerance.min(1.0)) - WORK_SLACK_COALESCE_HITS_PER_ITER;
    if base_hits > 0.0 && current_hits < hits_floor {
        regressions.push(format!(
            "{}: {:.0} coalesce hits per iteration fell below baseline {:.0} \
             by more than {:.0}% (floor {:.0}) — is single-flight dedupe still engaged?",
            scenario.name,
            current_hits,
            base_hits,
            tolerance * 100.0,
            hits_floor,
        ));
    }
    let fill_floor = base.batch_fill() * (1.0 - tolerance.min(1.0)) - WORK_SLACK_BATCH_FILL;
    if base.batch_flushes > 0 && scenario.batch_flushes > 0 && scenario.batch_fill() < fill_floor {
        regressions.push(format!(
            "{}: batch fill {:.1} waiters per flush fell below baseline {:.1} \
             by more than {:.0}% (floor {:.1}) — did batching collapse to singles?",
            scenario.name,
            scenario.batch_fill(),
            base.batch_fill(),
            tolerance * 100.0,
            fill_floor,
        ));
    }
    // Absolute floor: coalesced serving must stay at least MIN_STORM_SPEEDUP
    // times faster than uncoalesced dispatch of the same storm. Applies
    // only when the baseline itself cleared the floor, so a reduced local
    // matrix never fails against its own report.
    if base.storm_speedup >= MIN_STORM_SPEEDUP && scenario.storm_speedup < MIN_STORM_SPEEDUP {
        regressions.push(format!(
            "{}: storm speedup {:.2}x fell below the {:.1}x floor \
             (baseline {:.2}x) — coalescing no longer beats singles dispatch",
            scenario.name, scenario.storm_speedup, MIN_STORM_SPEEDUP, base.storm_speedup,
        ));
    }
}

/// Work-only comparison at **zero tolerance**: flags any scenario whose
/// deterministic work counters exceed the baseline (beyond integer slack),
/// ignoring wall time entirely. The committed baseline records the
/// memoized + pruned solver's reduced `states_expanded`, so this pins that
/// reduction — a change that re-inflates the search fails even on a noisy
/// shared runner, where the wall-clock gate needs generous tolerance.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for a baseline with no scenarios.
pub fn compare_work(current: &BenchReport, baseline: &BenchReport) -> Result<Comparison> {
    if baseline.scenarios.is_empty() {
        return Err(Error::invalid_input(
            "baseline contains no scenarios; refusing to compare against an empty gate",
        ));
    }
    let mut outcome = Comparison::default();
    for scenario in &current.scenarios {
        let Some(base) = baseline.scenario(&scenario.name) else {
            outcome.missing.push(scenario.name.clone());
            continue;
        };
        let before = outcome.regressions.len();
        work_regressions(scenario, base, 0.0, &mut outcome.regressions);
        if outcome.regressions.len() == before {
            outcome.passed += 1;
        }
    }
    Ok(outcome)
}

fn spark_optimizer(config: DpConfig) -> Result<DpOptimizer> {
    DpOptimizer::new(EnergyModel::new(VehicleParams::spark_ev()), config)
}

/// Times `trip_iters` full-corridor solves with one persistent arena, so
/// every iteration after the first exercises the reuse path.
fn single_trip(name: &str, config: DpConfig, iters: usize) -> Result<ScenarioResult> {
    let road = Road::us25();
    let constraints = green_only_constraints(&road, config.horizon);
    let optimizer = spark_optimizer(config)?;
    let mut arena = SolverArena::new();
    let mut metrics = SolverMetrics::default();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let profile =
            optimizer.optimize_from_with(&road, &constraints, StartState::default(), &mut arena)?;
        samples.push(start.elapsed().as_secs_f64());
        metrics.absorb(&profile.metrics);
    }
    ScenarioResult::from_samples(name, &samples, &metrics)
}

/// Times the fleet-gateway burst: one `optimize_batch` call over
/// `batch_size` seeded mid-trip requests per iteration.
fn batch_burst(spec: &MatrixSpec) -> Result<ScenarioResult> {
    let road = Road::us25();
    let config = DpConfig::default();
    let constraints = green_only_constraints(&road, config.horizon);
    let optimizer = spark_optimizer(config)?;
    // The same jittered mid-trip starts the Criterion batch bench uses,
    // but seeded, so every run solves the identical burst.
    let mut rng = SplitMix64::new(BENCH_SEED ^ 0xBA7C);
    let starts: Vec<StartState> = (0..spec.batch_size)
        .map(|_| StartState {
            position: Meters::new(rng.uniform(1900.0, 2250.0)),
            speed: MetersPerSecond::new(rng.uniform(10.0, 15.0)),
            time: Seconds::new(rng.uniform(120.0, 184.0)),
        })
        .collect();
    let requests: Vec<PlanRequest<'_>> = starts
        .iter()
        .map(|&start| PlanRequest {
            road: &road,
            signals: &constraints,
            start,
        })
        .collect();

    let mut metrics = SolverMetrics::default();
    let mut samples = Vec::with_capacity(spec.batch_iters);
    for _ in 0..spec.batch_iters {
        let start = Instant::now();
        let results = optimizer.optimize_batch(&requests);
        samples.push(start.elapsed().as_secs_f64());
        for result in results {
            metrics.absorb(&result?.metrics);
        }
    }
    ScenarioResult::from_samples(&format!("batch_{}", spec.batch_size), &samples, &metrics)
}

/// Times the MPC loop in steady state: mostly cheap stale-plan ticks with a
/// forced drift (and therefore a mid-trip re-solve) every eighth tick.
fn replan_steady_state(ticks: usize) -> Result<ScenarioResult> {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush())?;
    let corridor = system.config().road.length().value();
    let mut replanner = Replanner::new(system, ReplanConfig::default())?;
    let mut rng = SplitMix64::new(BENCH_SEED ^ 0x4E9);
    let mut metrics = replanner.plan().metrics;
    let mut refreshes = replanner.replans();
    let mut samples = Vec::with_capacity(ticks);
    for i in 0..ticks {
        // Sweep the middle 70% of the corridor; the ends are not plannable.
        let frac = 0.1 + 0.7 * (i as f64 / ticks.max(1) as f64);
        let position = Meters::new(corridor * frac);
        let planned = replanner.plan().arrival_time_at(position);
        let drift = if i % 8 == 7 {
            // Stuck behind a platoon: late enough to force a refresh.
            rng.uniform(10.0, 12.0)
        } else {
            rng.uniform(-0.5, 0.5)
        };
        let speed = MetersPerSecond::new(
            replanner
                .plan()
                .speed_at_position(position)
                .value()
                .max(8.0),
        );
        let start = Instant::now();
        replanner.command(position, speed, planned + Seconds::new(drift))?;
        samples.push(start.elapsed().as_secs_f64());
        if replanner.replans() > refreshes {
            refreshes = replanner.replans();
            metrics.absorb(&replanner.plan().metrics);
        }
    }
    ScenarioResult::from_samples("replan_steady_state", &samples, &metrics)
}

/// Times the window-refresh path alone: every tick installs a shifted set
/// of queue-free windows (the downstream signal's epoch slipping — the
/// common cloud `T_q` push) through [`Replanner::refresh_windows`], so the
/// row is pure refresh latency — warm arena, warm transition memo. With
/// repair on, the solver revalidates the retained layer stack and
/// re-relaxes only the dirty suffix; the identical schedule is first timed
/// with repair off (full re-solves from the same warm arena), and
/// `repair_speedup` is the ratio of the two medians — a same-run ratio, so
/// machine speed cancels out — which `--check` keeps above
/// [`MIN_REPAIR_SPEEDUP`]. The schedule is deterministic and every tick's
/// windows differ from the previous tick's, so the repair-hit counters are
/// machine-invariant and `--check-work` floors them.
fn replan_refresh_only(ticks: usize) -> Result<ScenarioResult> {
    let run = |repair: bool| -> Result<(Vec<f64>, SolverMetrics)> {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush())?;
        let config = ReplanConfig {
            min_interval: Seconds::ZERO,
            repair,
            ..ReplanConfig::default()
        };
        let mut replanner = Replanner::new(system, config)?;
        let base = replanner.windows().to_vec();
        // One untimed refresh retains the layer stack, so every timed tick
        // exercises the steady state (repair, or a warm full re-solve).
        replanner.refresh_windows(base.clone())?;
        let mut metrics = SolverMetrics::default();
        let mut samples = Vec::with_capacity(ticks);
        for i in 0..ticks {
            let mut windows = base.clone();
            let last = windows
                .last_mut()
                .ok_or_else(|| Error::invalid_input("us25 rush hour has no signals"))?;
            // Bounded drift of the downstream epoch: consecutive ticks
            // always differ, and the upstream windows stay put, so repair
            // only ever has to re-relax the final layers.
            let shift = Seconds::new(0.25 * ((i % 8) as f64 + 1.0));
            for w in &mut last.windows {
                w.start += shift;
                w.end += shift;
            }
            let start = Instant::now();
            let plan = replanner.refresh_windows(windows)?;
            samples.push(start.elapsed().as_secs_f64());
            metrics.absorb(&plan.metrics);
        }
        Ok((samples, metrics))
    };
    let (scratch_samples, _) = run(false)?;
    let (samples, metrics) = run(true)?;
    let mut result = ScenarioResult::from_samples("replan_refresh", &samples, &metrics)?;
    result.repair_speedup =
        Percentiles::from_samples(&scratch_samples)?.p50 / result.wall_seconds.p50.max(1e-12);
    Ok(result)
}

/// Times the identical seeded full-corridor exact solve under both
/// dispatches — forced-scalar first, then SIMD — each through its own warm
/// arena, and reports the same-run median ratio as `simd_speedup`
/// (`--check` keeps it above [`MIN_SIMD_SPEEDUP`] once a baseline has
/// demonstrated it). Single-threaded so the relaxation dominates and the
/// chunk geometry is fixed.
fn dp_single_simd(iters: usize) -> Result<ScenarioResult> {
    let road = Road::us25();
    let run = |simd: bool| -> Result<(Vec<f64>, SolverMetrics)> {
        let config = DpConfig {
            simd,
            threads: 1,
            ..DpConfig::default()
        };
        let constraints = green_only_constraints(&road, config.horizon);
        let optimizer = spark_optimizer(config)?;
        let mut arena = SolverArena::new();
        let mut metrics = SolverMetrics::default();
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            let profile = optimizer.optimize_from_with(
                &road,
                &constraints,
                StartState::default(),
                &mut arena,
            )?;
            samples.push(start.elapsed().as_secs_f64());
            metrics.absorb(&profile.metrics);
        }
        Ok((samples, metrics))
    };
    let (scalar_samples, _) = run(false)?;
    let (samples, metrics) = run(true)?;
    let mut result = ScenarioResult::from_samples("dp_single_simd", &samples, &metrics)?;
    result.simd_speedup =
        Percentiles::from_samples(&scalar_samples)?.p50 / result.wall_seconds.p50.max(1e-12);
    Ok(result)
}

/// The fleet-gateway burst under both dispatches: the same seeded mid-trip
/// requests as `batch_burst`, solved scalar then SIMD on all cores, with
/// the same-run median ratio reported as `simd_speedup`.
fn dp_batch_simd(spec: &MatrixSpec) -> Result<ScenarioResult> {
    let road = Road::us25();
    let run = |simd: bool| -> Result<(Vec<f64>, SolverMetrics)> {
        let config = DpConfig {
            simd,
            ..DpConfig::default()
        };
        let constraints = green_only_constraints(&road, config.horizon);
        let optimizer = spark_optimizer(config)?;
        let mut rng = SplitMix64::new(BENCH_SEED ^ 0xBA7C);
        let starts: Vec<StartState> = (0..spec.batch_size)
            .map(|_| StartState {
                position: Meters::new(rng.uniform(1900.0, 2250.0)),
                speed: MetersPerSecond::new(rng.uniform(10.0, 15.0)),
                time: Seconds::new(rng.uniform(120.0, 184.0)),
            })
            .collect();
        let requests: Vec<PlanRequest<'_>> = starts
            .iter()
            .map(|&start| PlanRequest {
                road: &road,
                signals: &constraints,
                start,
            })
            .collect();
        let mut metrics = SolverMetrics::default();
        let mut samples = Vec::with_capacity(spec.batch_iters);
        for _ in 0..spec.batch_iters {
            let start = Instant::now();
            let results = optimizer.optimize_batch(&requests);
            samples.push(start.elapsed().as_secs_f64());
            for result in results {
                metrics.absorb(&result?.metrics);
            }
        }
        Ok((samples, metrics))
    };
    let (scalar_samples, _) = run(false)?;
    let (samples, metrics) = run(true)?;
    let mut result = ScenarioResult::from_samples("dp_batch_simd", &samples, &metrics)?;
    result.simd_speedup =
        Percentiles::from_samples(&scalar_samples)?.p50 / result.wall_seconds.p50.max(1e-12);
    Ok(result)
}

/// The seeded SAE training workload: the paper's station shape, two weeks
/// of hourly volumes, and the mini-batch trainer's production-sized recipe.
fn sae_bench_config() -> SaePredictorConfig {
    let sgd = |epochs: usize| SgdConfig {
        epochs,
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size: 64,
        threads: 1,
    };
    SaePredictorConfig {
        lags: 24,
        sae: SaeConfig {
            hidden_layers: vec![24, 12],
            pretrain: sgd(6),
            finetune: sgd(40),
            ..SaeConfig::default()
        },
    }
}

/// Times full SAE trainings (layer-wise pretraining + fine-tune) on the
/// seeded two-week feed. The work counters — gemm FLOPs, scratch
/// reuse/allocations — are deterministic per iteration, so `--check-work`
/// pins both the kernel workload and the arena recycling.
fn sae_train(iters: usize) -> Result<ScenarioResult> {
    let feed = VolumeGenerator::us25_station(BENCH_SEED).generate_weeks(2)?;
    let cfg = sae_bench_config();
    let mut metrics = TrainMetrics::default();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let predictor = SaePredictor::train(&feed, &cfg)?;
        samples.push(start.elapsed().as_secs_f64());
        metrics.absorb(predictor.sae().metrics());
    }
    ScenarioResult::from_traffic_samples("sae_train", &samples, &metrics)
}

/// Times warm batched multi-horizon rollouts: 32 intersections × 24
/// lookahead hours per call through [`VolumePredictor::predict_batch_with`]
/// with reused scratch. Counters are deltas across the timed loop only
/// (after one warm-up call), so the committed baseline records **zero**
/// steady-state scratch allocations and `--check-work` keeps it that way.
fn sae_predict_batch(iters: usize) -> Result<ScenarioResult> {
    let feed = VolumeGenerator::us25_station(BENCH_SEED).generate_weeks(2)?;
    let cfg = sae_bench_config();
    let vp = VolumePredictor::train(&feed, &cfg)?;
    let lags = vp.predictor().lags();
    let queries: Vec<VolumeQuery> = (0..32)
        .map(|q| VolumeQuery {
            history: feed.samples()[q * 3..q * 3 + lags].to_vec(),
            hour_index: q * 3 + lags,
        })
        .collect();
    let horizons = 24;
    let mut scratch = VolumeScratch::new();
    let mut out = Vec::new();
    vp.predict_batch_with(&queries, horizons, &mut scratch, &mut out)?;
    let (warm_hits, warm_allocs, warm_flops) =
        (scratch.reuse_hits(), scratch.allocations(), scratch.flops());
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        vp.predict_batch_with(&queries, horizons, &mut scratch, &mut out)?;
        samples.push(start.elapsed().as_secs_f64());
    }
    let metrics = TrainMetrics {
        gemm_flops: scratch.flops() - warm_flops,
        scratch_reuse_hits: scratch.reuse_hits() - warm_hits,
        scratch_allocations: scratch.allocations() - warm_allocs,
        ..TrainMetrics::default()
    };
    ScenarioResult::from_traffic_samples("sae_predict_batch", &samples, &metrics)
}

/// Times concurrent serving through the cloud's sharded reactor:
/// `cloud_clients` simultaneous connections against 4 compute workers,
/// driven in lockstep rounds of mixed traffic (cached trip plans, volume
/// forecasts, telemetry, stats). Each sample is one round — every
/// connection writes its request, then every response is read back — so
/// the percentiles describe how long a full concurrent wave takes, and
/// throughput is `cloud_clients / p50`. The buffer-pool and encode-skip
/// counters are deltas across the timed rounds only (after a warm-up
/// round), so the committed baseline records near-total steady-state
/// reuse and `--check-work` keeps it that way.
fn cloud_serve(spec: &MatrixSpec) -> Result<ScenarioResult> {
    let clients = spec.cloud_clients;
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 4,
        shards: 2,
        max_connections: clients + 8,
        // Retain a full round's worth of responses per shard so steady
        // state never allocates.
        buffer_pool_capacity: clients,
        ..ServerConfig::default()
    })?;
    let addr = server.addr();

    // Warm the plan cache (4 distinct trips) and the predictor cache (one
    // SAE training) through one connection, so the timed rounds measure
    // serving, not solving.
    let departures = [0.0, 60.0, 120.0, 180.0];
    let feed = VolumeGenerator::us25_station(BENCH_SEED).generate_weeks(2)?;
    let lags = 12;
    let predict = PredictBatchRequest {
        station_seed: BENCH_SEED,
        train_weeks: 2,
        horizons: 3,
        queries: vec![PredictQuery {
            history: feed.samples()[..lags].to_vec(),
            hour_index: lags as u64,
        }],
    };
    let frame = |tag: u8, payload: &[u8]| -> Result<Vec<u8>> {
        let mut out = Vec::new();
        write_frame(&mut out, tag, payload)?;
        Ok(out)
    };
    let trip_frames: Vec<Vec<u8>> = departures
        .iter()
        .map(|&d| frame(tags::REQ_TRIP, &TripRequest::us25_at(d).encode()))
        .collect::<Result<_>>()?;
    let predict_frame = frame(tags::REQ_PREDICT_BATCH, &predict.encode())?;
    let telemetry_frame = frame(tags::REQ_TELEMETRY, &[])?;
    let stats_frame = frame(tags::REQ_STATS, &[])?;
    {
        let mut warm = TcpStream::connect(addr)?;
        for f in trip_frames.iter().chain([&predict_frame]) {
            warm.write_all(f)?;
            read_frame(&mut warm)?
                .ok_or_else(|| Error::invalid_input("cloud warm-up connection closed"))?;
        }
    }

    let streams: Vec<TcpStream> = (0..clients)
        .map(|_| {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true).ok();
            Ok(s)
        })
        .collect::<Result<_>>()?;
    // Each connection's fixed request: trip hits, forecasts, telemetry and
    // stats in a 1:1:1:1 mix (the pooled-response paths dominate 3:1).
    let request_for = |i: usize| -> &[u8] {
        match i % 4 {
            0 => &trip_frames[(i / 4) % departures.len()],
            1 => &predict_frame,
            2 => &telemetry_frame,
            _ => &stats_frame,
        }
    };
    let round = |streams: &[TcpStream]| -> Result<f64> {
        let start = Instant::now();
        for (i, mut stream) in streams.iter().enumerate() {
            stream.write_all(request_for(i))?;
        }
        for mut stream in streams {
            let (tag, payload) = read_frame(&mut stream)?
                .ok_or_else(|| Error::invalid_input("cloud bench connection closed"))?;
            if tag == tags::RESP_ERROR {
                return Err(Error::invalid_input(format!(
                    "cloud bench request rejected: {}",
                    String::from_utf8_lossy(&payload)
                )));
            }
        }
        Ok(start.elapsed().as_secs_f64())
    };

    // One warm-up round fills the per-shard buffer pools; counters are
    // deltas across the timed rounds only.
    round(&streams)?;
    let (reuse0, alloc0) = server.stats().buffer_pool();
    let skipped0 = server.stats().plan_encode_skipped();
    let mut samples = Vec::with_capacity(spec.cloud_rounds);
    for _ in 0..spec.cloud_rounds {
        samples.push(round(&streams)?);
    }
    let (reuse, alloc) = server.stats().buffer_pool();
    let skipped = server.stats().plan_encode_skipped();
    let result = ScenarioResult::from_cloud_samples(
        &format!("cloud_serve_{clients}"),
        &samples,
        reuse - reuse0,
        alloc - alloc0,
        skipped - skipped0,
    );
    drop(streams);
    server.shutdown();
    result
}

/// Times the co-simulation replan storm through the coalescing layer: the
/// traffic pattern the fleet driver produces when a signal epoch flips —
/// `cosim_vehicles` simultaneous `REQ_TRIP`s sharing `cosim_corridors`
/// distinct trip keys — replayed in lockstep rounds against two servers at
/// the same worker count: one dispatching singles (coalescing off), one
/// coalescing with `batch_max` pinned to the wave size. Each round uses
/// fresh departures, so nothing is served from the plan cache and the
/// coalesced counters are exact: per round, one flush, `cosim_corridors`
/// flights, `cosim_vehicles - cosim_corridors` single-flight hits. The
/// timed samples are the coalesced rounds; `storm_speedup` is the singles
/// median over the coalesced median — a same-run ratio, so machine speed
/// cancels — and `--check` keeps it above [`MIN_STORM_SPEEDUP`].
fn cloud_cosim(spec: &MatrixSpec) -> Result<ScenarioResult> {
    let wave = spec.cosim_vehicles.max(1);
    let keys = spec.cosim_corridors.clamp(1, wave);
    let rounds = spec.cosim_rounds.max(1);

    // The fleet's corridors: short seeded arterials. Every vehicle on a
    // corridor shares its canonical TripRequest, exactly as the fleet
    // driver builds one request per (corridor, signal epoch).
    let template = CorridorTemplate {
        length: (600.0, 900.0),
        ..CorridorTemplate::default()
    };
    let roads: Vec<Road> = (0..keys)
        .map(|i| template.generate(BENCH_SEED ^ (0xC0_5100 + i as u64)))
        .collect::<Result<_>>()?;
    let request_frame = |vehicle: usize, round: usize| -> Result<Vec<u8>> {
        let road = roads[vehicle % keys].clone();
        let rates = vec![VehiclesPerHour::new(840.0); road.traffic_lights().len()];
        let trip = TripRequest {
            road,
            // Fresh departures per round: a new signal epoch, so every
            // round misses the plan cache on both servers.
            departure: Seconds::new(300.0 + 60.0 * round as f64),
            rates,
            queue: QueueParams::us25_probe(),
            queue_aware: true,
        };
        let mut out = Vec::new();
        write_frame(&mut out, tags::REQ_TRIP, &trip.encode())?;
        Ok(out)
    };

    // One storm: `wave` persistent connections, each round writes every
    // request then reads every response back (lockstep, like the fleet
    // driver's replan wave), one wall sample per round.
    let storm = |addr: std::net::SocketAddr| -> Result<Vec<f64>> {
        let streams: Vec<TcpStream> = (0..wave)
            .map(|_| {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true).ok();
                Ok(s)
            })
            .collect::<Result<_>>()?;
        let mut samples = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let frames: Vec<Vec<u8>> = (0..wave)
                .map(|v| request_frame(v, round))
                .collect::<Result<_>>()?;
            let start = Instant::now();
            for (mut stream, frame) in streams.iter().zip(&frames) {
                stream.write_all(frame)?;
            }
            for mut stream in &streams {
                let (tag, payload) = read_frame(&mut stream)?
                    .ok_or_else(|| Error::invalid_input("cosim bench connection closed"))?;
                if tag != tags::RESP_PROFILE {
                    return Err(Error::invalid_input(format!(
                        "cosim bench request rejected: {}",
                        String::from_utf8_lossy(&payload)
                    )));
                }
            }
            samples.push(start.elapsed().as_secs_f64());
        }
        Ok(samples)
    };

    // Singles dispatch first: same compute pool, coalescing disabled, so
    // the only cross-request reuse is the plan cache racing the herd.
    let singles = CloudServer::spawn_with(ServerConfig {
        compute_workers: 4,
        shards: 2,
        max_connections: wave + 8,
        ..ServerConfig::default()
    })?;
    let singles_samples = storm(singles.addr())?;
    singles.shutdown();

    // Then the coalescing server: the window is long and `batch_max` is
    // the wave size, so every round is exactly one inline flush.
    let coalesced = CloudServer::spawn_with(ServerConfig {
        compute_workers: 4,
        shards: 2,
        max_connections: wave + 8,
        coalesce_window: Duration::from_secs(5),
        batch_max: wave,
        ..ServerConfig::default()
    })?;
    let samples = storm(coalesced.addr())?;
    let stats = coalesced.stats();
    let (hits, flights, flushes) = (
        stats.coalesce_hits(),
        stats.coalesce_flights(),
        stats.batch_flushes(),
    );
    coalesced.shutdown();

    let singles_p50 = Percentiles::from_samples(&singles_samples)?.p50;
    let coalesced_p50 = Percentiles::from_samples(&samples)?.p50;
    ScenarioResult::from_cosim_samples(
        &format!("cloud_cosim_{wave}x{keys}"),
        &samples,
        hits,
        flights,
        flushes,
        singles_p50 / coalesced_p50.max(1e-12),
    )
}

/// Per-field delta of two cumulative step-metric snapshots (`after` taken
/// later in the same run than `before`).
fn step_metrics_delta(after: StepMetrics, before: StepMetrics) -> StepMetrics {
    StepMetrics {
        simd_lanes: after.simd_lanes - before.simd_lanes,
        scalar_lanes: after.scalar_lanes - before.scalar_lanes,
        sweep_advances: after.sweep_advances - before.sweep_advances,
        sign_window_checks: after.sign_window_checks - before.sign_window_checks,
        arena_grows: after.arena_grows - before.arena_grows,
        arena_reuses: after.arena_reuses - before.arena_reuses,
    }
}

/// Times the sharded multi-corridor microsimulation: a seeded chain of
/// `network_corridors` dense arterial corridors (roughly 20 signals each),
/// every corridor fed by its own arrival process and carrying its own
/// seeded [`VehicleMix`] (truck and IDM shares vary corridor to corridor),
/// stepped in lockstep on all cores. An untimed warm-up fills the network
/// with traffic; each timed round then advances one simulated second (ten
/// ticks), so the percentiles describe how much wall time a simulated
/// second costs and throughput is `vehicles_stepped / iterations / p50`
/// vehicle-steps per second. The vehicle-step, handoff, and kernel-lane
/// counters are deltas across the timed rounds only and — because the
/// network is bit-identical at any shard count and under either dispatch —
/// machine-invariant, so `--check-work` pins the workload and the pooled
/// scratch's zero-steady-state-allocation property. Two bit-identical
/// networks — one forced scalar, one auto-dispatch — advance in
/// interleaved one-second rounds so host drift hits both flavors equally,
/// and `microsim_simd_speedup` is the ratio of the per-round medians
/// (diluted below the step-engine ratio by the dispatch-invariant shard
/// scheduling, junction routing, and injection scans this scenario
/// deliberately includes).
fn microsim_network(spec: &MatrixSpec) -> Result<ScenarioResult> {
    let template = CorridorTemplate {
        length: (2500.0, 4500.0),
        lights: (16, 24),
        ..CorridorTemplate::default()
    };
    let build = |simd: bool| -> Result<Network> {
        let mut mix_rng = SplitMix64::new(BENCH_SEED ^ 0x317A);
        let specs = (0..spec.network_corridors)
            .map(|i| {
                let road = template.generate(BENCH_SEED ^ (0xC0_0000 + i as u64))?;
                let mut corridor = if i + 1 < spec.network_corridors {
                    CorridorSpec::through(road, i + 1)
                } else {
                    CorridorSpec::terminal(road)
                };
                corridor.arrival_rate = VehiclesPerHour::new(1000.0);
                corridor.mix = Some(VehicleMix {
                    truck_fraction: mix_rng.uniform(0.0, 0.25),
                    idm_fraction: mix_rng.uniform(0.0, 0.35),
                });
                Ok(corridor)
            })
            .collect::<Result<Vec<_>>>()?;
        let config = SimConfig {
            seed: BENCH_SEED ^ 0x2E7,
            straight_ratio: 0.97,
            simd,
            ..SimConfig::default()
        };
        let mut net = Network::new(specs, 0, config)?;
        net.run_until(Seconds::new(spec.network_warmup_s))?;
        Ok(net)
    };
    let mut scalar = build(false)?;
    let mut auto = build(true)?;
    let warm = auto.stats();
    let warm_metrics = auto.step_metrics();
    let mut scalar_samples = Vec::with_capacity(spec.network_rounds);
    let mut samples = Vec::with_capacity(spec.network_rounds);
    for round in 0..spec.network_rounds {
        let target = Seconds::new(spec.network_warmup_s + (round + 1) as f64);
        let start = Instant::now();
        scalar.run_until(target)?;
        scalar_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        auto.run_until(target)?;
        samples.push(start.elapsed().as_secs_f64());
    }
    let stats = auto.stats();
    let metrics = step_metrics_delta(auto.step_metrics(), warm_metrics);
    let speedup = Percentiles::from_samples(&scalar_samples)?.p50
        / Percentiles::from_samples(&samples)?.p50.max(1e-12);
    ScenarioResult::from_network_samples(
        &format!("microsim_network_{}", spec.network_corridors),
        &samples,
        stats.vehicles_stepped - warm.vehicles_stepped,
        stats.handoffs - warm.handoffs,
        metrics,
        speedup,
    )
}

/// Times the single-corridor step engine on a dense signalized platoon: a
/// 30 km arterial with 36 offset fixed-time lights, no stop signs, no
/// speed zones, no detectors, and a non-dawdling (`σ = 0`) Krauss
/// population, filled by an untimed saturating warm-up and then *frozen*
/// (arrivals shut off) so the timed rounds measure pure stepping of a
/// ~500-vehicle queue-discharge workload with no O(V) injection scans
/// diluting the kernel share. Two bit-identical simulations — one forced
/// scalar, one auto-dispatch — advance in interleaved 50-tick rounds (five
/// simulated seconds each), so clock-frequency and cache drift hit both
/// flavors equally, and `microsim_simd_speedup` is the ratio of the
/// per-round medians. `--check` keeps it above
/// [`MIN_MICROSIM_SIMD_SPEEDUP`] once a baseline demonstrated it; the lane
/// and arena counters are deltas across the auto run's timed rounds (the
/// lane total floors the workload, the arena-grow ceiling pins zero
/// steady-state allocation).
fn microsim_step(spec: &MatrixSpec) -> Result<ScenarioResult> {
    const LIGHTS: usize = 36;
    let length = 30_000.0;
    let mut builder = RoadBuilder::new(Meters::new(length));
    for i in 0..LIGHTS {
        builder.traffic_light(
            Meters::new(length / (LIGHTS + 1) as f64 * (i + 1) as f64),
            Seconds::new(25.0),
            Seconds::new(35.0),
            Seconds::new(7.0 * i as f64),
        );
    }
    let road = builder.build()?;
    let build = |simd: bool| -> Result<Simulation> {
        let config = SimConfig {
            seed: BENCH_SEED ^ 0x57E9,
            // No dawdle: the scalar post-kernel pass is empty, so the
            // timed work is the lane kernels, the sweep, and integration.
            background: KraussParams {
                sigma: 0.0,
                ..KraussParams::passenger()
            },
            straight_ratio: 1.0,
            simd,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(road.clone(), config)?;
        sim.set_arrival_rate(VehiclesPerHour::new(2600.0));
        sim.run_until(Seconds::new(spec.step_warmup_s))?;
        // Freeze the platoon: the timed rounds step a fixed population.
        sim.set_arrival_rate(VehiclesPerHour::new(0.0));
        Ok(sim)
    };
    let mut scalar = build(false)?;
    let mut auto = build(true)?;
    let warm = auto.step_metrics();
    let ticks = 10 * spec.step_round_s;
    let mut scalar_samples = Vec::with_capacity(spec.step_rounds);
    let mut samples = Vec::with_capacity(spec.step_rounds);
    for _ in 0..spec.step_rounds {
        let start = Instant::now();
        for _ in 0..ticks {
            scalar.step();
        }
        scalar_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..ticks {
            auto.step();
        }
        samples.push(start.elapsed().as_secs_f64());
    }
    let metrics = step_metrics_delta(auto.step_metrics(), warm);
    let speedup = Percentiles::from_samples(&scalar_samples)?.p50
        / Percentiles::from_samples(&samples)?.p50.max(1e-12);
    ScenarioResult::from_network_samples(
        "microsim_step",
        &samples,
        metrics.total_lanes(),
        0,
        metrics,
        speedup,
    )
}

/// Times energy-optimal routing over a seeded grid network: each iteration
/// runs a fixed query set (corner-to-corner and cross-grid sweeps) against
/// a cold router, so the oracle-call, pruning, and memo counters are
/// per-iteration invariant. Like `dp_single_simd`, the scenario is a
/// same-run comparison: the featureless sweep — lower bounds, plan memo,
/// and batched frontier evaluation all off, i.e. plain Dijkstra paying one
/// DP solve per (edge, departure bin) — runs first over the identical
/// queries, and `route_oracle_ratio` divides its oracle calls by the full
/// router's. Both counts are deterministic, so the ratio is
/// machine-invariant and `--check-work` keeps it above
/// [`MIN_ROUTE_ORACLE_RATIO`].
fn route_plan(spec: &MatrixSpec) -> Result<ScenarioResult> {
    let side = spec.route_grid.max(2);
    let template = NetworkTemplate {
        rows: side,
        cols: side,
        corridor: CorridorTemplate {
            length: (200.0, 400.0),
            lights: (0, 1),
            phase: (15.0, 25.0),
            stop_sign_probability: 0.3,
            max_grade_percent: 0.0,
            limits_kmh: (30.0, 50.0),
        },
        corridor_pool: 4,
    };
    let graph = template.generate(BENCH_SEED ^ 0x207E)?;
    let corner = side - 1;
    let queries = [
        (
            template.node_at(0, 0),
            template.node_at(corner, corner),
            0.0,
        ),
        (
            template.node_at(0, corner),
            template.node_at(corner, 0),
            45.0,
        ),
        (
            template.node_at(corner, 0),
            template.node_at(0, corner),
            90.0,
        ),
        (
            template.node_at(side / 2, 0),
            template.node_at(side / 2, corner),
            150.0,
        ),
    ];
    let run = |config: RouteConfig, iters: usize| -> Result<(Vec<f64>, RouteMetrics)> {
        let mut metrics = RouteMetrics::default();
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let optimizer = spark_optimizer(DpConfig {
                horizon: Seconds::new(300.0),
                ..DpConfig::default()
            })?;
            let mut router = Router::new(optimizer, config)?;
            let start = Instant::now();
            for &(origin, dest, depart) in &queries {
                let plan = router.plan(
                    &graph,
                    RouteQuery {
                        origin,
                        dest,
                        depart: Seconds::new(depart),
                    },
                )?;
                metrics.absorb(&plan.metrics);
            }
            samples.push(start.elapsed().as_secs_f64());
        }
        Ok((samples, metrics))
    };
    let dijkstra = RouteConfig {
        heuristic: false,
        memo: false,
        batch_frontier: false,
        ..RouteConfig::default()
    };
    // One reference iteration is enough: the sweep is deterministic, so
    // its per-iteration oracle count never moves, and repeating the (much
    // slower) featureless search would only burn matrix time.
    let (_, dijkstra_metrics) = run(dijkstra, 1)?;
    let iters = spec.route_iters.max(1);
    let (samples, metrics) = run(RouteConfig::default(), iters)?;
    let ratio = dijkstra_metrics.oracle_calls as f64
        / (metrics.oracle_calls as f64 / iters as f64).max(1.0);
    ScenarioResult::from_route_samples(
        &format!("route_plan_{}", side * side),
        &samples,
        &metrics,
        ratio,
    )
}

/// Runs the scenario matrix — optionally filtered — and collects the
/// report. `filter` is matched as a substring of each scenario family's
/// stable name stem (`"route_plan"`, `"cloud"`, `"sae"`, …); passing a
/// filter that selects nothing is an error, so a typo cannot silently
/// produce an empty report.
///
/// # Errors
///
/// Propagates solver failures — the matrix is seeded, so a scenario that
/// solves once solves always, and an error here means the build is broken.
/// Returns [`Error::InvalidInput`] for a filter no scenario stem contains.
pub fn run_scenarios(spec: &MatrixSpec, filter: Option<&str>) -> Result<BenchReport> {
    let sequential = DpConfig {
        threads: 1,
        ..DpConfig::default()
    };
    let parallel = DpConfig {
        threads: 0,
        ..DpConfig::default()
    };
    let greedy = DpConfig {
        time_handling: TimeHandling::Greedy,
        threads: 1,
        ..DpConfig::default()
    };
    type Scenario<'a> = (
        &'static str,
        Box<dyn FnOnce() -> Result<ScenarioResult> + 'a>,
    );
    let entries: Vec<Scenario<'_>> = vec![
        (
            "single_trip_sequential",
            Box::new(move || single_trip("single_trip_sequential", sequential, spec.trip_iters)),
        ),
        (
            "single_trip_parallel",
            Box::new(move || single_trip("single_trip_parallel", parallel, spec.trip_iters)),
        ),
        (
            "single_trip_greedy",
            Box::new(move || single_trip("single_trip_greedy", greedy, spec.trip_iters)),
        ),
        ("batch", Box::new(|| batch_burst(spec))),
        (
            "dp_single_simd",
            Box::new(|| dp_single_simd(spec.trip_iters)),
        ),
        ("dp_batch_simd", Box::new(|| dp_batch_simd(spec))),
        (
            "replan_steady_state",
            Box::new(|| replan_steady_state(spec.replan_ticks)),
        ),
        (
            "replan_refresh",
            Box::new(|| replan_refresh_only((spec.replan_ticks / 4).max(1))),
        ),
        ("sae_train", Box::new(|| sae_train(spec.sae_train_iters))),
        (
            "sae_predict_batch",
            Box::new(|| sae_predict_batch(spec.sae_predict_iters)),
        ),
        ("cloud_serve", Box::new(|| cloud_serve(spec))),
        ("cloud_cosim", Box::new(|| cloud_cosim(spec))),
        ("microsim_network", Box::new(|| microsim_network(spec))),
        ("microsim_step", Box::new(|| microsim_step(spec))),
        ("route_plan", Box::new(|| route_plan(spec))),
    ];
    if let Some(needle) = filter {
        if !entries.iter().any(|(stem, _)| stem.contains(needle)) {
            let known: Vec<&str> = entries.iter().map(|(stem, _)| *stem).collect();
            return Err(Error::invalid_input(format!(
                "--scenario {needle:?} matches no scenario; known stems: {}",
                known.join(", ")
            )));
        }
    }
    let mut scenarios = Vec::new();
    for (stem, entry) in entries {
        if filter.is_some_and(|needle| !stem.contains(needle)) {
            continue;
        }
        scenarios.push(entry()?);
    }
    Ok(BenchReport { scenarios })
}

/// Runs the whole scenario matrix and collects the report.
///
/// # Errors
///
/// Propagates solver failures — the matrix is seeded, so a scenario that
/// solves once solves always, and an error here means the build is broken.
pub fn run_matrix(spec: &MatrixSpec) -> Result<BenchReport> {
    run_scenarios(spec, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(name: &str, p50: f64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            iterations: 5,
            wall_seconds: Percentiles {
                min: p50 * 0.8,
                p50,
                p90: p50 * 1.2,
                p95: p50 * 1.25,
                p99: p50 * 1.3,
                max: p50 * 1.4,
            },
            states_expanded: 1000,
            states_pruned: 400,
            arena_reuse_hits: 12,
            arena_allocations: 3,
            memo_hits: 90,
            memo_misses: 10,
            energy_evals: 500,
            rows_skipped: 20,
            simd_rows: 800,
            repair_hits: 4 * 5,
            repair_full_resolves: 1,
            repair_layers_skipped: 600,
            simd_speedup: 2.6,
            repair_speedup: 4.2,
            gemm_flops: 50_000,
            scratch_reuse_hits: 40,
            scratch_allocations: 5,
            buf_reuse: 950,
            buf_alloc: 50,
            plan_encode_skipped: 100,
            coalesce_hits: 60,
            coalesce_flights: 20,
            batch_flushes: 5,
            storm_speedup: 3.5,
            vehicles_stepped: 40_000,
            network_handoffs: 120,
            route_oracle_calls: 400,
            route_edges_pruned: 150,
            route_plan_memo_hits: 60,
            route_oracle_ratio: 6.5,
            sim_simd_lanes: 30_000,
            sim_scalar_lanes: 10_000,
            sim_arena_grows: 0,
            microsim_simd_speedup: 2.8,
        }
    }

    fn report(entries: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            scenarios: entries.iter().map(|&(n, p)| scenario(n, p)).collect(),
        }
    }

    #[test]
    fn report_json_round_trips() {
        let original = report(&[("a", 0.125), ("b", 2.5e-3)]);
        let parsed = BenchReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn empty_or_malformed_reports_are_clear_errors() {
        let err = BenchReport::from_json("").unwrap_err();
        assert!(err.to_string().contains("malformed report"), "{err}");
        let err = BenchReport::from_json("{}").unwrap_err();
        assert!(err.to_string().contains("scenarios"), "{err}");
        let err = BenchReport::from_json(r#"{"scenarios":[{"name":"x"}]}"#).unwrap_err();
        assert!(err.to_string().contains("wall_seconds"), "{err}");
        let err = BenchReport::from_json(r#"{"scenarios":[{"iterations":1}]}"#).unwrap_err();
        assert!(err.to_string().contains("name"), "{err}");
    }

    #[test]
    fn comparator_flags_only_regressions_beyond_tolerance() {
        let baseline = report(&[("fast", 0.100), ("slow", 0.100)]);
        let current = report(&[("fast", 0.105), ("slow", 0.114)]);
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
        assert_eq!(outcome.passed, 2);

        let outcome = compare(&current, &baseline, 0.10).unwrap();
        assert!(outcome.is_regression());
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].starts_with("slow:"));
        assert_eq!(outcome.passed, 1);
    }

    #[test]
    fn work_counter_regressions_are_flagged() {
        let baseline = report(&[("s", 0.100)]);
        // Same wall time, but the solver suddenly expands twice the states
        // per iteration: a real regression even though the clock is flat.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].states_expanded *= 2;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("states expanded"));

        // A memo that stopped engaging multiplies energy evals far past the
        // one-cold-build slack.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].energy_evals = 500 * 12;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("energy evaluations"));

        // A gemm kernel that started doing redundant work is caught even
        // with the wall clock flat.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].gemm_flops *= 3;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("gemm FLOPs"));

        // Scratch that stopped being recycled allocates every iteration.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].scratch_allocations = 5 * 20;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("scratch allocations"));

        // Fewer states / fewer evals is an improvement, never a regression.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].states_expanded = 1;
        current.scenarios[0].energy_evals = 0;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
        assert_eq!(outcome.passed, 1);
    }

    #[test]
    fn vehicle_step_floor_is_gated() {
        let baseline = report(&[("net", 0.100)]);
        // The network silently stepping half the traffic is a regression
        // even though less work looks like a timing win.
        let mut current = report(&[("net", 0.100)]);
        current.scenarios[0].vehicles_stepped /= 2;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("vehicle-steps"));
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());

        // More traffic than the baseline is never flagged.
        let mut current = report(&[("net", 0.100)]);
        current.scenarios[0].vehicles_stepped *= 2;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);

        // A baseline without network traffic (pre-network) disables the
        // floor instead of failing every run.
        let mut old = report(&[("net", 0.100)]);
        old.scenarios[0].vehicles_stepped = 0;
        let mut current = report(&[("net", 0.100)]);
        current.scenarios[0].vehicles_stepped = 0;
        let outcome = compare_work(&current, &old).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn step_engine_floors_are_gated() {
        let baseline = report(&[("sim", 0.100)]);
        // The step engine silently evaluating half the lanes is a
        // regression even though less work looks like a timing win. The
        // floor is on the dispatch-invariant total, so a host that shifts
        // lanes from SIMD to scalar (or vice versa) never trips it.
        let mut current = report(&[("sim", 0.100)]);
        current.scenarios[0].sim_simd_lanes = 0;
        current.scenarios[0].sim_scalar_lanes = 20_000;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("kernel lanes"));
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());

        // A host that dispatches everything scalar but does the same total
        // work passes.
        let mut current = report(&[("sim", 0.100)]);
        current.scenarios[0].sim_simd_lanes = 0;
        current.scenarios[0].sim_scalar_lanes = 40_000;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);

        // Per-tick allocation creeping back into the step loop blows the
        // arena-grow ceiling.
        let mut current = report(&[("sim", 0.100)]);
        current.scenarios[0].sim_arena_grows = 50;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("step-arena growths"));

        // The microsim speedup collapsing below the floor fails when the
        // baseline itself cleared it.
        let mut current = report(&[("sim", 0.100)]);
        current.scenarios[0].microsim_simd_speedup = 1.0;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("microsim SIMD speedup"));

        // A pre-SoA baseline (no lane traffic) disables all three gates
        // instead of failing every run.
        let mut old = report(&[("sim", 0.100)]);
        old.scenarios[0].sim_simd_lanes = 0;
        old.scenarios[0].sim_scalar_lanes = 0;
        old.scenarios[0].microsim_simd_speedup = 0.0;
        let mut current = report(&[("sim", 0.100)]);
        current.scenarios[0].sim_simd_lanes = 0;
        current.scenarios[0].sim_scalar_lanes = 0;
        current.scenarios[0].sim_arena_grows = 500;
        current.scenarios[0].microsim_simd_speedup = 0.5;
        let outcome = compare_work(&current, &old).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn buffer_reuse_floor_is_gated() {
        let baseline = report(&[("cloud", 0.100)]);
        // Reuse collapsing to 50% fails both gates, tolerance or not.
        let mut current = report(&[("cloud", 0.100)]);
        current.scenarios[0].buf_reuse = 500;
        current.scenarios[0].buf_alloc = 500;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("buffer reuse rate"));
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());

        // Exactly at the floor passes; the gate is strict-below.
        let mut current = report(&[("cloud", 0.100)]);
        current.scenarios[0].buf_reuse = 900;
        current.scenarios[0].buf_alloc = 100;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);

        // A baseline without buffer traffic (pre-reactor) disables the
        // floor instead of failing every run.
        let mut old = report(&[("cloud", 0.100)]);
        old.scenarios[0].buf_reuse = 0;
        old.scenarios[0].buf_alloc = 0;
        let mut current = report(&[("cloud", 0.100)]);
        current.scenarios[0].buf_reuse = 1;
        current.scenarios[0].buf_alloc = 999;
        let outcome = compare_work(&current, &old).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn coalesce_floors_are_gated() {
        let baseline = report(&[("cosim", 0.100)]);
        // Dedupe disengaging halves the hit count: a regression even with
        // the wall clock flat.
        let mut current = report(&[("cosim", 0.100)]);
        current.scenarios[0].coalesce_hits /= 2;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("coalesce hits"));
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());

        // Batching collapsing to singles multiplies the flush count, so
        // the fill (waiters per flush) craters.
        let mut current = report(&[("cosim", 0.100)]);
        current.scenarios[0].batch_flushes = 80;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("batch fill"));

        // The storm speedup falling below the 2x floor fails the gate
        // when the baseline itself cleared it.
        let mut current = report(&[("cosim", 0.100)]);
        current.scenarios[0].storm_speedup = 1.4;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("storm speedup"));

        // More hits, fuller windows, or a faster storm never regress.
        let mut current = report(&[("cosim", 0.100)]);
        current.scenarios[0].coalesce_hits *= 2;
        current.scenarios[0].storm_speedup = 9.0;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);

        // A baseline without coalescing traffic (pre-coalescer) or below
        // the speedup floor (a reduced local run) disables the floors
        // instead of failing every run.
        let mut old = report(&[("cosim", 0.100)]);
        old.scenarios[0].coalesce_hits = 0;
        old.scenarios[0].batch_flushes = 0;
        old.scenarios[0].storm_speedup = 1.5;
        let mut current = report(&[("cosim", 0.100)]);
        current.scenarios[0].coalesce_hits = 0;
        current.scenarios[0].batch_flushes = 1000;
        current.scenarios[0].storm_speedup = 0.5;
        let outcome = compare_work(&current, &old).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn route_floors_are_gated() {
        let baseline = report(&[("route", 0.100)]);
        // The router suddenly solving twice the edge DPs per iteration is
        // a regression even with the wall clock flat.
        let mut current = report(&[("route", 0.100)]);
        current.scenarios[0].route_oracle_calls *= 2;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("route oracle calls"));
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());

        // The same-run ratio falling below the 5x floor fails when the
        // baseline itself cleared it.
        let mut current = report(&[("route", 0.100)]);
        current.scenarios[0].route_oracle_ratio = 3.0;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("route oracle ratio"));

        // Fewer solves or a stronger ratio never regress, and the pruning
        // and memo counters are visibility-only, never gated.
        let mut current = report(&[("route", 0.100)]);
        current.scenarios[0].route_oracle_calls /= 2;
        current.scenarios[0].route_oracle_ratio = 20.0;
        current.scenarios[0].route_edges_pruned = 0;
        current.scenarios[0].route_plan_memo_hits = 0;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);

        // A baseline without route traffic (pre-router) or below the
        // ratio floor (a reduced local run) disables the floors instead of
        // failing every run.
        let mut old = report(&[("route", 0.100)]);
        old.scenarios[0].route_oracle_calls = 0;
        old.scenarios[0].route_oracle_ratio = 2.0;
        let mut current = report(&[("route", 0.100)]);
        current.scenarios[0].route_oracle_calls = 4; // within per-iter slack
        current.scenarios[0].route_oracle_ratio = 1.0;
        let outcome = compare_work(&current, &old).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn simd_and_repair_floors_are_gated() {
        let baseline = report(&[("dp", 0.100)]);
        // Repair disengaging (every refresh re-solves) craters the hit
        // count: a regression even with the wall clock flat.
        let mut current = report(&[("dp", 0.100)]);
        current.scenarios[0].repair_hits = 5;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("repair hits"));
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());

        // The SIMD speedup falling below the 2x floor fails when the
        // baseline itself cleared it.
        let mut current = report(&[("dp", 0.100)]);
        current.scenarios[0].simd_speedup = 1.3;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("SIMD speedup"));

        // Likewise the repair speedup below its 3x floor.
        let mut current = report(&[("dp", 0.100)]);
        current.scenarios[0].repair_speedup = 2.1;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
        assert!(outcome.regressions[0].contains("repair speedup"));

        // More hits or faster kernels never regress, and `simd_rows` is
        // geometry-dependent telemetry that is never gated.
        let mut current = report(&[("dp", 0.100)]);
        current.scenarios[0].repair_hits *= 2;
        current.scenarios[0].simd_speedup = 9.0;
        current.scenarios[0].simd_rows = 0;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);

        // A baseline without repair traffic or below the speedup floors
        // (a scalar host, a pre-repair baseline) disables the gates.
        let mut old = report(&[("dp", 0.100)]);
        old.scenarios[0].repair_hits = 0;
        old.scenarios[0].simd_speedup = 1.0;
        old.scenarios[0].repair_speedup = 0.0;
        let mut current = report(&[("dp", 0.100)]);
        current.scenarios[0].repair_hits = 0;
        current.scenarios[0].simd_speedup = 0.9;
        current.scenarios[0].repair_speedup = 0.5;
        let outcome = compare_work(&current, &old).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn work_only_gate_ignores_wall_time() {
        let baseline = report(&[("s", 0.100)]);
        // 10x slower wall clock but identical work: the work gate passes.
        let current = report(&[("s", 1.000)]);
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
        assert_eq!(outcome.passed, 1);
        // One extra state per iteration beyond the integer slack fails it.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].states_expanded += 2 * 5;
        let outcome = compare_work(&current, &baseline).unwrap();
        assert!(outcome.is_regression());
    }

    #[test]
    fn memo_hit_rate_and_optional_fields() {
        assert!((scenario("s", 0.1).memo_hit_rate() - 0.9).abs() < 1e-12);
        // A pre-memo report (no memo fields) parses with zero counters and
        // a vacuous 100% hit rate.
        let legacy = r#"{"scenarios":[{"name":"s","iterations":5,
            "wall_seconds":{"min":0.08,"p50":0.1,"p90":0.12,"p99":0.13,"max":0.14},
            "states_expanded":1000,"states_pruned":400,
            "arena_reuse_hits":12,"arena_allocations":3}]}"#;
        let parsed = BenchReport::from_json(legacy).unwrap();
        let s = &parsed.scenarios[0];
        assert_eq!(s.memo_hits, 0);
        assert_eq!(s.energy_evals, 0);
        assert_eq!(s.memo_hit_rate(), 1.0);
        assert_eq!(s.gemm_flops, 0);
        assert_eq!(s.scratch_allocations, 0);
        // Cloud counters and p95 are also optional: absent counters read
        // zero (a vacuous 100% reuse rate), absent p95 reads the p90.
        assert_eq!(s.buf_reuse, 0);
        assert_eq!(s.buffer_reuse_rate(), 1.0);
        assert_eq!(s.wall_seconds.p95, s.wall_seconds.p90);
        // Coalescing counters are optional too; zero disables the
        // coalesce floors, and a flush-free scenario has zero fill.
        assert_eq!(s.coalesce_hits, 0);
        assert_eq!(s.batch_flushes, 0);
        assert_eq!(s.batch_fill(), 0.0);
        assert_eq!(s.storm_speedup, 0.0);
        // Network counters are optional too; zero disables their floor.
        assert_eq!(s.vehicles_stepped, 0);
        assert_eq!(s.network_handoffs, 0);
        // SIMD/repair counters and ratios are optional; zero disables
        // their floors on pre-vectorization baselines.
        assert_eq!(s.simd_rows, 0);
        assert_eq!(s.repair_hits, 0);
        assert_eq!(s.simd_speedup, 0.0);
        assert_eq!(s.repair_speedup, 0.0);
        // Routing counters are optional too; zero disables the route
        // floors on pre-router baselines.
        assert_eq!(s.route_oracle_calls, 0);
        assert_eq!(s.route_plan_memo_hits, 0);
        assert_eq!(s.route_oracle_ratio, 0.0);
    }

    #[test]
    fn tolerance_exactly_met_passes() {
        let baseline = report(&[("s", 0.100)]);
        // p50 lands exactly on the +15% limit: allowed, not a regression.
        let mut current = report(&[("s", 0.100)]);
        current.scenarios[0].wall_seconds.p50 = 0.100 * 1.15;
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn microsecond_medians_get_absolute_slack() {
        // +300% relatively, but far inside the absolute slack: scheduler
        // noise on a near-zero median must not fail the gate.
        let baseline = report(&[("ticks", 2.0e-6)]);
        let current = report(&[("ticks", 8.0e-6)]);
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
    }

    #[test]
    fn missing_scenario_warns_instead_of_failing() {
        let baseline = report(&[("old", 0.1)]);
        let current = report(&[("old", 0.1), ("brand_new", 9.9)]);
        let outcome = compare(&current, &baseline, 0.15).unwrap();
        assert!(!outcome.is_regression());
        assert_eq!(outcome.missing, vec!["brand_new".to_string()]);
        assert_eq!(outcome.passed, 1);
    }

    #[test]
    fn empty_baseline_is_rejected() {
        let baseline = BenchReport::default();
        let current = report(&[("s", 0.1)]);
        let err = compare(&current, &baseline, 0.15).unwrap_err();
        assert!(err.to_string().contains("no scenarios"), "{err}");
    }

    #[test]
    fn bad_tolerance_is_rejected() {
        let r = report(&[("s", 0.1)]);
        assert!(compare(&r, &r, -0.1).is_err());
        assert!(compare(&r, &r, f64::NAN).is_err());
    }

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec {
            trip_iters: 1,
            batch_size: 2,
            batch_iters: 1,
            replan_ticks: 8,
            sae_train_iters: 1,
            sae_predict_iters: 1,
            cloud_clients: 8,
            cloud_rounds: 2,
            cosim_vehicles: 6,
            cosim_corridors: 2,
            cosim_rounds: 2,
            route_grid: 4,
            route_iters: 1,
            network_corridors: 3,
            network_warmup_s: 30.0,
            network_rounds: 2,
            step_warmup_s: 20.0,
            step_rounds: 2,
            step_round_s: 1,
        }
    }

    #[test]
    fn scenario_filter_selects_by_stem_and_rejects_typos() {
        let spec = tiny_spec();
        let report = run_scenarios(&spec, Some("route_plan")).unwrap();
        assert_eq!(report.scenarios.len(), 1);
        assert_eq!(report.scenarios[0].name, "route_plan_16");
        let err = run_scenarios(&spec, Some("no_such_scenario")).unwrap_err();
        assert!(err.to_string().contains("matches no scenario"), "{err}");
        assert!(err.to_string().contains("route_plan"), "{err}");
    }

    #[test]
    fn tiny_matrix_produces_a_complete_report() {
        let spec = tiny_spec();
        let report = run_matrix(&spec).unwrap();
        assert_eq!(report.scenarios.len(), 15);
        for s in &report.scenarios {
            assert!(s.iterations > 0, "{}", s.name);
            assert!(s.wall_seconds.p50 > 0.0, "{}", s.name);
            // Every scenario reports its work: DP states, gemm FLOPs,
            // served response buffers, or stepped vehicles.
            assert!(
                s.states_expanded > 0
                    || s.gemm_flops > 0
                    || s.buf_reuse + s.buf_alloc > 0
                    || s.coalesce_flights > 0
                    || s.vehicles_stepped > 0
                    || s.route_oracle_calls > 0,
                "{}",
                s.name
            );
        }
        assert!(report.scenario("batch_2").is_some());
        // The SIMD delta rows ran both dispatches and report the same-run
        // ratio; the timed (SIMD) half only touches the vector kernels
        // when the host supports them.
        let simd = report.scenario("dp_single_simd").unwrap();
        assert!(simd.simd_speedup > 0.0);
        assert!(report.scenario("dp_batch_simd").is_some());
        // Every timed refresh tick shifts only the downstream signal's
        // windows, so the warm-started solver repairs instead of
        // re-solving, and the ratio over the scratch schedule is positive.
        let refresh = report.scenario("replan_refresh").unwrap();
        assert!(refresh.repair_speedup > 0.0);
        assert!(
            refresh.repair_hits > 0,
            "refresh ticks were not served by repair ({} full re-solves)",
            refresh.repair_full_resolves
        );
        assert!(refresh.repair_layers_skipped > 0);
        // The SAE rows carry the trainer's counters instead of the DP's,
        // and the warm rollout scenario must report zero allocations.
        let train = report.scenario("sae_train").unwrap();
        assert!(train.gemm_flops > 0);
        assert!(train.scratch_allocations > 0); // cold arenas, once per run
        let predict = report.scenario("sae_predict_batch").unwrap();
        assert!(predict.gemm_flops > 0);
        assert_eq!(
            predict.scratch_allocations, 0,
            "warm batched rollouts must not allocate"
        );
        assert!(predict.scratch_reuse_hits > 0);
        // Every scenario runs the memoized solver, so cost tables were
        // fetched and most fetches hit the shared cache.
        let seq = report.scenario("single_trip_sequential").unwrap();
        assert!(seq.memo_misses > 0);
        assert!(seq.memo_hit_rate() > 0.5, "rate {}", seq.memo_hit_rate());
        // The cloud scenario served warm traffic: every trip response came
        // from the cached frame, and the pools recycled in steady state.
        let cloud = report.scenario("cloud_serve_8").unwrap();
        assert!(cloud.plan_encode_skipped > 0);
        assert!(cloud.buf_reuse > 0);
        assert!(
            cloud.buffer_reuse_rate() >= MIN_BUF_REUSE_RATE,
            "steady-state reuse {:.2}",
            cloud.buffer_reuse_rate()
        );
        // The co-simulation storm's counters are exact: `batch_max` equals
        // the wave size, so each of the 2 rounds is one flush of 6 waiters
        // over 2 distinct trip keys.
        let cosim = report.scenario("cloud_cosim_6x2").unwrap();
        assert_eq!(cosim.batch_flushes, 2);
        assert_eq!(cosim.coalesce_flights, 2 * 2);
        assert_eq!(cosim.coalesce_hits, 2 * (6 - 2));
        assert!((cosim.batch_fill() - 6.0).abs() < 1e-12);
        assert!(cosim.storm_speedup > 0.0);
        // The warmed-up network keeps stepping traffic through the timed
        // rounds, and its counters are deltas (rounds only, not warm-up).
        let net = report.scenario("microsim_network_3").unwrap();
        assert!(net.vehicles_stepped > 0);
        assert_eq!(net.iterations, 2);
        // The network ran both dispatches and reports the step engine's
        // dispatch-invariant lane total alongside the same-run ratio.
        assert!(net.microsim_simd_speedup > 0.0);
        assert_eq!(
            net.sim_simd_lanes + net.sim_scalar_lanes,
            net.vehicles_stepped,
            "lane total must equal the vehicle-steps the network executed"
        );
        // The step-engine scenario's warm rounds reuse the pooled scratch
        // (zero growths) and keep every vehicle in the lane counters.
        let step = report.scenario("microsim_step").unwrap();
        assert!(step.vehicles_stepped > 0);
        assert!(step.microsim_simd_speedup > 0.0);
        assert_eq!(
            step.sim_arena_grows, 0,
            "timed step rounds must not grow the pooled scratch"
        );
        // The router solved edge DPs, pruned on certified bounds, shared
        // plans through the memo, and beat featureless Dijkstra on oracle
        // work — the same-run ratio is deterministic and above one even on
        // the tiny grid.
        let route = report.scenario("route_plan_16").unwrap();
        assert!(route.route_oracle_calls > 0);
        assert!(route.route_edges_pruned > 0);
        assert!(route.route_plan_memo_hits > 0);
        assert!(
            route.route_oracle_ratio > 1.0,
            "ratio {}",
            route.route_oracle_ratio
        );
        // A matrix run is comparable against itself at any tolerance.
        let outcome = compare(&report, &report, 0.0).unwrap();
        assert!(!outcome.is_regression(), "{:?}", outcome.regressions);
        assert_eq!(outcome.passed, 15);
    }
}
