//! Ablations over the design choices DESIGN.md calls out.
//!
//! 1. **Time handling** — exact time-expanded DP vs the paper-literal
//!    greedy DP: violation counts and runtime class.
//! 2. **Time weight β** — how the energy/time trade moves the free-cruise
//!    speed and the plan's slack for hitting `T_q`.
//! 3. **Stop dwell** — arrival-time error at the lights when sign service
//!    is (not) modeled.
//! 4. **Penalty form** — additive `+M` vs the paper's multiplicative `M·ζ`
//!    (emulated by scaling): why the multiplicative form breaks under
//!    regeneration.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin ablation_study
//! ```

use velopt_bench::{col, tsv};
use velopt_common::units::Seconds;
use velopt_core::dp::{DpConfig, DpOptimizer, TimeHandling};
use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt_ev_energy::{EnergyModel, RegenPolicy, VehicleParams};

fn energy_model() -> EnergyModel {
    EnergyModel::with_regen(
        VehicleParams::spark_ev(),
        RegenPolicy::Limited {
            efficiency: 0.6,
            cutoff: velopt_common::units::MetersPerSecond::new(1.5),
        },
    )
}

fn main() {
    let base_system =
        VelocityOptimizationSystem::new(SystemConfig::us25_rush()).expect("preset valid");
    let road = base_system.config().road.clone();
    let windows = base_system.queue_windows().expect("windows");

    // ---- 1. Exact vs greedy time handling. -------------------------------
    println!("## time handling");
    let mut rows = Vec::new();
    for (name, mode) in [
        ("exact", TimeHandling::Exact),
        ("greedy", TimeHandling::Greedy),
    ] {
        let opt = DpOptimizer::new(
            energy_model(),
            DpConfig {
                time_handling: mode,
                ..DpConfig::default()
            },
        )
        .expect("config valid");
        let t0 = std::time::Instant::now();
        let plan = opt.optimize(&road, &windows).expect("feasible");
        let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
        rows.push(vec![
            name.to_string(),
            plan.window_violations.to_string(),
            col(plan.total_energy.to_milliamp_hours()),
            col(plan.trip_time.value()),
            col(elapsed),
        ]);
    }
    print!(
        "{}",
        tsv(
            &["mode", "violations", "energy_mAh", "trip_s", "runtime_ms"],
            &rows,
        )
    );

    // ---- 2. Time-weight sweep. --------------------------------------------
    println!("\n## time weight (beta)");
    let mut rows = Vec::new();
    for beta in [0.0, 0.001, 0.003, 0.01, 0.03] {
        let opt = DpOptimizer::new(
            energy_model(),
            DpConfig {
                time_weight: beta,
                ..DpConfig::default()
            },
        )
        .expect("config valid");
        let plan = opt.optimize(&road, &windows).expect("feasible");
        // Cruise speed proxy: median of the nonzero station speeds.
        let mut speeds: Vec<f64> = plan
            .speeds
            .iter()
            .map(|v| v.value())
            .filter(|v| *v > 1.0)
            .collect();
        speeds.sort_by(f64::total_cmp);
        let median = speeds.get(speeds.len() / 2).copied().unwrap_or(0.0);
        rows.push(vec![
            col(beta),
            col(median * 3.6),
            col(plan.trip_time.value()),
            col(plan.total_energy.to_milliamp_hours()),
            plan.window_violations.to_string(),
        ]);
    }
    print!(
        "{}",
        tsv(
            &[
                "beta_Ah_per_s",
                "median_cruise_kmh",
                "trip_s",
                "energy_mAh",
                "violations",
            ],
            &rows,
        )
    );

    // ---- 3. Stop-dwell sweep. ----------------------------------------------
    println!("\n## stop dwell");
    let mut rows = Vec::new();
    for dwell in [0.0, 2.5, 5.5, 8.0] {
        let opt = DpOptimizer::new(
            energy_model(),
            DpConfig {
                stop_dwell: Seconds::new(dwell),
                ..DpConfig::default()
            },
        )
        .expect("config valid");
        let plan = opt.optimize(&road, &windows).expect("feasible");
        let arrival1 = plan.arrival_time_at(velopt_common::units::Meters::new(1800.0));
        rows.push(vec![
            col(dwell),
            col(arrival1.value()),
            col(plan.trip_time.value()),
            plan.window_violations.to_string(),
        ]);
    }
    print!(
        "{}",
        tsv(
            &["dwell_s", "arrival_light1_s", "trip_s", "violations"],
            &rows
        )
    );
    eprintln!(
        "# note: the light-1 arrival barely moves across the sweep — the\n\
         # T_q windows pin it, and the DP re-times the launch instead. The\n\
         # dwell's real effect is *alignment with the simulator*: without it\n\
         # the replayed EV runs ~5.5 s behind its plan (the open-loop drift\n\
         # measured in the Fig. 6 experiment), landing in the wrong part of\n\
         # the window."
    );

    // ---- 4. Penalty form. ---------------------------------------------------
    println!("\n## penalty form (why additive, not multiplicative)");
    // Demonstrate on a raw transition: braking from 17 to 10 m/s over 20 m.
    let em = EnergyModel::new(VehicleParams::spark_ev());
    let seg = em
        .segment_energy(
            velopt_common::units::MetersPerSecond::new(17.0),
            velopt_common::units::MetersPerSecondSq::new(
                (10.0f64 * 10.0 - 17.0 * 17.0) / (2.0 * 20.0),
            ),
            velopt_common::units::Meters::new(20.0),
            velopt_common::units::Radians::ZERO,
        )
        .expect("feasible segment");
    let zeta = seg.charge.value();
    let m = 1.0e6;
    println!("braking transition cost (paper-literal regen): {zeta:.6} Ah");
    println!(
        "multiplicative penalty M*zeta = {:.1} Ah (NEGATIVE: a reward!)",
        m * zeta
    );
    println!(
        "additive penalty zeta + M    = {:.1} Ah (a deterrent)",
        zeta + m
    );
    eprintln!(
        "# Eq. 12's multiplicative form inverts for regenerative transitions;\n\
         # the additive form preserves its intent for all cost signs."
    );
}
