//! Regenerates **Fig. 4**: (a) one week of hourly traffic volume and (b)
//! the SAE predictor's MRE/RMSE per weekday after training on 13 weeks.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin fig4
//! ```

use velopt_bench::{col, tsv};
use velopt_traffic::{HourlyVolume, SaePredictor, SaePredictorConfig, VolumeGenerator};

fn main() {
    // §III-A-2: three months of training data, one week of testing.
    let feed = VolumeGenerator::us25_station(2016)
        .generate_weeks(14)
        .expect("weeks >= 1");
    let (train, test) = feed.split_at_week(13).expect("cut inside the feed");

    eprintln!("# training SAE on {} hours...", train.len());
    let predictor =
        SaePredictor::train(&train, &SaePredictorConfig::default()).expect("training succeeds");
    let report = predictor.evaluate(&test).expect("evaluation succeeds");

    // Fig. 4(a): the test week's volumes alongside the predictions.
    let rows: Vec<Vec<String>> = (0..test.len())
        .map(|h| {
            vec![
                h.to_string(),
                HourlyVolume::day_of_week(h).to_string(),
                col(report.actuals[h]),
                col(report.predictions[h]),
            ]
        })
        .collect();
    print!(
        "{}",
        tsv(
            &["hour", "day_of_week", "volume_vph", "predicted_vph"],
            &rows
        )
    );

    // Fig. 4(b): MRE and RMSE per weekday.
    println!();
    let days = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    let rows: Vec<Vec<String>> = report
        .per_day
        .iter()
        .map(|d| {
            vec![
                days[d.day_of_week].to_string(),
                col(100.0 * d.mre),
                col(d.rmse),
            ]
        })
        .collect();
    print!("{}", tsv(&["day", "MRE_percent", "RMSE_vph"], &rows));

    eprintln!(
        "# overall MRE {:.1}% (paper: < 10% each day), RMSE {:.1} veh/h",
        100.0 * report.overall.mre,
        report.overall.rmse
    );
    let worst = report.per_day.iter().map(|d| d.mre).fold(0.0f64, f64::max);
    eprintln!(
        "# worst day MRE {:.1}% -> paper claim {}",
        100.0 * worst,
        if worst < 0.10 { "HOLDS" } else { "VIOLATED" }
    );
}
