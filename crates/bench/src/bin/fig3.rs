//! Regenerates **Fig. 3**: the energy-consumption-rate surface ζ(v, a) of a
//! pure EV at zero grade, showing steep growth with acceleration and a
//! negative (regenerative) region under deceleration.
//!
//! ```sh
//! cargo run -p velopt-bench --bin fig3
//! ```

use velopt_bench::{col, tsv};
use velopt_ev_energy::{map::EnergyMap, EnergyModel, VehicleParams};

fn main() {
    // The paper-literal Eq. 3 model (no auxiliary load in ζ, symmetric
    // efficiency) — exactly what Fig. 3 plots.
    let model = EnergyModel::new(VehicleParams::spark_ev());
    let map = EnergyMap::generate(&model, 25, 17).expect("grid is valid");

    let rows: Vec<Vec<String>> = map
        .iter()
        .map(|(speed_kmh, accel, rate_amps)| {
            vec![col(speed_kmh), col(accel), col(rate_amps * 1000.0 / 3600.0)]
        })
        .collect();
    print!(
        "{}",
        tsv(&["speed_kmh", "accel_ms2", "rate_mAh_per_s"], &rows)
    );

    eprintln!(
        "# surface: min {:.3} A (regen), max {:.3} A; ζ = 0 along v = 0",
        map.min_rate(),
        map.max_rate()
    );
    eprintln!(
        "# paper shape check: consumption grows with acceleration: {}; negative under braking: {}",
        map.rate_at(12, 16) > map.rate_at(12, 8),
        map.min_rate() < 0.0
    );
}
