//! Runs every experiment of the paper's evaluation (§III) and prints one
//! paper-vs-measured row per claim — the source of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin experiments
//! ```

use velopt_bench::replay_through_traci;
use velopt_common::units::{Seconds, VehiclesPerHour};
use velopt_core::analysis::{ProfileMetrics, TripComparison};
use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt_core::profiles::{DriverProfile, DrivingStyle};
use velopt_ev_energy::{map::EnergyMap, EnergyModel, VehicleParams};
use velopt_queue::{BaselineQueueModel, QueueModel, QueueParams};
use velopt_traffic::{SaePredictor, SaePredictorConfig, VolumeGenerator};

fn row(id: &str, claim: &str, paper: &str, measured: String, holds: bool) {
    println!(
        "| {id} | {claim} | {paper} | {measured} | {} |",
        if holds { "HOLDS" } else { "VIOLATED" }
    );
}

fn main() {
    println!("| experiment | claim | paper | measured | verdict |");
    println!("|---|---|---|---|---|");

    // ---- Fig. 3: energy map shape. -------------------------------------
    let model = EnergyModel::new(VehicleParams::spark_ev());
    let map = EnergyMap::generate(&model, 25, 17).expect("grid valid");
    row(
        "Fig. 3",
        "consumption grows with acceleration; negative under braking",
        "qualitative",
        format!(
            "max {:.0} A at (v_max, a_max); min {:.0} A (regen)",
            map.max_rate(),
            map.min_rate()
        ),
        map.min_rate() < 0.0 && map.max_rate() > 0.0,
    );

    // ---- Fig. 4: SAE accuracy. ------------------------------------------
    eprintln!("# training SAE (13 weeks)...");
    let feed = VolumeGenerator::us25_station(2016)
        .generate_weeks(14)
        .expect("feed");
    let (train, test) = feed.split_at_week(13).expect("cut");
    let predictor = SaePredictor::train(&train, &SaePredictorConfig::default()).expect("training");
    let report = predictor.evaluate(&test).expect("evaluation");
    let worst = report.per_day.iter().map(|d| d.mre).fold(0.0f64, f64::max);
    row(
        "Fig. 4b",
        "SAE MRE < 10% on every test day",
        "< 10%",
        format!(
            "worst day {:.1}%, overall {:.1}%, RMSE {:.1} veh/h",
            100.0 * worst,
            100.0 * report.overall.mre,
            report.overall.rmse
        ),
        worst < 0.10,
    );

    // ---- Fig. 5a: leaving-rate ramp. -------------------------------------
    let probe = QueueParams::us25_probe();
    let ql = QueueModel::new(probe).expect("probe valid");
    let ramp = ql.vm().ramp_duration().value();
    row(
        "Fig. 5a",
        "VM model reaches saturation later than the instant-discharge method",
        "slower ramp",
        format!("VM ramp {ramp:.1} s vs 0 s for [9]"),
        ramp > 1.0,
    );

    // ---- Fig. 5b: QL model accuracy vs simulated queue. ------------------
    eprintln!("# measuring simulated queue...");
    let (rmse_ours, rmse_base) = fig5b_rmse();
    row(
        "Fig. 5b",
        "our QL model tracks the real queue better than [9]",
        "more accurate",
        format!("RMSE {rmse_ours:.2} vs {rmse_base:.2} veh"),
        rmse_ours < rmse_base,
    );

    // ---- Fig. 6: simulator-derived profiles. -----------------------------
    eprintln!("# optimizing and replaying through the simulator...");
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).expect("preset valid");
    let ours_plan = system.optimize().expect("feasible");
    let base_plan = system.optimize_baseline().expect("feasible");
    let ours_sim = replay_through_traci(&ours_plan).expect("replay");
    let base_sim = replay_through_traci(&base_plan).expect("replay");
    let min_of = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let ours_min = min_of(&ours_sim.min_speed_at_lights);
    let base_min = min_of(&base_sim.min_speed_at_lights);
    row(
        "Fig. 6",
        "current DP stops/brakes hard at a light; proposed glides through",
        "stop + large decel vs none",
        format!("min speed at lights: {base_min:.1} vs {ours_min:.1} m/s"),
        base_min < 0.6 * ours_min && ours_min > 6.0,
    );
    row(
        "Fig. 6 (windows)",
        "proposed arrivals inside T_q at every light; current DP outside",
        "0 vs >=1 violations",
        format!(
            "ours {} / baseline {} lights outside T_q",
            tq_violations(&system, &ours_plan),
            tq_violations(&system, &base_plan)
        ),
        tq_violations(&system, &ours_plan) == 0 && tq_violations(&system, &base_plan) >= 1,
    );

    // ---- Fig. 7: energy comparison. --------------------------------------
    let road = system.config().road.clone();
    let em = system.energy_model();
    let dt = Seconds::new(0.2);
    let mild = DriverProfile::generate(&road, DrivingStyle::Mild, dt).expect("finishes");
    let fast = DriverProfile::generate(&road, DrivingStyle::Fast, dt).expect("finishes");
    let cmp = TripComparison::new(vec![
        ProfileMetrics::from_speed_series(
            "proposed",
            &ours_plan.to_time_series(dt).expect("series"),
            &road,
            &em,
        )
        .expect("metrics"),
        ProfileMetrics::from_speed_series(
            "current DP",
            &base_plan.to_time_series(dt).expect("series"),
            &road,
            &em,
        )
        .expect("metrics"),
        ProfileMetrics::from_speed_series("mild driving", &mild.speed, &road, &em)
            .expect("metrics"),
        ProfileMetrics::from_speed_series("fast driving", &fast.speed, &road, &em)
            .expect("metrics"),
    ]);
    for (name, paper) in [
        ("fast driving", "17.5%"),
        ("mild driving", "8.4%"),
        ("current DP", "5.1%"),
    ] {
        let saving = cmp.savings_vs(name).expect("profile present");
        row(
            "Fig. 7b",
            &format!("proposed saves energy vs {name}"),
            paper,
            format!("{:+.1}%", 100.0 * saving),
            saving > 0.0,
        );
    }

    // ---- Fig. 8: trip times. ---------------------------------------------
    let ratio = ours_sim.trip.value() / fast.trip_time.value();
    row(
        "Fig. 8",
        "proposed trip time ≈ fast driving, < mild driving",
        "equal to fast",
        format!(
            "proposed {:.0} s, fast {:.0} s (ratio {ratio:.2}), mild {:.0} s",
            ours_sim.trip.value(),
            fast.trip_time.value(),
            mild.trip_time.value()
        ),
        (0.8..=1.25).contains(&ratio) && ours_sim.trip.value() < mild.trip_time.value(),
    );
}

/// Fig. 5b measurement: cycle-folded simulated queue vs both QL models.
fn fig5b_rmse() -> (f64, f64) {
    use velopt_common::units::Meters;
    use velopt_microsim::{SimConfig, Simulation};
    use velopt_road::RoadBuilder;

    let probe = QueueParams {
        straight_ratio: 1.0,
        arrival_rate: VehiclesPerHour::new(700.0),
        ..QueueParams::us25_probe()
    };
    let road = RoadBuilder::new(Meters::new(2000.0))
        .default_limits(
            velopt_common::units::KilometersPerHour::new(40.0).to_meters_per_second(),
            velopt_common::units::KilometersPerHour::new(70.0).to_meters_per_second(),
        )
        .traffic_light(Meters::new(1500.0), probe.red, probe.green, Seconds::ZERO)
        .build()
        .expect("road valid");
    let mut sim = Simulation::new(road, SimConfig::default()).expect("config valid");
    sim.set_arrival_rate(probe.arrival_rate);
    sim.run_until(Seconds::new(300.0)).expect("time forward");
    let mut real = vec![0.0f64; 60];
    let cycles = 12;
    for c in 0..cycles {
        for (s, bucket) in real.iter_mut().enumerate() {
            sim.run_until(Seconds::new(300.0 + (c * 60 + s) as f64))
                .expect("time forward");
            *bucket += sim.queue_at_light(0) as f64;
        }
    }
    for q in &mut real {
        *q /= cycles as f64;
    }
    let ours = QueueModel::new(probe).expect("valid");
    let base = BaselineQueueModel::new(probe).expect("valid");
    let ours_pred: Vec<f64> = (0..60)
        .map(|s| ours.queue_vehicles(Seconds::new(s as f64)))
        .collect();
    let base_pred: Vec<f64> = (0..60)
        .map(|s| base.queue_vehicles(Seconds::new(s as f64)))
        .collect();
    (
        velopt_common::stats::rmse(&ours_pred, &real).expect("aligned"),
        velopt_common::stats::rmse(&base_pred, &real).expect("aligned"),
    )
}

fn tq_violations(
    system: &VelocityOptimizationSystem,
    plan: &velopt_core::dp::OptimizedProfile,
) -> usize {
    system
        .queue_windows()
        .expect("windows")
        .iter()
        .filter(|w| !w.admits(plan.arrival_time_at(w.position)))
        .count()
}
