//! Regenerates **Fig. 6**: planned vs simulator-derived velocity profiles
//! for (a) the existing queue-oblivious DP \[2\] and (b) the proposed
//! queue-aware DP, replayed through the microscopic simulator over TraCI.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin fig6
//! ```

use velopt_bench::{col, downsample_1hz, replay_through_traci, tsv};
use velopt_common::units::Seconds;
use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};

fn main() {
    let system =
        VelocityOptimizationSystem::new(SystemConfig::us25_rush()).expect("preset is valid");
    let ours = system.optimize().expect("feasible");
    let baseline = system.optimize_baseline().expect("feasible");

    eprintln!("# replaying both plans through the simulator over TraCI...");
    let derived_base = replay_through_traci(&baseline).expect("replay succeeds");
    let derived_ours = replay_through_traci(&ours).expect("replay succeeds");

    let plan_base = baseline
        .to_time_series(Seconds::new(1.0))
        .expect("positive step");
    let plan_ours = ours
        .to_time_series(Seconds::new(1.0))
        .expect("positive step");
    let sim_base = downsample_1hz(&derived_base.derived_speed).expect("long enough");
    let sim_ours = downsample_1hz(&derived_ours.derived_speed).expect("long enough");

    let n = [
        plan_base.len(),
        plan_ours.len(),
        sim_base.len(),
        sim_ours.len(),
    ]
    .into_iter()
    .max()
    .unwrap_or(0);
    let get = |s: &velopt_common::TimeSeries, i: usize| -> String {
        s.samples()
            .get(i)
            .map(|v| col(v * 3.6))
            .unwrap_or_else(|| "".into())
    };
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            vec![
                i.to_string(),
                get(&plan_base, i),
                get(&sim_base, i),
                get(&plan_ours, i),
                get(&sim_ours, i),
            ]
        })
        .collect();
    print!(
        "{}",
        tsv(
            &[
                "t_s",
                "dp_current_kmh",
                "sumo_current_kmh",
                "dp_ours_kmh",
                "sumo_ours_kmh",
            ],
            &rows,
        )
    );

    eprintln!(
        "# current DP [2]: min speed in light areas {:?} m/s, stops {}",
        derived_base
            .min_speed_at_lights
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        derived_base.stops_at_lights
    );
    eprintln!(
        "# proposed:       min speed in light areas {:?} m/s, stops {}",
        derived_ours
            .min_speed_at_lights
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        derived_ours.stops_at_lights
    );
    let base_min = derived_base
        .min_speed_at_lights
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let ours_min = derived_ours
        .min_speed_at_lights
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    eprintln!(
        "# paper shape (Fig. 6a stop/hard-deceleration for the current DP, none for ours): {}",
        if base_min < 0.6 * ours_min {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
