//! Regenerates **Fig. 5**: traffic dynamics over one signal cycle at the
//! probe intersection — (a) the leaving rate of the VM model vs the
//! instant-discharge method of \[9\] vs the arrival rate, and (b) the queue
//! length of our QL model vs the baseline QL model vs the simulator's
//! measured queue ("real data").
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin fig5
//! ```

use velopt_bench::{col, tsv};
use velopt_common::units::{Meters, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_queue::{BaselineQueueModel, QueueModel, QueueParams};
use velopt_road::RoadBuilder;

/// Measures the cycle-folded average queue at an isolated light.
fn measured_queue(params: &QueueParams, cycles: usize) -> Vec<f64> {
    let road = RoadBuilder::new(Meters::new(2000.0))
        .default_limits(
            velopt_common::units::KilometersPerHour::new(40.0).to_meters_per_second(),
            velopt_common::units::KilometersPerHour::new(70.0).to_meters_per_second(),
        )
        .traffic_light(Meters::new(1500.0), params.red, params.green, Seconds::ZERO)
        .build()
        .expect("probe road is valid");
    let mut sim = Simulation::new(road, SimConfig::default()).expect("config is valid");
    sim.set_arrival_rate(params.arrival_rate);
    sim.run_until(Seconds::new(300.0)).expect("forward in time");
    let cycle = params.cycle().value() as usize;
    let mut folded = vec![0.0; cycle];
    for c in 0..cycles {
        for (s, bucket) in folded.iter_mut().enumerate() {
            sim.run_until(Seconds::new(300.0 + (c * cycle + s) as f64))
                .expect("forward in time");
            *bucket += sim.queue_at_light(0) as f64;
        }
    }
    folded.iter().map(|q| q / cycles as f64).collect()
}

fn main() {
    // The paper's probe (§III-B-2): d̄ = 8.5 m, γ = 0.7636, V_in = 153
    // veh/h, 30 s red + 30 s green. The microsim probe road has no
    // turners, so γ = 1 for the "real data" comparison.
    let probe = QueueParams {
        straight_ratio: 1.0,
        arrival_rate: VehiclesPerHour::new(700.0),
        ..QueueParams::us25_probe()
    };
    let ours = QueueModel::new(probe).expect("params valid");
    let baseline = BaselineQueueModel::new(probe).expect("params valid");

    // Fig. 5(a): leaving rates over one cycle.
    let rows: Vec<Vec<String>> = (0..60)
        .map(|s| {
            let t = Seconds::new(s as f64);
            vec![
                s.to_string(),
                col(ours.leaving_rate(t).value()),
                col(baseline.leaving_rate(t).value()),
                col(probe.arrival_rate.value()),
            ]
        })
        .collect();
    print!(
        "{}",
        tsv(&["t_s", "vm_out_vph", "current_out_vph", "v_in_vph"], &rows)
    );
    eprintln!(
        "# VM model needs {:.1} s of green to saturate; the baseline saturates instantly",
        ours.vm().ramp_duration().value()
    );

    // Fig. 5(b): queue lengths vs the simulator's measurement.
    println!();
    eprintln!("# measuring simulated queue (12 cycles)...");
    let real = measured_queue(&probe, 12);
    let rows: Vec<Vec<String>> = (0..60)
        .map(|s| {
            let t = Seconds::new(s as f64);
            vec![
                s.to_string(),
                col(ours.queue_vehicles(t)),
                col(baseline.queue_vehicles(t)),
                col(real[s]),
            ]
        })
        .collect();
    print!(
        "{}",
        tsv(&["t_s", "ql_ours_veh", "ql_current_veh", "real_veh"], &rows)
    );

    let ours_pred: Vec<f64> = (0..60)
        .map(|s| ours.queue_vehicles(Seconds::new(s as f64)))
        .collect();
    let base_pred: Vec<f64> = (0..60)
        .map(|s| baseline.queue_vehicles(Seconds::new(s as f64)))
        .collect();
    let rmse_ours = velopt_common::stats::rmse(&ours_pred, &real).expect("aligned");
    let rmse_base = velopt_common::stats::rmse(&base_pred, &real).expect("aligned");
    eprintln!(
        "# queue RMSE vs real: ours {rmse_ours:.2} veh, current [9] {rmse_base:.2} veh -> \
         paper claim (ours more accurate) {}",
        if rmse_ours < rmse_base {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
