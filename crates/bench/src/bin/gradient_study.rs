//! Road-gradient study — the paper's stated future work (§V: "we will
//! consider the effect of road gradient on the proposed system to check
//! whether it will have great impact on optimization velocity profile").
//!
//! Sweeps a uniform grade over the US-25 geometry and re-runs the
//! queue-aware optimization, reporting how energy, trip time and the
//! profile itself respond; then runs a rolling-hill variant.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin gradient_study
//! ```

use velopt_bench::{col, tsv};
use velopt_common::units::{KilometersPerHour, Meters};
use velopt_core::pipeline::{ArrivalRates, SystemConfig, VelocityOptimizationSystem};
use velopt_road::{Road, RoadBuilder};

/// US-25 geometry with a uniform grade in percent.
fn us25_with_grade(percent: f64) -> Road {
    let base = Road::us25();
    let mut b = RoadBuilder::new(base.length());
    b.default_limits(
        KilometersPerHour::new(40.0).to_meters_per_second(),
        KilometersPerHour::new(70.0).to_meters_per_second(),
    );
    b.stop_sign(Meters::new(490.0));
    for light in base.traffic_lights() {
        b.traffic_light(light.position(), light.red(), light.green(), light.offset());
    }
    b.grade_knot(Meters::ZERO, percent);
    b.grade_knot(base.length(), percent);
    b.build().expect("derived road is valid")
}

/// US-25 geometry with a climb to mid-corridor and a descent after.
fn us25_rolling() -> Road {
    let base = Road::us25();
    let mut b = RoadBuilder::new(base.length());
    b.default_limits(
        KilometersPerHour::new(40.0).to_meters_per_second(),
        KilometersPerHour::new(70.0).to_meters_per_second(),
    );
    b.stop_sign(Meters::new(490.0));
    for light in base.traffic_lights() {
        b.traffic_light(light.position(), light.red(), light.green(), light.offset());
    }
    b.grade_knot(Meters::ZERO, 0.0);
    b.grade_knot(Meters::new(1000.0), 4.0);
    b.grade_knot(Meters::new(2100.0), 4.0);
    b.grade_knot(Meters::new(3200.0), -4.0);
    b.grade_knot(base.length(), 0.0);
    b.build().expect("derived road is valid")
}

fn run(road: Road) -> (f64, f64, usize) {
    let config = SystemConfig {
        road,
        rates: match SystemConfig::us25_rush().rates {
            ArrivalRates::Fixed(r) => ArrivalRates::Fixed(r),
        },
        ..SystemConfig::us25_rush()
    };
    let system = VelocityOptimizationSystem::new(config).expect("config valid");
    let plan = system.optimize().expect("feasible");
    (
        plan.total_energy.to_milliamp_hours(),
        plan.trip_time.value(),
        plan.window_violations,
    )
}

fn main() {
    let (flat_energy, _, _) = run(us25_with_grade(0.0));
    let mut rows = Vec::new();
    for grade in [-6.0, -4.0, -2.0, 0.0, 2.0, 4.0, 6.0] {
        let (energy, trip, violations) = run(us25_with_grade(grade));
        rows.push(vec![
            col(grade),
            col(energy),
            col(trip),
            col(100.0 * (energy / flat_energy - 1.0)),
            violations.to_string(),
        ]);
    }
    print!(
        "{}",
        tsv(
            &[
                "grade_percent",
                "energy_mAh",
                "trip_s",
                "vs_flat_percent",
                "violations",
            ],
            &rows,
        )
    );

    let (hill_energy, hill_trip, hill_violations) = run(us25_rolling());
    eprintln!(
        "# rolling-hill variant: {hill_energy:.1} mAh, {hill_trip:.1} s, \
         {hill_violations} violations"
    );
    eprintln!(
        "# findings: grade dominates the energy budget (climbing work is\n\
         # m*g*sin(theta) per meter) but the queue-aware timing remains\n\
         # feasible at every grade — gradient changes the cost of the\n\
         # profile far more than its shape."
    );
}
