//! Regenerates **Fig. 7**: (a) the mild/fast human velocity profiles with
//! the speed limit, and (b) the total-energy comparison across the four
//! profiles — proposed, current DP \[2\], mild driving, fast driving.
//!
//! Paper headline: the proposed profile uses 17.5% less energy than fast
//! driving, 8.4% less than mild driving and 5.1% less than the current DP.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin fig7
//! ```

use velopt_bench::{col, replay_through_traci, tsv};
use velopt_common::units::Seconds;
use velopt_core::analysis::{ProfileMetrics, TripComparison};
use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt_core::profiles::{DriverProfile, DrivingStyle};

fn main() {
    let system =
        VelocityOptimizationSystem::new(SystemConfig::us25_rush()).expect("preset is valid");
    let road = system.config().road.clone();
    let energy_model = system.energy_model();
    let dt = Seconds::new(0.2);

    let mild = DriverProfile::generate(&road, DrivingStyle::Mild, dt).expect("finishes");
    let fast = DriverProfile::generate(&road, DrivingStyle::Fast, dt).expect("finishes");

    // Fig. 7(a): the collected (here: generated) profiles + speed limit.
    let n = mild.speed.len().max(fast.speed.len());
    let rows: Vec<Vec<String>> = (0..n)
        .step_by(5)
        .map(|i| {
            let t = i as f64 * dt.value();
            let m = mild.speed.samples().get(i).map(|v| col(v * 3.6));
            let f = fast.speed.samples().get(i).map(|v| col(v * 3.6));
            let x = fast
                .position
                .samples()
                .get(i)
                .copied()
                .unwrap_or(road.length().value());
            let limit = road
                .speed_limits_at(velopt_common::units::Meters::new(x))
                .1
                .to_kilometers_per_hour()
                .value();
            vec![
                col(t),
                m.unwrap_or_default(),
                f.unwrap_or_default(),
                col(limit),
            ]
        })
        .collect();
    print!(
        "{}",
        tsv(&["t_s", "mild_kmh", "fast_kmh", "limit_kmh"], &rows)
    );

    // Fig. 7(b): energies of the four profiles on the planned/trace basis
    // (the paper's headline numbers), plus the simulator-derived energies
    // of the two DP methods for reference (traffic perturbs both).
    eprintln!("# optimizing and replaying through the simulator...");
    let ours_plan = system.optimize().expect("feasible");
    let base_plan = system.optimize_baseline().expect("feasible");
    let ours_series = ours_plan.to_time_series(dt).expect("positive step");
    let base_series = base_plan.to_time_series(dt).expect("positive step");
    let ours_sim = replay_through_traci(&ours_plan).expect("replay succeeds");
    let base_sim = replay_through_traci(&base_plan).expect("replay succeeds");

    let metric = |name: &str, s: &velopt_common::TimeSeries| {
        ProfileMetrics::from_speed_series(name, s, &road, &energy_model).expect("valid series")
    };
    let cmp = TripComparison::new(vec![
        metric("proposed", &ours_series),
        metric("current DP", &base_series),
        metric("mild driving", &mild.speed),
        metric("fast driving", &fast.speed),
        metric("proposed (sim-derived)", &ours_sim.derived_speed),
        metric("current DP (sim-derived)", &base_sim.derived_speed),
    ]);
    println!();
    print!("{}", cmp.to_tsv());

    for (name, paper) in [
        ("fast driving", 17.5),
        ("mild driving", 8.4),
        ("current DP", 5.1),
    ] {
        if let Some(saving) = cmp.savings_vs(name) {
            eprintln!(
                "# proposed saves {:+.1}% vs {name} (paper: {paper}%) -> {}",
                100.0 * saving,
                if saving > 0.0 {
                    "HOLDS (direction)"
                } else {
                    "VIOLATED"
                }
            );
        }
    }
}
