//! Regenerates **Fig. 8**: distance–time curves of (a) the collected
//! mild/fast profiles and (b) the two optimized profiles as derived from
//! the simulator. Zero-slope regions are stops; the paper's claim is that
//! the proposed method's trip time matches fast driving and beats the
//! current DP, while mild driving is slowest.
//!
//! ```sh
//! cargo run --release -p velopt-bench --bin fig8
//! ```

use velopt_bench::{col, replay_through_traci, tsv};
use velopt_common::units::Seconds;
use velopt_core::analysis::distance_time_curve;
use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt_core::profiles::{DriverProfile, DrivingStyle};

fn main() {
    let system =
        VelocityOptimizationSystem::new(SystemConfig::us25_rush()).expect("preset is valid");
    let road = system.config().road.clone();
    let dt = Seconds::new(0.2);

    let mild = DriverProfile::generate(&road, DrivingStyle::Mild, dt).expect("finishes");
    let fast = DriverProfile::generate(&road, DrivingStyle::Fast, dt).expect("finishes");
    eprintln!("# optimizing and replaying through the simulator...");
    let ours = replay_through_traci(&system.optimize().expect("feasible")).expect("replay");
    let base =
        replay_through_traci(&system.optimize_baseline().expect("feasible")).expect("replay");

    let curves = [
        ("mild", distance_time_curve(&mild.speed)),
        ("fast", distance_time_curve(&fast.speed)),
        ("proposed", distance_time_curve(&ours.derived_speed)),
        ("current_dp", distance_time_curve(&base.derived_speed)),
    ];

    let n = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    let step = curves[0].1.step().value();
    let rows: Vec<Vec<String>> = (0..n)
        .step_by(5)
        .map(|i| {
            let mut row = vec![col(i as f64 * step)];
            for (_, c) in &curves {
                row.push(c.samples().get(i).map(|d| col(*d)).unwrap_or_default());
            }
            row
        })
        .collect();
    print!(
        "{}",
        tsv(
            &["t_s", "mild_m", "fast_m", "proposed_m", "current_dp_m"],
            &rows,
        )
    );

    let trips = [
        ("mild", mild.trip_time.value()),
        ("fast", fast.trip_time.value()),
        ("proposed", ours.trip.value()),
        ("current DP", base.trip.value()),
    ];
    for (name, t) in trips {
        eprintln!("# trip time {name}: {t:.1} s");
    }
    let ratio = ours.trip.value() / fast.trip_time.value();
    eprintln!(
        "# proposed/fast trip ratio {ratio:.2} (paper: ~1.0) -> {}",
        if (0.8..=1.25).contains(&ratio) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    eprintln!(
        "# proposed beats mild ({}) as in the paper",
        if ours.trip.value() < mild.trip_time.value() {
            "yes"
        } else {
            "no"
        }
    );
}
