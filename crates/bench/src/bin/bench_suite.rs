//! `bench-suite` — the continuous-benchmark runner and perf-regression
//! gate (see [`velopt_bench::suite`]).
//!
//! ```text
//! bench-suite [--quick] [--out PATH]
//!     Run the scenario matrix and write the report (default BENCH_dp.json).
//!
//! bench-suite --check BASELINE [--current PATH] [--tolerance T] [--warn-only]
//!     Compare a report (a fresh run, or --current PATH) against BASELINE.
//!     A scenario regresses when its median wall time exceeds the baseline
//!     median by strictly more than T (default 0.15 = +15%).
//! ```
//!
//! Exit codes: `0` success (or regression under `--warn-only`), `1`
//! regression, `2` usage or I/O errors.

use std::process::ExitCode;
use velopt_bench::suite::{compare, run_matrix, BenchReport, MatrixSpec};

struct Args {
    quick: bool,
    out: String,
    check: Option<String>,
    current: Option<String>,
    tolerance: f64,
    warn_only: bool,
}

const USAGE: &str = "usage: bench-suite [--quick] [--out PATH] \
     [--check BASELINE [--current PATH] [--tolerance T] [--warn-only]]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "BENCH_dp.json".to_string(),
        check: None,
        current: None,
        tolerance: 0.15,
        warn_only: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--warn-only" => args.warn_only = true,
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--current" => args.current = Some(value("--current")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--tolerance {raw:?} is not a number\n{USAGE}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.current.is_some() && args.check.is_none() {
        return Err(format!("--current only makes sense with --check\n{USAGE}"));
    }
    Ok(args)
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path:?}: {e}"))
}

fn run(args: &Args) -> Result<ExitCode, String> {
    // The current report: load it, or run the matrix and persist it.
    let current = match &args.current {
        Some(path) => load_report(path)?,
        None => {
            let spec = if args.quick {
                MatrixSpec::quick()
            } else {
                MatrixSpec::full()
            };
            eprintln!(
                "running {} scenario matrix...",
                if args.quick { "quick" } else { "full" }
            );
            let report = run_matrix(&spec).map_err(|e| format!("matrix failed: {e}"))?;
            std::fs::write(&args.out, report.to_json())
                .map_err(|e| format!("cannot write {:?}: {e}", args.out))?;
            for s in &report.scenarios {
                eprintln!(
                    "  {:<24} p50 {:>9.4}s  p90 {:>9.4}s  expanded {:>10}  reuse {:>6}",
                    s.name,
                    s.wall_seconds.p50,
                    s.wall_seconds.p90,
                    s.states_expanded,
                    s.arena_reuse_hits,
                );
            }
            eprintln!("report written to {}", args.out);
            report
        }
    };

    let Some(baseline_path) = &args.check else {
        return Ok(ExitCode::SUCCESS);
    };
    let baseline = load_report(baseline_path)?;
    let outcome =
        compare(&current, &baseline, args.tolerance).map_err(|e| format!("compare: {e}"))?;
    for name in &outcome.missing {
        eprintln!("warning: scenario {name:?} is not in the baseline (skipped)");
    }
    eprintln!(
        "{} scenario(s) within ±{:.0}% of {}",
        outcome.passed,
        args.tolerance * 100.0,
        baseline_path,
    );
    if outcome.is_regression() {
        for message in &outcome.regressions {
            eprintln!("REGRESSION {message}");
        }
        if args.warn_only {
            eprintln!("--warn-only: reporting without failing");
            return Ok(ExitCode::SUCCESS);
        }
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bench-suite: {message}");
            ExitCode::from(2)
        }
    }
}
