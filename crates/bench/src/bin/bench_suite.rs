//! `bench-suite` — the continuous-benchmark runner and perf-regression
//! gate (see [`velopt_bench::suite`]).
//!
//! ```text
//! bench-suite [--quick] [--scenario NAME] [--out PATH]
//!     Run the scenario matrix and write the report (default BENCH_dp.json).
//!     --scenario NAME runs only the scenario families whose name stem
//!     contains NAME (e.g. "route_plan", "cloud", "sae"); an unknown name
//!     is an error listing the known stems.
//!
//! bench-suite --check BASELINE [--current PATH] [--tolerance T] [--warn-only]
//!     Compare a report (a fresh run, or --current PATH) against BASELINE.
//!     A scenario regresses when its median wall time exceeds the baseline
//!     median by strictly more than T (default 0.15 = +15%), or when its
//!     deterministic work counters (states expanded per iteration, energy
//!     evaluations, gemm FLOPs and scratch allocations per iteration)
//!     exceed the baseline's by more than T, when the cloud serving
//!     scenario's steady-state buffer reuse falls below the 90% floor,
//!     when the sharded network steps fewer vehicles per round than the
//!     baseline (the scenario silently shrank), when the co-simulation
//!     storm's coalesce hits, batch fill, or 2x speedup over singles
//!     dispatch fall below their floors (coalescing disengaged), or when
//!     the DP rows' SIMD/repair same-run speedups or the refresh row's
//!     repair hits per tick fall below their floors (the vectorized
//!     kernels or incremental repair disengaged), or when the routing
//!     row's oracle calls grow past the baseline or its same-run oracle
//!     ratio over featureless Dijkstra falls below the 5x floor (the
//!     certified emin bounds or plan memo disengaged).
//!
//! bench-suite --check-work BASELINE [--current PATH] [--warn-only]
//!     Work counters only, at zero tolerance: wall time is ignored, so the
//!     gate is immune to runner noise. Pins the solver's states-expanded
//!     reduction and the traffic kernels' FLOP count and zero-allocation
//!     steady state against the committed baseline. Combines with --check.
//! ```
//!
//! Exit codes: `0` success (or regression under `--warn-only`), `1`
//! regression, `2` usage or I/O errors.

use std::process::ExitCode;
use velopt_bench::suite::{
    compare, compare_work, run_scenarios, BenchReport, Comparison, MatrixSpec,
};

struct Args {
    quick: bool,
    scenario: Option<String>,
    out: String,
    check: Option<String>,
    check_work: Option<String>,
    current: Option<String>,
    tolerance: f64,
    warn_only: bool,
}

const USAGE: &str = "usage: bench-suite [--quick] [--scenario NAME] [--out PATH] \
     [--check BASELINE] [--check-work BASELINE] \
     [--current PATH] [--tolerance T] [--warn-only]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        scenario: None,
        out: "BENCH_dp.json".to_string(),
        check: None,
        check_work: None,
        current: None,
        tolerance: 0.15,
        warn_only: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--warn-only" => args.warn_only = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--check-work" => args.check_work = Some(value("--check-work")?),
            "--current" => args.current = Some(value("--current")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--tolerance {raw:?} is not a number\n{USAGE}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.current.is_some() && args.check.is_none() && args.check_work.is_none() {
        return Err(format!(
            "--current only makes sense with --check/--check-work\n{USAGE}"
        ));
    }
    if args.scenario.is_some() && args.current.is_some() {
        return Err(format!(
            "--scenario filters a matrix run, not a loaded report\n{USAGE}"
        ));
    }
    Ok(args)
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path:?}: {e}"))
}

fn run(args: &Args) -> Result<ExitCode, String> {
    // The current report: load it, or run the matrix and persist it.
    let current = match &args.current {
        Some(path) => load_report(path)?,
        None => {
            let spec = if args.quick {
                MatrixSpec::quick()
            } else {
                MatrixSpec::full()
            };
            match &args.scenario {
                Some(name) => eprintln!(
                    "running {} scenario matrix (filtered to {name:?})...",
                    if args.quick { "quick" } else { "full" }
                ),
                None => eprintln!(
                    "running {} scenario matrix...",
                    if args.quick { "quick" } else { "full" }
                ),
            }
            let report = run_scenarios(&spec, args.scenario.as_deref())
                .map_err(|e| format!("matrix failed: {e}"))?;
            std::fs::write(&args.out, report.to_json())
                .map_err(|e| format!("cannot write {:?}: {e}", args.out))?;
            for s in &report.scenarios {
                if s.vehicles_stepped > 0 {
                    // Throughput: vehicle-steps per wall second at the
                    // median round (each round is one simulated second).
                    let per_round = s.vehicles_stepped as f64 / s.iterations.max(1) as f64;
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p95 {:>9.4}s  stepped {:>10}  \
                         handoffs {:>6}  veh-steps/s {:>12.0}",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p95,
                        s.vehicles_stepped,
                        s.network_handoffs,
                        per_round / s.wall_seconds.p50.max(1e-12),
                    );
                } else if s.batch_flushes > 0 {
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p95 {:>9.4}s  hits {:>6}  \
                         flights {:>5}  fill {:>5.1}  speedup {:>5.2}x",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p95,
                        s.coalesce_hits,
                        s.coalesce_flights,
                        s.batch_fill(),
                        s.storm_speedup,
                    );
                } else if s.buf_reuse + s.buf_alloc > 0 {
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p95 {:>9.4}s  p99 {:>9.4}s  \
                         buf reuse {:>5.1}%  encode skipped {:>6}",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p95,
                        s.wall_seconds.p99,
                        s.buffer_reuse_rate() * 100.0,
                        s.plan_encode_skipped,
                    );
                } else if s.gemm_flops > 0 {
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p90 {:>9.4}s  flops {:>12}  \
                         reuse {:>6}  allocs {:>5}",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p90,
                        s.gemm_flops,
                        s.scratch_reuse_hits,
                        s.scratch_allocations,
                    );
                } else if s.route_oracle_calls > 0 {
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p90 {:>9.4}s  oracle {:>7}  \
                         pruned {:>7}  memo hits {:>6}  ratio {:>5.2}x",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p90,
                        s.route_oracle_calls,
                        s.route_edges_pruned,
                        s.route_plan_memo_hits,
                        s.route_oracle_ratio,
                    );
                } else if s.simd_speedup > 0.0 || s.repair_speedup > 0.0 {
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p90 {:>9.4}s  expanded {:>10}  \
                         simd rows {:>10}  repairs {:>4}  speedup {:>5.2}x",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p90,
                        s.states_expanded,
                        s.simd_rows,
                        s.repair_hits,
                        s.simd_speedup.max(s.repair_speedup),
                    );
                } else {
                    eprintln!(
                        "  {:<24} p50 {:>9.4}s  p90 {:>9.4}s  expanded {:>10}  \
                         reuse {:>6}  evals {:>7}  memo {:>5.1}%",
                        s.name,
                        s.wall_seconds.p50,
                        s.wall_seconds.p90,
                        s.states_expanded,
                        s.arena_reuse_hits,
                        s.energy_evals,
                        s.memo_hit_rate() * 100.0,
                    );
                }
            }
            eprintln!("report written to {}", args.out);
            report
        }
    };

    let mut failed = false;
    let mut gate = |outcome: &Comparison, label: &str, baseline_path: &str| {
        for name in &outcome.missing {
            eprintln!("warning: scenario {name:?} is not in the baseline (skipped)");
        }
        eprintln!(
            "{} scenario(s) passed the {label} gate against {baseline_path}",
            outcome.passed,
        );
        if outcome.is_regression() {
            for message in &outcome.regressions {
                eprintln!("REGRESSION [{label}] {message}");
            }
            if args.warn_only {
                eprintln!("--warn-only: reporting without failing");
            } else {
                failed = true;
            }
        }
    };
    if let Some(baseline_path) = &args.check {
        let baseline = load_report(baseline_path)?;
        let outcome =
            compare(&current, &baseline, args.tolerance).map_err(|e| format!("compare: {e}"))?;
        gate(&outcome, "wall+work", baseline_path);
    }
    if let Some(baseline_path) = &args.check_work {
        let baseline = load_report(baseline_path)?;
        let outcome =
            compare_work(&current, &baseline).map_err(|e| format!("compare-work: {e}"))?;
        gate(&outcome, "work-only", baseline_path);
    }
    if failed {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bench-suite: {message}");
            ExitCode::from(2)
        }
    }
}
