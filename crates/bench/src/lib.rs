//! Shared harness code for the figure-regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every figure of the paper's evaluation (§III) has a binary in
//! `src/bin/` that regenerates its data series as TSV on stdout:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig3` | ζ(v, a) consumption surface |
//! | `fig4` | traffic volume week + SAE MRE/RMSE per day |
//! | `fig5` | leaving-rate and queue-length dynamics vs the baseline \[9\] |
//! | `fig6` | planned vs simulator-derived velocity profiles |
//! | `fig7` | collected profiles + total energy comparison |
//! | `fig8` | distance–time curves and trip times |
//! | `experiments` | all of the above, summarized as paper-vs-measured rows |

pub mod suite;

use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_common::{Error, Result, TimeSeries};
use velopt_core::dp::OptimizedProfile;
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;
use velopt_traci::{TraciClient, TraciServer};

/// The departure time used by the simulation experiments: seven whole 60 s
/// signal cycles, so the plan's `t = 0` is phase-aligned.
pub const DEPART_S: f64 = 420.0;

/// The commuter-demand split used by the Fig. 6–8 replays: a light corridor
/// entrance plus a side-road inflow just upstream of the first light.
pub const ENTRANCE_RATE: f64 = 120.0;
/// Side-road inflow rate (veh/h) at 600 m.
pub const SIDE_RATE: f64 = 680.0;

/// What came back from replaying a plan through the simulator over TraCI.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The simulator-derived ego speed profile (the paper's "derived
    /// velocity profile from SUMO").
    pub derived_speed: TimeSeries,
    /// Trip duration in the simulator.
    pub trip: Seconds,
    /// Minimum speed observed inside each traffic-light area.
    pub min_speed_at_lights: Vec<f64>,
    /// Full stops observed inside the light areas.
    pub stops_at_lights: usize,
}

/// Replays an optimized profile through the microscopic simulator, driving
/// the ego with TraCI `setSpeed` commands from the plan's speed-vs-position
/// curve (safety still binds inside the simulator).
///
/// # Errors
///
/// Propagates simulator construction and protocol failures.
pub fn replay_through_traci(profile: &OptimizedProfile) -> Result<ReplayOutcome> {
    let road = Road::us25();
    let light_zones: Vec<(f64, f64)> = road
        .traffic_lights()
        .iter()
        .map(|l| (l.position().value() - 150.0, l.position().value() + 10.0))
        .collect();

    let mut sim = Simulation::new(road, SimConfig::default())?;
    sim.set_arrival_rate(VehiclesPerHour::new(ENTRANCE_RATE));
    sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(SIDE_RATE))?;
    sim.run_until(Seconds::new(DEPART_S))?;
    let ego_id = sim.spawn_ego(MetersPerSecond::ZERO)?.to_string();

    let server = TraciServer::spawn(sim)?;
    let mut client = TraciClient::connect(server.addr())?;
    client.get_version()?;

    let mut min_speed_at_lights = vec![f64::INFINITY; light_zones.len()];
    let mut stops = 0usize;
    let mut was_stopped = true;
    let mut moved = false;
    loop {
        client.simulation_step(0.0)?;
        let Ok((x, _)) = client.vehicle_position(&ego_id) else {
            break;
        };
        let v = client.vehicle_speed(&ego_id)?;
        if v > 1.0 {
            moved = true;
            was_stopped = false;
        }
        for (z, &(a, b)) in light_zones.iter().enumerate() {
            if x >= a && x <= b {
                min_speed_at_lights[z] = min_speed_at_lights[z].min(v);
                if moved && v < 0.1 && !was_stopped {
                    stops += 1;
                    was_stopped = true;
                }
            }
        }
        let cmd = profile.speed_at_position(Meters::new(x)).value().max(0.3);
        client.set_vehicle_speed(&ego_id, cmd)?;
    }
    let trip = Seconds::new(client.simulation_time()? - DEPART_S);
    client.close()?;

    // Pull the recorded ego trace out of the (now idle) simulation.
    let sim = server.simulation();
    let derived_speed = {
        let sim = sim.lock();
        sim.ego_speed_series()?
    };
    server.join();
    Ok(ReplayOutcome {
        derived_speed,
        trip,
        min_speed_at_lights,
        stops_at_lights: stops,
    })
}

/// Formats aligned TSV rows: a header then one line per record.
pub fn tsv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join("\t");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

/// Convenience: formats an `f64` column value.
pub fn col(value: f64) -> String {
    format!("{value:.3}")
}

/// Resamples a series to 1 Hz for compact figure output.
///
/// # Errors
///
/// Propagates resampling failures (degenerate input grids).
pub fn downsample_1hz(series: &TimeSeries) -> Result<TimeSeries> {
    if series.duration().value() < 1.0 {
        return Err(Error::invalid_input("series shorter than one second"));
    }
    series.resample(Seconds::new(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_formatting() {
        let out = tsv(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(out, "a\tb\n1\t2\n3\t4\n");
        assert_eq!(col(1.23456), "1.235");
    }

    #[test]
    fn downsample_requires_duration() {
        let s = TimeSeries::from_samples(Seconds::ZERO, Seconds::new(0.1), vec![0.0; 4]).unwrap();
        assert!(downsample_1hz(&s).is_err());
        let s = TimeSeries::from_samples(Seconds::ZERO, Seconds::new(0.5), vec![1.0; 9]).unwrap();
        let d = downsample_1hz(&s).unwrap();
        assert_eq!(d.step(), Seconds::new(1.0));
    }
}
