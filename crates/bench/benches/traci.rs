//! Benchmarks the TraCI wire protocol (encode/decode) and a live
//! client-server command round trip over localhost TCP.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;
use velopt_traci::protocol::{decode_message_body, encode_message, Command, TraciValue};
use velopt_traci::{TraciClient, TraciServer};

fn bench_traci(c: &mut Criterion) {
    // Pure wire-format throughput.
    let value = TraciValue::Compound(vec![
        TraciValue::Integer(42),
        TraciValue::String("veh0".into()),
        TraciValue::Position2D(1800.0, 0.0),
        TraciValue::Double(13.9),
    ]);
    let mut buf = bytes::BytesMut::new();
    value.encode(&mut buf);
    let encoded = buf.freeze();

    c.bench_function("value_decode", |b| {
        b.iter(|| {
            let mut bytes = encoded.clone();
            TraciValue::decode(black_box(&mut bytes)).unwrap()
        })
    });

    let msg = encode_message(&[
        Command::new(0x02, vec![0u8; 8]),
        Command::new(0xA4, vec![0u8; 32]),
    ]);
    c.bench_function("message_round_trip", |b| {
        b.iter(|| decode_message_body(black_box(msg.slice(4..))).unwrap())
    });

    // Live loopback round trip: one simulation_time query.
    let sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
    let server = TraciServer::spawn(sim).unwrap();
    let mut client = TraciClient::connect(server.addr()).unwrap();
    let mut group = c.benchmark_group("traci_tcp");
    group.sample_size(20);
    group.bench_function("simulation_time_query", |b| {
        b.iter(|| black_box(client.simulation_time().unwrap()))
    });
    group.finish();
    client.close().unwrap();
}

criterion_group!(benches, bench_traci);
criterion_main!(benches);
