//! Benchmarks the EV energy model: instantaneous rate queries, segment
//! integration, and the Fig. 3 surface generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Radians};
use velopt_ev_energy::{map::EnergyMap, EnergyModel, VehicleParams};

fn bench_energy_model(c: &mut Criterion) {
    let model = EnergyModel::new(VehicleParams::spark_ev());

    c.bench_function("charge_rate", |b| {
        b.iter(|| {
            model.charge_rate(
                black_box(MetersPerSecond::new(15.0)),
                black_box(MetersPerSecondSq::new(1.0)),
                black_box(Radians::from_grade_percent(2.0)),
            )
        })
    });

    c.bench_function("segment_energy_20m", |b| {
        b.iter(|| {
            model
                .segment_energy(
                    black_box(MetersPerSecond::new(12.0)),
                    black_box(MetersPerSecondSq::new(0.5)),
                    black_box(Meters::new(20.0)),
                    Radians::ZERO,
                )
                .unwrap()
        })
    });

    c.bench_function("fig3_surface_25x17", |b| {
        b.iter(|| EnergyMap::generate(black_box(&model), 25, 17).unwrap())
    });
}

criterion_group!(benches, bench_energy_model);
criterion_main!(benches);
