//! Benchmarks SAE training and inference on the synthetic volume feed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_traffic::nn::SgdConfig;
use velopt_traffic::{SaeConfig, SaePredictor, SaePredictorConfig, VolumeGenerator};

fn bench_sae(c: &mut Criterion) {
    let feed = VolumeGenerator::us25_station(1).generate_weeks(2).unwrap();
    // A scaled-down training config so the benchmark iterates in seconds.
    let quick = SaePredictorConfig {
        lags: 24,
        sae: SaeConfig {
            hidden_layers: vec![12],
            pretrain: SgdConfig {
                epochs: 3,
                learning_rate: 0.05,
                momentum: 0.9,
            },
            finetune: SgdConfig {
                epochs: 10,
                learning_rate: 0.05,
                momentum: 0.9,
            },
            ..SaeConfig::default()
        },
    };

    let mut group = c.benchmark_group("sae");
    group.sample_size(10);
    group.bench_function("train_2_weeks_quick", |b| {
        b.iter(|| SaePredictor::train(black_box(&feed), &quick).unwrap())
    });

    let predictor = SaePredictor::train(&feed, &quick).unwrap();
    let history: Vec<f64> = feed.samples()[..24].to_vec();
    group.bench_function("predict_next_hour", |b| {
        b.iter(|| predictor.predict_next(black_box(&history), 24).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sae);
criterion_main!(benches);
