//! Benchmarks SAE training and inference on the synthetic volume feed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_traffic::nn::SgdConfig;
use velopt_traffic::{
    SaeConfig, SaePredictor, SaePredictorConfig, VolumeGenerator, VolumePredictor, VolumeQuery,
    VolumeScratch,
};

fn quick_config(batch_size: usize, threads: usize) -> SaePredictorConfig {
    let sgd = |epochs: usize| SgdConfig {
        epochs,
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size,
        threads,
    };
    SaePredictorConfig {
        lags: 24,
        sae: SaeConfig {
            hidden_layers: vec![12],
            pretrain: sgd(3),
            finetune: sgd(10),
            ..SaeConfig::default()
        },
    }
}

fn bench_sae(c: &mut Criterion) {
    let feed = VolumeGenerator::us25_station(1).generate_weeks(2).unwrap();
    // Scaled-down training configs so the benchmark iterates in seconds:
    // the historical per-sample path and the mini-batch gemm path.
    let per_sample = quick_config(1, 1);
    let batched = quick_config(16, 2);

    let mut group = c.benchmark_group("sae");
    group.sample_size(10);
    group.bench_function("train_2_weeks_per_sample", |b| {
        b.iter(|| SaePredictor::train(black_box(&feed), &per_sample).unwrap())
    });
    group.bench_function("train_2_weeks_minibatch", |b| {
        b.iter(|| SaePredictor::train(black_box(&feed), &batched).unwrap())
    });

    let predictor = SaePredictor::train(&feed, &batched).unwrap();
    let history: Vec<f64> = feed.samples()[..24].to_vec();
    group.bench_function("predict_next_hour", |b| {
        b.iter(|| predictor.predict_next(black_box(&history), 24).unwrap())
    });

    // Warm batched rollout: 32 intersections × 24 horizons per call.
    let vp = VolumePredictor::new(SaePredictor::train(&feed, &batched).unwrap());
    let queries: Vec<VolumeQuery> = (0..32)
        .map(|q| VolumeQuery {
            history: feed.samples()[q * 3..q * 3 + 24].to_vec(),
            hour_index: q * 3 + 24,
        })
        .collect();
    let mut scratch = VolumeScratch::new();
    let mut out = Vec::new();
    group.bench_function("predict_batch_32x24", |b| {
        b.iter(|| {
            vp.predict_batch_with(black_box(&queries), 24, &mut scratch, &mut out)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sae);
criterion_main!(benches);
