//! Benchmarks the DP optimizer: the default grid, a finer grid, and the
//! Exact-vs-Greedy time-handling ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_common::units::Meters;
use velopt_core::dp::{DpConfig, DpOptimizer, TimeHandling};
use velopt_core::windows::green_only_constraints;
use velopt_ev_energy::{EnergyModel, VehicleParams};
use velopt_road::Road;

fn optimizer(cfg: DpConfig) -> DpOptimizer {
    DpOptimizer::new(EnergyModel::new(VehicleParams::spark_ev()), cfg).unwrap()
}

fn bench_dp(c: &mut Criterion) {
    let road = Road::us25();
    let constraints = green_only_constraints(&road, DpConfig::default().horizon);

    let mut group = c.benchmark_group("dp");
    group.sample_size(10);

    group.bench_function("exact_default_grid_us25", |b| {
        let opt = optimizer(DpConfig::default());
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("exact_fine_space_grid_us25", |b| {
        let opt = optimizer(DpConfig {
            ds: Meters::new(10.0),
            ..DpConfig::default()
        });
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("greedy_ablation_us25", |b| {
        let opt = optimizer(DpConfig {
            time_handling: TimeHandling::Greedy,
            ..DpConfig::default()
        });
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("exact_unconstrained_us25", |b| {
        let opt = optimizer(DpConfig::default());
        b.iter(|| opt.optimize(black_box(&road), &[]).unwrap())
    });

    // Mid-trip replanning is cheaper than a full plan: the state space
    // shrinks with the remaining distance.
    group.bench_function("replan_from_halfway", |b| {
        let opt = optimizer(DpConfig::default());
        let start = velopt_core::dp::StartState {
            position: velopt_common::units::Meters::new(2100.0),
            speed: velopt_common::units::MetersPerSecond::new(14.0),
            time: velopt_common::units::Seconds::new(140.0),
        };
        b.iter(|| {
            opt.optimize_from(black_box(&road), &constraints, start)
                .unwrap()
        })
    });

    // Robustness sweep over generated corridors (one optimize per corridor).
    group.bench_function("corridor_sweep_4_random", |b| {
        let opt = optimizer(DpConfig::default());
        let corridors: Vec<_> = (0..4)
            .map(|seed| {
                velopt_road::CorridorTemplate::default()
                    .generate(seed)
                    .unwrap()
            })
            .collect();
        b.iter(|| {
            for road in &corridors {
                let c = green_only_constraints(road, DpConfig::default().horizon);
                black_box(opt.optimize(road, &c).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
