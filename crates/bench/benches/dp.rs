//! Benchmarks the DP optimizer: the default grid, a finer grid, the
//! Exact-vs-Greedy time-handling ablation called out in DESIGN.md, the
//! sequential-vs-parallel relaxation, and batch planning. The single-run
//! benchmarks also print the solver's own [`SolverMetrics`] once, so grid
//! or pruning regressions show up next to the wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_common::units::Meters;
use velopt_core::batch::PlanRequest;
use velopt_core::dp::{DpConfig, DpOptimizer, TimeHandling};
use velopt_core::metrics::SolverMetrics;
use velopt_core::windows::green_only_constraints;
use velopt_ev_energy::{EnergyModel, VehicleParams};
use velopt_road::Road;

fn optimizer(cfg: DpConfig) -> DpOptimizer {
    DpOptimizer::new(EnergyModel::new(VehicleParams::spark_ev()), cfg).unwrap()
}

fn report_metrics(label: &str, m: &SolverMetrics) {
    println!(
        "metrics {label}: expanded={} pruned={} ratio={:.3} \
         setup={:.1}ms relax={:.1}ms backtrack={:.1}ms \
         arena(reuse={}, alloc={}) threads={}",
        m.states_expanded,
        m.states_pruned,
        m.expansion_ratio(),
        m.setup_seconds * 1e3,
        m.relax_seconds * 1e3,
        m.backtrack_seconds * 1e3,
        m.arena_reuse_hits,
        m.arena_allocations,
        m.threads_used,
    );
}

fn bench_dp(c: &mut Criterion) {
    let road = Road::us25();
    let constraints = green_only_constraints(&road, DpConfig::default().horizon);

    let mut group = c.benchmark_group("dp");
    group.sample_size(10);

    group.bench_function("exact_default_grid_us25", |b| {
        let opt = optimizer(DpConfig::default());
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    // One solve's worth of solver introspection next to the timings.
    {
        let profile = optimizer(DpConfig::default())
            .optimize(&road, &constraints)
            .unwrap();
        report_metrics("exact_default_grid_us25", &profile.metrics);
    }

    group.bench_function("exact_sequential_us25", |b| {
        let opt = optimizer(DpConfig {
            threads: 1,
            ..DpConfig::default()
        });
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("exact_parallel_auto_us25", |b| {
        let opt = optimizer(DpConfig {
            threads: 0,
            ..DpConfig::default()
        });
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("exact_fine_space_grid_us25", |b| {
        let opt = optimizer(DpConfig {
            ds: Meters::new(10.0),
            ..DpConfig::default()
        });
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("greedy_ablation_us25", |b| {
        let opt = optimizer(DpConfig {
            time_handling: TimeHandling::Greedy,
            ..DpConfig::default()
        });
        b.iter(|| opt.optimize(black_box(&road), &constraints).unwrap())
    });

    group.bench_function("exact_unconstrained_us25", |b| {
        let opt = optimizer(DpConfig::default());
        b.iter(|| opt.optimize(black_box(&road), &[]).unwrap())
    });

    // Mid-trip replanning is cheaper than a full plan: the state space
    // shrinks with the remaining distance.
    group.bench_function("replan_from_halfway", |b| {
        let opt = optimizer(DpConfig::default());
        let start = velopt_core::dp::StartState {
            position: velopt_common::units::Meters::new(2100.0),
            speed: velopt_common::units::MetersPerSecond::new(14.0),
            time: velopt_common::units::Seconds::new(140.0),
        };
        b.iter(|| {
            opt.optimize_from(black_box(&road), &constraints, start)
                .unwrap()
        })
    });

    // Robustness sweep over generated corridors (one optimize per corridor).
    group.bench_function("corridor_sweep_4_random", |b| {
        let opt = optimizer(DpConfig::default());
        let corridors: Vec<_> = (0..4)
            .map(|seed| {
                velopt_road::CorridorTemplate::default()
                    .generate(seed)
                    .unwrap()
            })
            .collect();
        b.iter(|| {
            for road in &corridors {
                let c = green_only_constraints(road, DpConfig::default().horizon);
                black_box(opt.optimize(road, &c).unwrap());
            }
        })
    });
    group.finish();

    // Batch planning: 64 independent ego requests (the fleet-gateway
    // burst). `optimize_batch` parallelizes across the plans with one
    // arena per worker; on a many-core box the speedup over the serial
    // loop approaches the core count, on one core the two are within
    // noise of each other.
    let mut group = c.benchmark_group("dp_batch");
    group.sample_size(10);
    let starts: Vec<velopt_core::dp::StartState> = (0..64)
        .map(|i| velopt_core::dp::StartState {
            position: Meters::new(1900.0 + (i % 8) as f64 * 50.0),
            speed: velopt_common::units::MetersPerSecond::new(10.0 + (i % 5) as f64),
            time: velopt_common::units::Seconds::new(120.0 + (i % 16) as f64 * 4.0),
        })
        .collect();
    let requests: Vec<PlanRequest<'_>> = starts
        .iter()
        .map(|&start| PlanRequest {
            road: &road,
            signals: &constraints,
            start,
        })
        .collect();

    group.bench_function("batch_64_serial_loop", |b| {
        let opt = optimizer(DpConfig {
            threads: 1,
            ..DpConfig::default()
        });
        b.iter(|| {
            for req in &requests {
                black_box(opt.optimize_from(req.road, req.signals, req.start).unwrap());
            }
        })
    });

    group.bench_function("batch_64_optimize_batch", |b| {
        let opt = optimizer(DpConfig::default());
        b.iter(|| {
            let results = opt.optimize_batch(black_box(&requests));
            for r in &results {
                assert!(r.is_ok());
            }
            black_box(results)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
