//! Benchmarks the microscopic simulator's stepping throughput under
//! signalized commuter traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_common::units::{Meters, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;

fn bench_microsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("microsim");
    group.sample_size(10);

    group.bench_function("warm_600s_at_800vph", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(120.0));
            sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(680.0))
                .unwrap();
            sim.run_until(Seconds::new(600.0)).unwrap();
            black_box(sim.vehicle_count())
        })
    });

    group.bench_function("step_with_40_vehicles", |b| {
        let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(120.0));
        sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(680.0))
            .unwrap();
        sim.run_until(Seconds::new(600.0)).unwrap();
        b.iter(|| {
            sim.step();
            black_box(sim.time())
        })
    });

    group.bench_function("queue_probe", |b| {
        let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(800.0));
        sim.run_until(Seconds::new(400.0)).unwrap();
        b.iter(|| black_box(sim.queue_at_light(0)))
    });
    group.finish();
}

criterion_group!(benches, bench_microsim);
criterion_main!(benches);
