//! Benchmarks the queue models: clear-time solving, multi-cycle simulation
//! and T_q window generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use velopt_common::units::{Meters, Seconds, VehiclesPerHour};
use velopt_queue::{QueueModel, QueueParams};
use velopt_road::TrafficLight;

fn bench_queue(c: &mut Criterion) {
    let params = QueueParams {
        arrival_rate: VehiclesPerHour::new(700.0),
        ..QueueParams::us25_probe()
    };
    let model = QueueModel::new(params).unwrap();
    let light = TrafficLight::new(
        Meters::new(1800.0),
        Seconds::new(30.0),
        Seconds::new(30.0),
        Seconds::new(42.0),
    )
    .unwrap();

    c.bench_function("clear_time", |b| {
        b.iter(|| model.clear_time_with_initial(black_box(2.5)))
    });

    c.bench_function("queue_simulate_10_cycles", |b| {
        b.iter(|| model.simulate(black_box(10), Seconds::new(0.5)).unwrap())
    });

    c.bench_function("empty_windows_900s", |b| {
        b.iter(|| {
            model
                .empty_windows(black_box(&light), Seconds::ZERO, Seconds::new(900.0))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
