//! **Fleet co-simulation**: every microsim EV replans through the cloud.
//!
//! The paper plans one EV's velocity profile against predicted queue
//! dynamics; the serving tier exists so *every* vehicle can do that at
//! once. This crate closes the loop between the two halves the repo
//! already has — the multi-corridor [`Network`](velopt_microsim::Network)
//! behind a [`TraciServer`](velopt_traci::TraciServer), and the sharded
//! [`CloudServer`](velopt_cloud::CloudServer) — with a [`FleetDriver`]
//! that, each tick:
//!
//! 1. **reads** signal phases (`tl<c>:<i>`) and loop-detector counts
//!    (`loop<c>:0`) over the TraCI protocol,
//! 2. **replans** every vehicle whose corridor's `T_q` windows shifted —
//!    a phase flip restarts the queue clock, so all of that corridor's
//!    vehicles re-request at once (the correlated storm the cloud's
//!    coalescing layer exists for); each vehicle is its own
//!    [`CloudClient`] connection, greeted with
//!    the corridor index as its tenant id, and the wave is issued
//!    concurrently so identical requests are in flight together,
//! 3. **feeds back** each returned profile as a TraCI speed command for
//!    the vehicle's current position.
//!
//! Everything the driver does is a pure function of the seeded
//! simulation's state plus the (deterministic) plan responses, so fleet
//! counters — flips seen, replans issued, commands applied — are exactly
//! pinnable under a lockstep harness.

use std::collections::HashMap;
use std::net::SocketAddr;
use velopt_cloud::{CloudClient, TripRequest};
use velopt_common::units::{Seconds, VehiclesPerHour};
use velopt_common::Result;
use velopt_core::dp::OptimizedProfile;
use velopt_queue::QueueParams;
use velopt_road::Road;
use velopt_traci::TraciClient;

/// Tuning knobs for the [`FleetDriver`].
#[derive(Debug, Clone)]
pub struct CosimConfig {
    /// Plan with the paper's queue-aware arrival windows (`true`, the
    /// default) or the green-only baseline.
    pub queue_aware: bool,
    /// Greet each vehicle's cloud connection with its corridor index as
    /// the tenant id, so per-tenant admission and stats buckets see the
    /// fleet as one tenant per corridor. `false` leaves every connection
    /// on the anonymous tenant 0.
    pub tenant_per_corridor: bool,
    /// Cap on replans issued per tick (`0` = unlimited). The cap is
    /// applied in sorted vehicle-id order, so it is deterministic.
    pub max_replans_per_tick: usize,
    /// Floor on commanded speeds in m/s: a plan whose local speed is
    /// below this commands the floor instead, so a vehicle is never
    /// ordered to park on the through lane.
    pub command_floor: f64,
    /// Granularity (vehicles/hour) the estimated arrival rates are
    /// rounded to before they enter a plan request. Coarser buckets keep
    /// the request key stable across ticks, which is what makes the
    /// cloud's plan cache and single-flight dedupe effective.
    pub rate_quantum: f64,
}

impl Default for CosimConfig {
    fn default() -> Self {
        Self {
            queue_aware: true,
            tenant_per_corridor: true,
            max_replans_per_tick: 0,
            command_floor: 1.0,
            rate_quantum: 100.0,
        }
    }
}

/// Lockstep counters describing what the driver has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Ticks driven.
    pub ticks: u64,
    /// Signal-phase flips observed across all corridors (each one shifts
    /// that corridor's `T_q` windows and triggers a replan storm).
    pub flips: u64,
    /// Plan requests issued to the cloud.
    pub replans: u64,
    /// Replans answered with a profile.
    pub plans_ok: u64,
    /// Replans the cloud refused (admission limits, invalid trips).
    pub plan_failures: u64,
    /// Speed commands applied over TraCI.
    pub commands: u64,
}

/// Per-corridor observation state.
struct Corridor {
    road: Road,
    /// Concatenated phase states of every light, as last observed.
    signature: String,
    /// Bumped on every signature change; vehicles replan when their
    /// planned epoch falls behind.
    epoch: u64,
    /// Sim time of the last flip — the shared departure time of the
    /// epoch's replan wave (identical departures are what coalesce).
    epoch_time: f64,
    /// Cumulative entrance-loop crossings, for the arrival-rate estimate.
    volume: u64,
}

/// One vehicle's planning connection plus what it last planned against.
struct Pilot {
    client: CloudClient,
    tenant: u32,
    /// `(corridor, epoch)` of the last successful (or failed) plan; the
    /// vehicle replans when its corridor moves past this.
    planned: Option<(usize, u64)>,
}

/// The fleet driver: one TraCI connection to the network simulation, one
/// cloud connection per vehicle.
pub struct FleetDriver {
    traci: TraciClient,
    cloud_addr: SocketAddr,
    config: CosimConfig,
    corridors: Vec<Corridor>,
    pilots: HashMap<String, Pilot>,
    stats: FleetStats,
}

impl FleetDriver {
    /// Connects to a TraCI server fronting a `Network` whose corridor
    /// roads are `roads` (in corridor order), and to the cloud at
    /// `cloud_addr`.
    ///
    /// # Errors
    ///
    /// Returns [`velopt_common::Error::Io`] if the TraCI connection
    /// cannot be established.
    pub fn connect(
        traci_addr: SocketAddr,
        cloud_addr: SocketAddr,
        roads: Vec<Road>,
        config: CosimConfig,
    ) -> Result<Self> {
        let traci = TraciClient::connect(traci_addr)?;
        let corridors = roads
            .into_iter()
            .map(|road| Corridor {
                road,
                signature: String::new(),
                epoch: 0,
                epoch_time: 0.0,
                volume: 0,
            })
            .collect();
        Ok(Self {
            traci,
            cloud_addr,
            config,
            corridors,
            pilots: HashMap::new(),
            stats: FleetStats::default(),
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Advances the simulation one step and closes the loop: observe,
    /// replan shifted corridors, command the fleet.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the TraCI link fails. Per-vehicle
    /// plan refusals are *not* errors; they count in
    /// [`FleetStats::plan_failures`].
    pub fn step(&mut self) -> Result<()> {
        self.traci.simulation_step(0.0)?;
        self.stats.ticks += 1;
        let now = self.traci.simulation_time()?;
        self.observe(now)?;
        let wave = self.plan_wave()?;
        self.replan(wave, now)?;
        Ok(())
    }

    /// Runs `n` lockstep ticks.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Self::step`] error.
    pub fn run(&mut self, n: usize) -> Result<()> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Reads every corridor's signal phases and entrance-loop count,
    /// bumping the replan epoch of corridors whose phase state flipped.
    fn observe(&mut self, now: f64) -> Result<()> {
        for c in 0..self.corridors.len() {
            let lights = self.corridors[c].road.traffic_lights().len();
            let mut signature = String::new();
            for i in 0..lights {
                signature.push_str(&self.traci.traffic_light_state(&format!("tl{c}:{i}"))?);
            }
            let crossings = self.traci.induction_loop_count(&format!("loop{c}:0"))?;
            let corridor = &mut self.corridors[c];
            corridor.volume += crossings.max(0) as u64;
            if corridor.signature != signature {
                if !corridor.signature.is_empty() {
                    corridor.epoch += 1;
                    corridor.epoch_time = now;
                    self.stats.flips += 1;
                    telemetry::add("cosim.flips", 1);
                }
                corridor.signature = signature;
            }
        }
        Ok(())
    }

    /// Collects the vehicles whose corridor epoch moved past their last
    /// plan, in sorted-id order (deterministic, and stable under the
    /// `max_replans_per_tick` cap).
    fn plan_wave(&mut self) -> Result<Vec<(String, usize)>> {
        let mut ids = self.traci.vehicle_ids()?;
        ids.sort();
        // Vehicles that left the network take their connection with them.
        let live: std::collections::HashSet<&String> = ids.iter().collect();
        self.pilots.retain(|id, _| live.contains(id));

        let mut wave = Vec::new();
        for id in ids {
            let (_, y) = self.traci.vehicle_position(&id)?;
            let corridor = y as usize;
            if corridor >= self.corridors.len() {
                continue;
            }
            let epoch = self.corridors[corridor].epoch;
            let planned = self.pilots.get(&id).and_then(|p| p.planned);
            if planned != Some((corridor, epoch)) {
                wave.push((id, corridor));
                if self.config.max_replans_per_tick > 0
                    && wave.len() >= self.config.max_replans_per_tick
                {
                    break;
                }
            }
        }
        Ok(wave)
    }

    /// The corridor's current plan request: shared by every vehicle of
    /// the epoch, so identical requests coalesce server-side.
    fn corridor_request(&self, corridor: usize) -> TripRequest {
        let c = &self.corridors[corridor];
        let hours = (c.epoch_time.max(1.0)) / 3600.0;
        let quantum = self.config.rate_quantum.max(1.0);
        let rate = ((c.volume as f64 / hours) / quantum).round() * quantum;
        let rate = rate.clamp(quantum, 3600.0);
        let lights = c.road.traffic_lights().len();
        TripRequest {
            road: c.road.clone(),
            departure: Seconds::new(c.epoch_time),
            rates: vec![VehiclesPerHour::new(rate); lights],
            queue: QueueParams::us25_probe(),
            queue_aware: self.config.queue_aware,
        }
    }

    /// Issues the wave's plan requests concurrently (one thread per
    /// vehicle, each on its own connection — the storm the coalescer
    /// sees) and feeds the profiles back as speed commands.
    fn replan(&mut self, wave: Vec<(String, usize)>, _now: f64) -> Result<()> {
        if wave.is_empty() {
            return Ok(());
        }
        // Per-corridor requests are built once and shared byte-for-byte.
        let requests: HashMap<usize, TripRequest> = wave
            .iter()
            .map(|(_, c)| *c)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .map(|c| (c, self.corridor_request(c)))
            .collect();

        // Detach each planning connection (opening it on first use) so the
        // scoped threads own them mutably without aliasing the map.
        let mut flights: Vec<(String, usize, Pilot)> = Vec::with_capacity(wave.len());
        for (id, corridor) in wave {
            let tenant = if self.config.tenant_per_corridor {
                corridor as u32
            } else {
                0
            };
            let pilot = match self.pilots.remove(&id) {
                Some(mut p) => {
                    if p.tenant != tenant {
                        p.client.hello(tenant)?;
                        p.tenant = tenant;
                    }
                    p
                }
                None => {
                    let mut client = CloudClient::connect(self.cloud_addr)?;
                    client.hello(tenant)?;
                    Pilot {
                        client,
                        tenant,
                        planned: None,
                    }
                }
            };
            flights.push((id, corridor, pilot));
        }

        self.stats.replans += flights.len() as u64;
        telemetry::add("cosim.replans", flights.len() as u64);
        let results: Vec<(String, usize, Pilot, Result<OptimizedProfile>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = flights
                    .into_iter()
                    .map(|(id, corridor, mut pilot)| {
                        let request = &requests[&corridor];
                        scope.spawn(move || {
                            let outcome = pilot.client.request(request);
                            (id, corridor, pilot, outcome)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("replan thread panicked"))
                    .collect()
            });

        for (id, corridor, mut pilot, outcome) in results {
            // Failed plans still advance the epoch marker: a refused
            // tenant retries on the *next* window shift, not every tick.
            pilot.planned = Some((corridor, self.corridors[corridor].epoch));
            match outcome {
                Ok(profile) => {
                    self.stats.plans_ok += 1;
                    let (position, _) = self.traci.vehicle_position(&id)?;
                    let speed = Self::speed_at(&profile, position).max(self.config.command_floor);
                    // The vehicle may have exited between listing and now;
                    // a failed command is not an error, just not counted.
                    if self.traci.set_vehicle_speed(&id, speed).is_ok() {
                        self.stats.commands += 1;
                        telemetry::add("cosim.commands", 1);
                    }
                }
                Err(_) => {
                    self.stats.plan_failures += 1;
                    telemetry::add("cosim.plan_failures", 1);
                }
            }
            self.pilots.insert(id, pilot);
        }
        Ok(())
    }

    /// Ends the TraCI session (`CMD_CLOSE`, letting the simulation server
    /// tear down) and drops every planning connection.
    ///
    /// # Errors
    ///
    /// Returns [`velopt_common::Error::Io`] if the close handshake fails.
    pub fn close(mut self) -> Result<()> {
        self.pilots.clear();
        self.traci.close()
    }

    /// The planned speed at `position`: the profile speed of the last
    /// station at or before it (the last station's speed past the end).
    fn speed_at(profile: &OptimizedProfile, position: f64) -> f64 {
        let mut speed = profile.speeds.first().map_or(0.0, |s| s.value());
        for (station, s) in profile.stations.iter().zip(&profile.speeds) {
            if station.value() <= position {
                speed = s.value();
            } else {
                break;
            }
        }
        speed
    }
}

impl std::fmt::Debug for FleetDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetDriver")
            .field("cloud_addr", &self.cloud_addr)
            .field("corridors", &self.corridors.len())
            .field("pilots", &self.pilots.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_cloud::{CloudServer, ServerConfig};
    use velopt_common::units::MetersPerSecond;
    use velopt_microsim::{CorridorSpec, Network, SimConfig};
    use velopt_road::CorridorTemplate;
    use velopt_traci::TraciServer;

    fn small_net(corridors: usize, seed: u64) -> (Network, Vec<Road>) {
        let template = CorridorTemplate {
            length: (600.0, 800.0),
            ..CorridorTemplate::default()
        };
        let roads: Vec<Road> = (0..corridors)
            .map(|i| template.generate(seed + i as u64).unwrap())
            .collect();
        let specs: Vec<CorridorSpec> = roads
            .iter()
            .enumerate()
            .map(|(i, road)| {
                let mut spec = if i + 1 < corridors {
                    CorridorSpec::through(road.clone(), i + 1)
                } else {
                    CorridorSpec::terminal(road.clone())
                };
                if i == 0 {
                    spec.arrival_rate = velopt_common::units::VehiclesPerHour::new(1200.0);
                }
                spec.detectors = vec![velopt_common::units::Meters::new(25.0)];
                spec
            })
            .collect();
        let net = Network::new(specs, 1, SimConfig::default()).unwrap();
        (net, roads)
    }

    /// The full closed loop: seeded network → TraCI → cloud (coalescing
    /// on) → speed commands, with deterministic fleet counters across two
    /// identical runs.
    #[test]
    fn closed_loop_replans_and_commands_deterministically() {
        let run = || {
            let (mut net, roads) = small_net(2, 77);
            net.spawn_ego(0, MetersPerSecond::new(10.0)).unwrap();
            let traci = TraciServer::spawn(net).unwrap();
            let cloud = CloudServer::spawn_with(ServerConfig {
                compute_workers: 2,
                coalesce_window: std::time::Duration::from_millis(40),
                batch_max: 64,
                ..ServerConfig::default()
            })
            .unwrap();
            let mut driver = FleetDriver::connect(
                traci.addr(),
                cloud.addr(),
                roads,
                CosimConfig {
                    max_replans_per_tick: 8,
                    ..CosimConfig::default()
                },
            )
            .unwrap();
            driver.run(40).unwrap();
            let stats = driver.stats();
            let coalesced = (
                cloud.stats().coalesce_hits(),
                cloud.stats().coalesce_flights(),
            );
            driver.close().unwrap();
            cloud.shutdown();
            traci.join();
            (stats, coalesced)
        };
        let (a, a_coalesce) = run();
        let (b, b_coalesce) = run();
        assert_eq!(a, b, "fleet counters must be lockstep-deterministic");
        assert!(a.ticks == 40);
        assert!(a.flips > 0, "signals must have flipped within 40 s");
        assert!(a.replans > 0, "flips must have triggered replans");
        assert_eq!(a.plan_failures, 0, "no admission limits configured");
        assert_eq!(a.plans_ok, a.replans);
        assert!(a.commands > 0, "profiles must come back as commands");
        // Identical corridor-mates share a request key: the server must
        // have observed at least one coalesced (or cached) duplicate
        // rather than solving per vehicle.
        assert!(
            a_coalesce.1 > 0,
            "coalescer never flushed a flight: {a_coalesce:?}"
        );
        assert_eq!(a_coalesce, b_coalesce, "server counters must repeat");
    }

    /// A tenant ceiling refuses part of a storm without failing the
    /// driver; refusals land in `plan_failures`.
    #[test]
    fn admission_limit_refusals_are_counted_not_fatal() {
        let (mut net, roads) = small_net(1, 33);
        net.spawn_ego(0, MetersPerSecond::new(10.0)).unwrap();
        let traci = TraciServer::spawn(net).unwrap();
        let cloud = CloudServer::spawn_with(ServerConfig {
            compute_workers: 1,
            coalesce_window: std::time::Duration::from_millis(200),
            batch_max: 1024,
            tenant_max_inflight: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut driver =
            FleetDriver::connect(traci.addr(), cloud.addr(), roads, CosimConfig::default())
                .unwrap();
        driver.run(30).unwrap();
        let stats = driver.stats();
        assert!(stats.replans > 0);
        assert_eq!(stats.plans_ok + stats.plan_failures, stats.replans);
        if stats.plan_failures > 0 {
            assert!(cloud.stats().tenant_rejected(0) > 0);
        }
        driver.close().unwrap();
        cloud.shutdown();
        traci.join();
    }
}
