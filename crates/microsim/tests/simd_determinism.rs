//! Kernel-dispatch bit-identity of the multi-corridor [`Network`].
//!
//! Companion to `network_determinism.rs`: where that suite pins shard-count
//! invariance, this one pins *dispatch* invariance — an auto-dispatch run
//! (AVX2 lane kernels where the host supports them) is `f64::to_bits`
//! identical to a forced-scalar (`simd: false`) run, at 1, 2, and 4 shards,
//! on arbitrary random networks, seeds, and traffic mixes. Together the two
//! suites give the full matrix: {scalar, simd} × {1, 2, 4 shards} all
//! produce one bit pattern.

use proptest::prelude::*;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{CorridorSpec, Network, NetworkStats, SimConfig};
use velopt_road::CorridorTemplate;

/// A seeded random chain network (same shape as `network_determinism.rs`),
/// with a traffic mix that exercises every scalar-pass flavor: dawdling
/// Krauss passengers, trucks, and IDM followers.
fn chain_network(corridors: usize, seed: u64, rate: f64) -> Vec<CorridorSpec> {
    let template = CorridorTemplate {
        length: (1500.0, 3000.0),
        ..CorridorTemplate::default()
    };
    (0..corridors)
        .map(|i| {
            let road = template
                .generate(seed ^ (0x51D0_0000 + i as u64))
                .expect("template is valid");
            let mut spec = if i + 1 < corridors {
                CorridorSpec::through(road, i + 1)
            } else {
                CorridorSpec::terminal(road)
            };
            if i == 0 {
                spec.arrival_rate = VehiclesPerHour::new(rate);
                spec.side_entries
                    .push((Meters::new(600.0), VehiclesPerHour::new(rate / 2.0)));
            }
            spec.detectors.push(Meters::new(450.0));
            spec
        })
        .collect()
}

/// Runs the network with the given dispatch knob and returns its complete
/// observability surface.
fn run(
    corridors: usize,
    seed: u64,
    rate: f64,
    shards: usize,
    simd: bool,
) -> (u64, u64, NetworkStats, u64) {
    let config = SimConfig {
        seed,
        straight_ratio: 0.9,
        truck_fraction: 0.15,
        idm_fraction: 0.25,
        simd,
        ..SimConfig::default()
    };
    let mut net = Network::new(chain_network(corridors, seed, rate), shards, config).unwrap();
    net.spawn_ego(0, MetersPerSecond::new(5.0)).unwrap();
    net.run_until(Seconds::new(300.0)).unwrap();
    (
        net.ego_trace_hash(),
        net.state_hash(),
        net.stats(),
        net.step_metrics().total_lanes(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Auto dispatch and forced scalar agree bit for bit — ego trace hash,
    /// state hash, aggregate stats, and total lane work — at every shard
    /// count the bench suite uses.
    #[test]
    fn scalar_and_simd_dispatch_are_bit_identical(
        seed in any::<u64>(),
        corridors in 2usize..5,
        rate in 300.0f64..900.0,
    ) {
        let (th_s, sh_s, stats_s, lanes_s) = run(corridors, seed, rate, 1, false);
        for shards in [1usize, 2, 4] {
            let (th_a, sh_a, stats_a, lanes_a) = run(corridors, seed, rate, shards, true);
            prop_assert_eq!(th_s, th_a, "trace hash diverged at {} shards", shards);
            prop_assert_eq!(sh_s, sh_a, "state hash diverged at {} shards", shards);
            prop_assert_eq!(stats_s, stats_a);
            prop_assert_eq!(
                lanes_s, lanes_a,
                "total lane work is dispatch-invariant by construction"
            );
        }
    }
}

/// Deterministic witness at a fixed seed, so a dispatch regression fails
/// fast and reproducibly even outside proptest.
#[test]
fn fixed_seed_dispatch_bit_identity() {
    let scalar = run(3, 0x00AD_BEEF, 700.0, 1, false);
    for shards in [1usize, 2, 4] {
        assert_eq!(scalar, run(3, 0x00AD_BEEF, 700.0, shards, true));
    }
}
