//! Shard-count bit-identity of the multi-corridor [`Network`].
//!
//! The tentpole guarantee: an N-shard run produces `f64::to_bits`-identical
//! ego traces and state/trace hashes to a 1-shard run, for any shard count,
//! on arbitrary random networks and seeds.

use proptest::prelude::*;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{CorridorSpec, Network, NetworkTracePoint, SimConfig};
use velopt_road::CorridorTemplate;

/// A seeded random chain network: corridor `i` feeds corridor `i + 1`, the
/// first corridor carries fresh arrivals and a mid-corridor side entry, and
/// every corridor has a detector.
fn chain_network(corridors: usize, seed: u64, rate: f64) -> Vec<CorridorSpec> {
    let template = CorridorTemplate {
        length: (1500.0, 3000.0),
        ..CorridorTemplate::default()
    };
    (0..corridors)
        .map(|i| {
            let road = template
                .generate(seed ^ (0xA5A5_0000 + i as u64))
                .expect("template is valid");
            let mut spec = if i + 1 < corridors {
                CorridorSpec::through(road, i + 1)
            } else {
                CorridorSpec::terminal(road)
            };
            if i == 0 {
                spec.arrival_rate = VehiclesPerHour::new(rate);
                spec.side_entries
                    .push((Meters::new(700.0), VehiclesPerHour::new(rate / 2.0)));
            }
            spec.detectors.push(Meters::new(500.0));
            spec
        })
        .collect()
}

/// Runs the same network at `shards` shards and returns its observability
/// surface: ego trace, trace hash, state hash.
fn run(
    corridors: usize,
    seed: u64,
    rate: f64,
    shards: usize,
    horizon: f64,
) -> (Vec<NetworkTracePoint>, u64, u64) {
    let config = SimConfig {
        seed,
        straight_ratio: 0.95,
        ..SimConfig::default()
    };
    let mut net = Network::new(chain_network(corridors, seed, rate), shards, config).unwrap();
    net.spawn_ego(0, MetersPerSecond::new(5.0)).unwrap();
    net.run_until(Seconds::new(horizon)).unwrap();
    (
        net.ego_trace().to_vec(),
        net.ego_trace_hash(),
        net.state_hash(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 1-, 2-, and 4-shard runs of a random network are indistinguishable
    /// bit for bit: identical ego traces (every `f64` compared by
    /// `to_bits`), identical trace hashes, identical state hashes.
    #[test]
    fn shard_count_never_changes_results(
        seed in any::<u64>(),
        corridors in 2usize..6,
        rate in 200.0f64..900.0,
    ) {
        let (trace1, th1, sh1) = run(corridors, seed, rate, 1, 300.0);
        prop_assert!(!trace1.is_empty());
        for shards in [2usize, 4] {
            let (trace_n, th_n, sh_n) = run(corridors, seed, rate, shards, 300.0);
            prop_assert_eq!(trace1.len(), trace_n.len());
            for (a, b) in trace1.iter().zip(&trace_n) {
                prop_assert_eq!(a.corridor, b.corridor);
                prop_assert_eq!(a.time.value().to_bits(), b.time.value().to_bits());
                prop_assert_eq!(
                    a.position.value().to_bits(),
                    b.position.value().to_bits(),
                    "position diverged at t={} with {} shards", a.time, shards
                );
                prop_assert_eq!(a.speed.value().to_bits(), b.speed.value().to_bits());
            }
            prop_assert_eq!(th1, th_n, "trace hash diverged at {} shards", shards);
            prop_assert_eq!(sh1, sh_n, "state hash diverged at {} shards", shards);
        }
    }

    /// Aggregate stats are shard-invariant too (tree-reduced in chunk
    /// order), and stepping N ticks one way equals run_until the same point.
    #[test]
    fn stats_are_shard_invariant(
        seed in any::<u64>(),
        corridors in 2usize..5,
    ) {
        let specs = || chain_network(corridors, seed, 600.0);
        let config = SimConfig { seed, straight_ratio: 0.95, ..SimConfig::default() };
        let mut a = Network::new(specs(), 1, config).unwrap();
        let mut b = Network::new(specs(), 4, config).unwrap();
        a.run_until(Seconds::new(240.0)).unwrap();
        // Manual stepping lands on the bit-exact same clock (both sides
        // accumulate the same dt sum), so the states must coincide.
        while b.time() < a.time() {
            b.step();
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.state_hash(), b.state_hash());
    }
}

/// Deterministic (non-proptest) witness at the exact scenario the bench
/// suite uses — 1 vs 2 vs 4 shards.
#[test]
fn bench_scenario_shard_bit_identity() {
    let (t1, th1, sh1) = run(4, 0x9E37_2026, 700.0, 1, 600.0);
    let (t2, th2, sh2) = run(4, 0x9E37_2026, 700.0, 2, 600.0);
    let (t4, th4, sh4) = run(4, 0x9E37_2026, 700.0, 4, 600.0);
    assert_eq!(t1.len(), t2.len());
    assert_eq!(t1.len(), t4.len());
    assert_eq!((th1, sh1), (th2, sh2));
    assert_eq!((th1, sh1), (th4, sh4));
}
