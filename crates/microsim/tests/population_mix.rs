//! Per-corridor [`VehicleMix`] overrides: materialization and determinism.
//!
//! A corridor's mix override biases which parameter preset each Poisson
//! arrival draws without touching the draw *order*, so mixed networks keep
//! the bit-identity guarantees of the uniform ones.

use proptest::prelude::*;
use velopt_common::units::{MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{CorridorSpec, Network, SimConfig, VehicleMix};
use velopt_road::CorridorTemplate;

/// A three-corridor chain with a different population on every corridor:
/// truck-heavy feeder, IDM-heavy middle, default-passenger sink.
fn mixed_chain(seed: u64, rate: f64) -> Vec<CorridorSpec> {
    let template = CorridorTemplate {
        length: (1500.0, 2500.0),
        ..CorridorTemplate::default()
    };
    let road = |i: u64| template.generate(seed ^ (0x3141_0000 + i)).unwrap();
    let mut feeder = CorridorSpec::through(road(0), 1);
    feeder.arrival_rate = VehiclesPerHour::new(rate);
    feeder.mix = Some(VehicleMix {
        truck_fraction: 0.4,
        idm_fraction: 0.1,
    });
    let mut middle = CorridorSpec::through(road(1), 2);
    middle.arrival_rate = VehiclesPerHour::new(rate / 2.0);
    middle.mix = Some(VehicleMix {
        truck_fraction: 0.0,
        idm_fraction: 0.6,
    });
    let sink = CorridorSpec::terminal(road(2));
    vec![feeder, middle, sink]
}

fn run(seed: u64, rate: f64, shards: usize) -> (u64, u64) {
    let config = SimConfig {
        seed,
        straight_ratio: 0.9,
        ..SimConfig::default()
    };
    let mut net = Network::new(mixed_chain(seed, rate), shards, config).unwrap();
    net.spawn_ego(0, MetersPerSecond::new(5.0)).unwrap();
    net.run_until(Seconds::new(300.0)).unwrap();
    (net.ego_trace_hash(), net.state_hash())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Heterogeneous per-corridor mixes never break shard-count
    /// bit-identity.
    #[test]
    fn mixed_populations_are_shard_invariant(
        seed in any::<u64>(),
        rate in 400.0f64..900.0,
    ) {
        let one = run(seed, rate, 1);
        for shards in [2usize, 4] {
            prop_assert_eq!(one, run(seed, rate, shards), "diverged at {} shards", shards);
        }
    }
}

/// The overrides actually materialize: trucks on the truck corridor, none
/// on the truck-free one.
#[test]
fn mix_overrides_shape_each_corridor() {
    let config = SimConfig {
        seed: 0x0CA5_CADE,
        straight_ratio: 0.95,
        ..SimConfig::default()
    };
    let mut net = Network::new(mixed_chain(0x0CA5_CADE, 900.0), 2, config).unwrap();
    net.run_until(Seconds::new(900.0)).unwrap();
    let truck_count = |c: usize| {
        net.corridor(c)
            .unwrap()
            .vehicles()
            .iter()
            .filter(|v| v.params().length.value() > 10.0)
            .count()
    };
    assert!(
        truck_count(0) > 0,
        "40% truck fraction must put trucks on the feeder"
    );
    // The middle corridor spawns no trucks of its own; any trucks there
    // arrived over the junction from the feeder, which is fine — check the
    // *fresh* population instead: middle-corridor IDM share shows up as
    // vehicles whose params match the IDM preset.
    let idm_like = net
        .corridor(1)
        .unwrap()
        .vehicles()
        .iter()
        .filter(|v| v.params().model == velopt_microsim::FollowingModel::Idm)
        .count();
    assert!(
        idm_like > 0,
        "60% IDM fraction must materialize on corridor 1"
    );
}
