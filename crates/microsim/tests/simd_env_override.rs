//! The `VELOPT_MICROSIM_SIMD=off` environment override.
//!
//! This lives in its own test binary because the override is latched by a
//! `OnceLock` on first kernel dispatch: the variable must be set before any
//! simulation steps in the process, and stays in force for the process
//! lifetime. Everything here runs with the override active and checks that
//! (a) no SIMD lanes are ever reported even though the config asks for
//! them, and (b) the forced-scalar results are bit-identical to an
//! explicitly scalar (`simd: false`) run.

use velopt_common::units::{MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;

fn run(simd: bool) -> Simulation {
    // Latch the override before the first dispatch. Tests in this binary
    // may run concurrently, but they all set the same value, so the latch
    // order does not matter.
    std::env::set_var("VELOPT_MICROSIM_SIMD", "off");
    let config = SimConfig {
        truck_fraction: 0.2,
        idm_fraction: 0.2,
        simd,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(Road::us25(), config).unwrap();
    sim.set_arrival_rate(VehiclesPerHour::new(900.0));
    sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
    sim.run_until(Seconds::new(120.0)).unwrap();
    sim
}

#[test]
fn env_override_forces_the_scalar_kernel() {
    let sim = run(true);
    let m = sim.step_metrics();
    assert_eq!(
        m.simd_lanes, 0,
        "VELOPT_MICROSIM_SIMD=off must defeat `simd: true`"
    );
    assert!(m.total_lanes() > 0, "the run must still do work");
}

#[test]
fn env_override_is_bit_identical_to_config_scalar() {
    let forced = run(true);
    let scalar = run(false);
    assert_eq!(forced.vehicle_count(), scalar.vehicle_count());
    assert_eq!(forced.completed(), scalar.completed());
    for (a, b) in forced.vehicles().iter().zip(scalar.vehicles()) {
        assert_eq!(a.id(), b.id());
        assert_eq!(
            a.position().value().to_bits(),
            b.position().value().to_bits()
        );
        assert_eq!(a.speed().value().to_bits(), b.speed().value().to_bits());
    }
    let (ta, tb) = (forced.ego_trace(), scalar.ego_trace());
    assert_eq!(ta.len(), tb.len());
    for (a, b) in ta.iter().zip(tb) {
        assert_eq!(a.speed.value().to_bits(), b.speed.value().to_bits());
    }
}
