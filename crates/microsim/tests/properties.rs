//! Property-based tests for simulator safety invariants.

use proptest::prelude::*;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::{Road, RoadBuilder};

fn signal_road(light_pos: f64, red: f64, green: f64) -> Road {
    RoadBuilder::new(Meters::new(2000.0))
        .default_limits(MetersPerSecond::new(8.0), MetersPerSecond::new(20.0))
        .traffic_light(
            Meters::new(light_pos),
            Seconds::new(red),
            Seconds::new(green),
            Seconds::ZERO,
        )
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No collisions and strictly ordered vehicles under arbitrary demand
    /// and signal timing.
    #[test]
    fn no_collisions_under_arbitrary_demand(
        seed in any::<u64>(),
        rate in 100.0f64..1400.0,
        light_pos in 300.0f64..1700.0,
        red in 10.0f64..60.0,
        green in 10.0f64..60.0,
    ) {
        let mut sim = Simulation::new(
            signal_road(light_pos, red, green),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(rate));
        sim.run_until(Seconds::new(240.0)).unwrap();
        prop_assert_eq!(sim.emergency_brakes(), 0);
        for w in sim.vehicles().windows(2) {
            prop_assert!(w[1].position() <= w[0].rear() + Meters::new(1e-6));
        }
    }

    /// Speeds never go negative nor exceed the desired speed.
    #[test]
    fn speeds_bounded(seed in any::<u64>(), rate in 100.0f64..1000.0) {
        let mut sim = Simulation::new(
            signal_road(800.0, 30.0, 30.0),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(rate));
        for _ in 0..1200 {
            sim.step();
            for v in sim.vehicles() {
                prop_assert!(v.speed().value() >= 0.0);
                prop_assert!(v.speed().value() <= v.params().desired_speed.value() + 1e-9);
            }
        }
    }

    /// The ego's commanded speed is an upper bound on its realized speed.
    #[test]
    fn command_caps_ego_speed(seed in any::<u64>(), cmd in 0.0f64..15.0) {
        let mut sim = Simulation::new(
            signal_road(800.0, 20.0, 40.0),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        sim.spawn_ego(MetersPerSecond::ZERO).unwrap();
        sim.set_ego_command(Some(MetersPerSecond::new(cmd))).unwrap();
        for _ in 0..600 {
            sim.step();
            if let Some(e) = sim.ego() {
                prop_assert!(e.speed.value() <= cmd + 1e-9);
            } else {
                break;
            }
        }
    }

    /// Vehicle conservation: everything injected is still driving, turned
    /// off, or completed.
    #[test]
    fn vehicles_conserved(seed in any::<u64>(), rate in 200.0f64..900.0) {
        let mut sim = Simulation::new(
            signal_road(1000.0, 30.0, 30.0),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(rate));
        sim.run_until(Seconds::new(300.0)).unwrap();
        // completed + on-road <= injected (turners account for the gap).
        prop_assert!(sim.completed() as usize + sim.vehicle_count() > 0);
    }
}
