//! A microscopic traffic simulator — the reproduction's SUMO substitute.
//!
//! The paper validates its optimized velocity profiles by injecting them
//! into SUMO over the TraCI interface and letting SUMO's car-following and
//! signal logic perturb them: behind a residual queue the ego vehicle is
//! *forced* to brake no matter what profile it was given (Fig. 6a), and with
//! the queue-aware profile it is not (Fig. 6b). This crate reproduces that
//! mechanism:
//!
//! * **Krauss car-following** ([`KraussParams`]) — the same model family
//!   SUMO defaults to: each vehicle drives at the largest speed that is
//!   safe with respect to its leader, accelerates at most `a`, brakes
//!   comfortably at `b`, and (for background traffic) dawdles by `σ`.
//! * **Signal control** — red lights act as stationary virtual leaders at
//!   the stop line; stop signs require a full stop before proceeding.
//! * **Poisson traffic injection** ([`Simulation::set_arrival_rate`]) —
//!   background vehicles enter at the corridor start with exponential
//!   headways; a fraction `1 − γ` of them turns off at each intersection.
//! * **External speed control** ([`Simulation::set_ego_command`]) — TraCI
//!   `setSpeed` semantics: the commanded speed caps the ego's desired
//!   speed, but safety (collision avoidance, red lights) still binds.
//! * **Measurement** — per-step ego telemetry, stopped-queue probes at each
//!   light, and induction-loop detectors.
//! * **Networks** ([`Network`]) — corridors joined at junctions into a
//!   sharded, deterministically parallel multi-corridor simulation whose
//!   results are bit-identical at any shard count.
//!
//! # Examples
//!
//! ```
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_common::units::{Seconds, VehiclesPerHour};
//! use velopt_microsim::{SimConfig, Simulation};
//! use velopt_road::Road;
//!
//! let mut sim = Simulation::new(Road::us25(), SimConfig::default())?;
//! sim.set_arrival_rate(VehiclesPerHour::new(200.0));
//! sim.run_until(Seconds::new(120.0))?;
//! assert!(sim.vehicle_count() > 0);
//! // During a red phase a queue builds at the first light.
//! # Ok(())
//! # }
//! ```

mod arena;
mod config;
mod detector;
mod kernel;
mod network;
mod sim;
mod vehicle;

pub use arena::StepMetrics;
pub use config::{FollowingModel, KraussParams, SimConfig};
pub use detector::InductionLoop;
pub use network::{CorridorSpec, Network, NetworkStats, NetworkTracePoint, VehicleMix};
pub use sim::{EgoSnapshot, Handoff, Simulation, TracePoint};
pub use vehicle::{Vehicle, VehicleId, VehicleKind};
