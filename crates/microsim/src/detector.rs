//! Induction-loop detectors (the measurement the SC-DoT volume feed and the
//! paper's `V_in` probe come from).

use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, Seconds, VehiclesPerHour};

/// A point detector that counts front-bumper crossings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InductionLoop {
    position: Meters,
    total: u64,
    window_start: Seconds,
    window_count: u64,
    step_count: u64,
    last_step_count: u64,
}

impl InductionLoop {
    /// Creates a loop at the given corridor position.
    pub fn new(position: Meters) -> Self {
        Self {
            position,
            total: 0,
            window_start: Seconds::ZERO,
            window_count: 0,
            step_count: 0,
            last_step_count: 0,
        }
    }

    /// Detector position.
    pub fn position(&self) -> Meters {
        self.position
    }

    /// Total crossings since construction.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Crossings since the last [`take_window`](Self::take_window) call.
    pub fn window_count(&self) -> u64 {
        self.window_count
    }

    /// Crossings during the last **completed** simulation step — SUMO's
    /// `LAST_STEP_VEHICLE_NUMBER` semantics. Reading this value never
    /// mutates the detector, so concurrent pollers (TraCI clients, the SAE
    /// volume feed) cannot steal each other's counts.
    pub fn last_step_count(&self) -> u64 {
        self.last_step_count
    }

    /// Registers a vehicle movement from `from` to `to` (exclusive/inclusive
    /// crossing test, so a vehicle sitting exactly on the loop is counted
    /// only once).
    pub(crate) fn observe(&mut self, from: Meters, to: Meters) {
        if from < self.position && to >= self.position {
            self.total += 1;
            self.window_count += 1;
            self.step_count += 1;
        }
    }

    /// Seals the current step: the crossings observed since the previous
    /// call become [`last_step_count`](Self::last_step_count). Called by the
    /// simulation at the end of every step.
    pub(crate) fn finish_step(&mut self) {
        self.last_step_count = self.step_count;
        self.step_count = 0;
    }

    /// Returns the flow measured over the window since the last call and
    /// resets the window.
    pub fn take_window(&mut self, now: Seconds) -> VehiclesPerHour {
        let span = (now - self.window_start).value();
        let flow = if span > 0.0 {
            VehiclesPerHour::from_per_second(self.window_count as f64 / span)
        } else {
            VehiclesPerHour::ZERO
        };
        self.window_start = now;
        self.window_count = 0;
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_crossings_once() {
        let mut loop_ = InductionLoop::new(Meters::new(100.0));
        loop_.observe(Meters::new(98.0), Meters::new(99.0));
        assert_eq!(loop_.total(), 0);
        loop_.observe(Meters::new(99.0), Meters::new(100.0));
        assert_eq!(loop_.total(), 1);
        // Already at/past the loop: no double count.
        loop_.observe(Meters::new(100.0), Meters::new(101.0));
        assert_eq!(loop_.total(), 1);
    }

    #[test]
    fn window_flow_computation() {
        let mut loop_ = InductionLoop::new(Meters::new(10.0));
        for _ in 0..5 {
            loop_.observe(Meters::new(9.0), Meters::new(11.0));
        }
        // 5 vehicles in 100 s = 180 veh/h.
        let flow = loop_.take_window(Seconds::new(100.0));
        assert!((flow.value() - 180.0).abs() < 1e-9);
        assert_eq!(loop_.window_count(), 0);
        assert_eq!(loop_.total(), 5);
        // Zero-length window yields zero flow, not a division by zero.
        assert_eq!(
            loop_.take_window(Seconds::new(100.0)),
            VehiclesPerHour::ZERO
        );
    }

    #[test]
    fn last_step_count_is_stable_across_reads() {
        let mut loop_ = InductionLoop::new(Meters::new(10.0));
        loop_.observe(Meters::new(9.0), Meters::new(11.0));
        loop_.observe(Meters::new(8.0), Meters::new(12.0));
        loop_.finish_step();
        assert_eq!(loop_.last_step_count(), 2);
        // Reads are non-destructive: ask twice, same answer, and the window
        // counter is untouched.
        assert_eq!(loop_.last_step_count(), 2);
        assert_eq!(loop_.window_count(), 2);
        // The next step had no crossings.
        loop_.finish_step();
        assert_eq!(loop_.last_step_count(), 0);
        assert_eq!(loop_.total(), 2);
    }
}
