//! Simulator and car-following configuration.

use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Seconds};
use velopt_common::{Error, Result};

/// Which longitudinal car-following law a vehicle drives with.
///
/// SUMO ships several; we implement the two most common. Both read their
/// parameters from the surrounding [`KraussParams`] (`accel`, `decel`,
/// `reaction` — doubling as IDM's desired time headway `T` — and
/// `min_gap` as IDM's standstill distance `s₀`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FollowingModel {
    /// Krauss safe-speed model (SUMO's default; speed-based).
    #[default]
    Krauss,
    /// Intelligent Driver Model (acceleration-based):
    /// `a = a_max·[1 − (v/v₀)⁴ − (s*/s)²]` with
    /// `s* = s₀ + v·T + v·Δv / (2·√(a_max·b))`.
    Idm,
}

/// Krauss car-following parameters for one vehicle.
///
/// The safe-speed rule is the classic Krauss formulation: a follower may not
/// exceed
///
/// ```text
/// v_safe = −b·τ + sqrt(b²·τ² + v_leader² + 2·b·gap)
/// ```
///
/// which guarantees it can always stop behind the leader's worst-case
/// stopping point given reaction time `τ` and comfortable deceleration `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KraussParams {
    /// Maximum acceleration.
    pub accel: MetersPerSecondSq,
    /// Comfortable deceleration (braking), positive.
    pub decel: MetersPerSecondSq,
    /// Dawdling factor `σ ∈ [0, 1]`: random speed reduction per step.
    pub sigma: f64,
    /// Driver reaction time `τ`.
    pub reaction: Seconds,
    /// Minimum standstill gap to the leader.
    pub min_gap: Meters,
    /// Vehicle length.
    pub length: Meters,
    /// Desired (free-flow) speed cap; the road's limit also applies.
    pub desired_speed: MetersPerSecond,
    /// The car-following law this vehicle drives with.
    pub model: FollowingModel,
}

impl KraussParams {
    /// SUMO-like defaults for background passenger cars.
    pub fn passenger() -> Self {
        Self {
            accel: MetersPerSecondSq::new(2.0),
            decel: MetersPerSecondSq::new(4.5),
            sigma: 0.3,
            reaction: Seconds::new(1.0),
            min_gap: Meters::new(2.5),
            length: Meters::new(5.0),
            desired_speed: MetersPerSecond::new(19.4),
            model: FollowingModel::Krauss,
        }
    }

    /// Passenger-car defaults driving with the Intelligent Driver Model.
    pub fn passenger_idm() -> Self {
        Self {
            model: FollowingModel::Idm,
            // IDM uses `reaction` as the desired time headway T.
            reaction: Seconds::new(1.2),
            ..Self::passenger()
        }
    }

    /// A heavy truck: longer, slower to launch, lower free-flow speed.
    pub fn truck() -> Self {
        Self {
            accel: MetersPerSecondSq::new(1.0),
            decel: MetersPerSecondSq::new(3.5),
            sigma: 0.2,
            reaction: Seconds::new(1.3),
            min_gap: Meters::new(3.5),
            length: Meters::new(12.0),
            desired_speed: MetersPerSecond::new(16.5),
            model: FollowingModel::Krauss,
        }
    }

    /// The controlled EV: comfort limits from the paper (`a ∈ [−1.5, 2.5]`)
    /// and no dawdling.
    pub fn ego() -> Self {
        Self {
            accel: MetersPerSecondSq::new(2.5),
            decel: MetersPerSecondSq::new(4.5),
            sigma: 0.0,
            reaction: Seconds::new(1.0),
            min_gap: Meters::new(2.5),
            length: Meters::new(5.0),
            desired_speed: MetersPerSecond::new(19.4),
            model: FollowingModel::Krauss,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any kinematic parameter is
    /// non-positive, `σ` is outside `[0, 1]`, or the standstill gap is
    /// negative.
    pub fn validated(self) -> Result<Self> {
        if self.accel.value() <= 0.0 || self.decel.value() <= 0.0 {
            return Err(Error::invalid_input("accel and decel must be positive"));
        }
        if !(0.0..=1.0).contains(&self.sigma) {
            return Err(Error::invalid_input("sigma must be in [0, 1]"));
        }
        if self.reaction.value() <= 0.0 {
            return Err(Error::invalid_input("reaction time must be positive"));
        }
        if self.min_gap.value() < 0.0 || self.length.value() <= 0.0 {
            return Err(Error::invalid_input("gap/length must be non-negative"));
        }
        if self.desired_speed.value() <= 0.0 {
            return Err(Error::invalid_input("desired speed must be positive"));
        }
        Ok(self)
    }

    /// The IDM acceleration toward `free_speed` with an optional
    /// constraint `(gap, leader_speed)` ahead.
    ///
    /// Uses exponent δ = 4 (the canonical choice), `reaction` as the
    /// desired time headway and `min_gap` as the standstill distance.
    pub fn idm_acceleration(
        &self,
        v: MetersPerSecond,
        free_speed: MetersPerSecond,
        constraint: Option<(Meters, MetersPerSecond)>,
    ) -> MetersPerSecondSq {
        let a = self.accel.value();
        let b = self.decel.value();
        let v0 = free_speed.value().max(0.1);
        let vv = v.value();
        let free_term = 1.0 - (vv / v0).powi(4);
        let interaction = match constraint {
            Some((gap, leader_speed)) => {
                let s = gap.value().max(0.1);
                let dv = vv - leader_speed.value();
                let s_star = self.min_gap.value()
                    + vv * self.reaction.value()
                    + vv * dv / (2.0 * (a * b).sqrt());
                (s_star.max(0.0) / s).powi(2)
            }
            None => 0.0,
        };
        MetersPerSecondSq::new(a * (free_term - interaction))
    }

    /// The Krauss safe speed with respect to a leader `gap` meters ahead
    /// travelling at `leader_speed`.
    pub fn safe_speed(&self, gap: Meters, leader_speed: MetersPerSecond) -> MetersPerSecond {
        let b = self.decel.value();
        let tau = self.reaction.value();
        let g = gap.value().max(0.0);
        let vl = leader_speed.value();
        let v = -b * tau + (b * b * tau * tau + vl * vl + 2.0 * b * g).sqrt();
        MetersPerSecond::new(v.max(0.0))
    }
}

/// Global simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Integration step (SUMO default is 1 s; we default to 0.1 s for
    /// smoother ego profiles).
    pub dt: Seconds,
    /// Seed for arrivals, dawdling and turn decisions.
    pub seed: u64,
    /// Background-vehicle car-following parameters.
    pub background: KraussParams,
    /// Ego car-following parameters.
    pub ego: KraussParams,
    /// Fraction of background vehicles that go straight at each light
    /// (the queue model's `γ`); the rest turn off and leave the corridor.
    pub straight_ratio: f64,
    /// Truck parameters for the heavy-vehicle share of the background mix.
    pub truck: KraussParams,
    /// Fraction of background arrivals that are trucks, in `[0, 1]`.
    pub truck_fraction: f64,
    /// Parameters for the IDM-driven share of the background mix.
    #[serde(default = "KraussParams::passenger_idm")]
    pub idm_background: KraussParams,
    /// Fraction of (non-truck) background arrivals driving with the IDM
    /// parameter set, in `[0, 1]`. Zero replays historical seeds exactly
    /// (the mix draw is skipped entirely).
    #[serde(default)]
    pub idm_fraction: f64,
    /// Whether the step engine may use the AVX2 lane kernels. Results are
    /// bit-identical either way (see [`crate::StepMetrics`]); the knob
    /// exists for same-run speedup measurement. The
    /// `VELOPT_MICROSIM_SIMD=off` environment override forces the portable
    /// kernels regardless.
    #[serde(default = "default_true")]
    pub simd: bool,
}

fn default_true() -> bool {
    true
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dt: Seconds::new(0.1),
            seed: 0xC0FFEE,
            background: KraussParams::passenger(),
            ego: KraussParams::ego(),
            straight_ratio: 0.7636,
            truck: KraussParams::truck(),
            truck_fraction: 0.0,
            idm_background: KraussParams::passenger_idm(),
            idm_fraction: 0.0,
            simd: default_true(),
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the step is non-positive, either
    /// parameter set is invalid, or the straight ratio is outside `(0, 1]`.
    pub fn validated(self) -> Result<Self> {
        if self.dt.value() <= 0.0 {
            return Err(Error::invalid_input("dt must be positive"));
        }
        self.background.validated()?;
        self.ego.validated()?;
        self.truck.validated()?;
        self.idm_background.validated()?;
        if !(self.straight_ratio > 0.0 && self.straight_ratio <= 1.0) {
            return Err(Error::invalid_input("straight ratio must be in (0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.truck_fraction) {
            return Err(Error::invalid_input("truck fraction must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.idm_fraction) {
            return Err(Error::invalid_input("IDM fraction must be in [0, 1]"));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(KraussParams::passenger().validated().is_ok());
        assert!(KraussParams::passenger_idm().validated().is_ok());
        assert!(KraussParams::truck().validated().is_ok());
        assert!(KraussParams::ego().validated().is_ok());
        assert!(SimConfig::default().validated().is_ok());
        assert!(SimConfig {
            truck_fraction: 1.5,
            ..SimConfig::default()
        }
        .validated()
        .is_err());
        assert!(SimConfig {
            idm_fraction: -0.1,
            ..SimConfig::default()
        }
        .validated()
        .is_err());
        assert!(SimConfig {
            idm_background: KraussParams {
                accel: MetersPerSecondSq::ZERO,
                ..KraussParams::passenger_idm()
            },
            ..SimConfig::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let p = KraussParams::passenger();
        assert!(KraussParams {
            accel: MetersPerSecondSq::ZERO,
            ..p
        }
        .validated()
        .is_err());
        assert!(KraussParams { sigma: 1.5, ..p }.validated().is_err());
        assert!(KraussParams {
            reaction: Seconds::ZERO,
            ..p
        }
        .validated()
        .is_err());
        assert!(KraussParams {
            length: Meters::ZERO,
            ..p
        }
        .validated()
        .is_err());
        let c = SimConfig::default();
        assert!(SimConfig {
            dt: Seconds::ZERO,
            ..c
        }
        .validated()
        .is_err());
        assert!(SimConfig {
            straight_ratio: 0.0,
            ..c
        }
        .validated()
        .is_err());
    }

    #[test]
    fn safe_speed_zero_gap_stopped_leader_is_zero() {
        let p = KraussParams::passenger();
        let v = p.safe_speed(Meters::ZERO, MetersPerSecond::ZERO);
        assert_eq!(v, MetersPerSecond::ZERO);
    }

    #[test]
    fn safe_speed_grows_with_gap_and_leader_speed() {
        let p = KraussParams::passenger();
        let v1 = p.safe_speed(Meters::new(10.0), MetersPerSecond::ZERO);
        let v2 = p.safe_speed(Meters::new(50.0), MetersPerSecond::ZERO);
        let v3 = p.safe_speed(Meters::new(50.0), MetersPerSecond::new(10.0));
        assert!(v2 > v1);
        assert!(v3 > v2);
    }

    #[test]
    fn idm_free_road_accelerates_then_settles() {
        let p = KraussParams::passenger_idm();
        // From rest with no obstacle: near-maximal acceleration.
        let a0 = p.idm_acceleration(MetersPerSecond::ZERO, MetersPerSecond::new(19.4), None);
        assert!((a0.value() - p.accel.value()).abs() < 1e-9);
        // At the desired speed: zero acceleration.
        let a_eq = p.idm_acceleration(MetersPerSecond::new(19.4), MetersPerSecond::new(19.4), None);
        assert!(a_eq.value().abs() < 1e-9);
        // Above the desired speed: deceleration.
        let a_over =
            p.idm_acceleration(MetersPerSecond::new(25.0), MetersPerSecond::new(19.4), None);
        assert!(a_over.value() < 0.0);
    }

    #[test]
    fn idm_brakes_for_close_stopped_leader() {
        let p = KraussParams::passenger_idm();
        let a = p.idm_acceleration(
            MetersPerSecond::new(15.0),
            MetersPerSecond::new(19.4),
            Some((Meters::new(20.0), MetersPerSecond::ZERO)),
        );
        assert!(a.value() < -1.0, "should brake hard, got {a:?}");
        // A distant leader barely matters.
        let far = p.idm_acceleration(
            MetersPerSecond::new(15.0),
            MetersPerSecond::new(19.4),
            Some((Meters::new(500.0), MetersPerSecond::ZERO)),
        );
        assert!(far.value() > 0.5);
    }

    #[test]
    fn safe_speed_allows_stopping_within_gap() {
        // Starting at v_safe and braking at b after one reaction time must
        // not cover more than the gap (leader stopped).
        let p = KraussParams::passenger();
        let gap = 37.0;
        let v = p
            .safe_speed(Meters::new(gap), MetersPerSecond::ZERO)
            .value();
        let b = p.decel.value();
        let tau = p.reaction.value();
        let stopping = v * tau + v * v / (2.0 * b);
        assert!(stopping <= gap + 1e-6, "stopping {stopping} vs gap {gap}");
    }
}
