//! The simulation loop.
//!
//! The hot per-vehicle state lives in a structure-of-arrays
//! ([`crate::arena::Lanes`]) kept in index lockstep with the cold AoS
//! `Vec<Vehicle>`; the Krauss update is evaluated by the runtime-dispatched
//! lane kernels in [`crate::kernel`], and the per-tick light/sign/detector
//! work is done by monotone cursor sweeps over the position-sorted signal
//! arrays instead of per-vehicle scans. See `DESIGN.md` §16 for the layout
//! and the bit-identity argument.

use crate::arena::{Lanes, StepArena, StepMetrics, PASS_DAWDLE, PASS_IDM};
use crate::config::{FollowingModel, KraussParams, SimConfig};
use crate::detector::InductionLoop;
use crate::kernel;
use crate::vehicle::{Vehicle, VehicleId, VehicleKind};
use serde::{Deserialize, Serialize};
use velopt_common::rng::SplitMix64;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_common::{Error, Result, TimeSeries};
use velopt_road::{Phase, Road};

/// One sample of the ego vehicle's trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulation time.
    pub time: Seconds,
    /// Ego front-bumper position.
    pub position: Meters,
    /// Ego speed.
    pub speed: MetersPerSecond,
}

/// A read-only view of the ego vehicle's current state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoSnapshot {
    /// Front-bumper position.
    pub position: Meters,
    /// Current speed.
    pub speed: MetersPerSecond,
    /// Active commanded-speed cap, if any.
    pub commanded: Option<MetersPerSecond>,
}

/// A vehicle that crossed the downstream end of a corridor, packaged as a
/// boundary message for re-injection at the head of the next corridor of a
/// [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Handoff {
    /// Vehicle id, preserved across the boundary (network-unique when ids
    /// are allocated with [`Simulation::set_id_allocation`]).
    pub id: VehicleId,
    /// Background or ego.
    pub kind: VehicleKind,
    /// Speed at the moment the rear bumper cleared the corridor end.
    pub speed: MetersPerSecond,
    /// Car-following parameters, preserved across the boundary.
    pub params: KraussParams,
    /// Served-sign mask at the moment of exit. Sign indices are
    /// corridor-local, so the destination corridor starts the vehicle on a
    /// fresh mask; the exit-time value rides along for observability.
    pub stops_cleared: u64,
    /// An active TraCI speed command travels with the vehicle.
    pub commanded: Option<MetersPerSecond>,
}

/// One Poisson injection point (the corridor entrance or a side-road inflow
/// at an intersection).
#[derive(Debug, Clone, Copy, PartialEq)]
struct EntryPoint {
    position: Meters,
    rate: VehiclesPerHour,
    next_arrival: Option<Seconds>,
}

/// The microscopic simulation of one corridor.
///
/// Vehicles are stored front-most first. Each [`step`](Simulation::step)
/// advances time by the configured `dt`: speeds are computed synchronously
/// from the previous step's state (Krauss safe-speed + signal + command
/// constraints), then positions are integrated, arrivals injected, turners
/// and finished vehicles removed, and detectors/telemetry updated.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone)]
pub struct Simulation {
    road: Road,
    config: SimConfig,
    time: Seconds,
    next_id: u64,
    id_stride: u64,
    /// Sorted by position, descending (front-most first).
    vehicles: Vec<Vehicle>,
    /// Hot SoA state, index-lockstep with `vehicles`.
    lanes: Lanes,
    /// Pooled per-tick scratch.
    arena: StepArena,
    entries: Vec<EntryPoint>,
    rng: SplitMix64,
    ego_id: Option<VehicleId>,
    /// Cached index of the ego in `vehicles`/`lanes`; `None` once the ego
    /// has left the corridor. Maintained by insertion and compaction.
    ego_idx: Option<usize>,
    /// How many live vehicles hold a pending `turn_at_light`. When zero and
    /// the front bumper is still on the road, the removal compaction is a
    /// provable no-op and phase 3 skips its vehicle scan entirely.
    turners: usize,
    ego_trace: Vec<TracePoint>,
    ego_finished_at: Option<Seconds>,
    detectors: Vec<InductionLoop>,
    /// Detector indices sorted by position (the integration-sweep order).
    det_order: Vec<usize>,
    completed: u64,
    emergency_brakes: u64,
    metrics: StepMetrics,
    /// Vehicles that crossed the downstream end during the latest step.
    exits: Vec<Handoff>,
}

impl Simulation {
    /// Creates a simulation on the given road.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the configuration fails
    /// validation.
    pub fn new(road: Road, config: SimConfig) -> Result<Self> {
        let config = config.validated()?;
        // `RoadBuilder` already enforces this, but `Road` values can arrive
        // deserialized over the vehicular-cloud wire; the served-sign mask
        // is 64 bits wide, so re-check defensively.
        if road.stop_signs().len() > 64 {
            return Err(Error::invalid_input(format!(
                "a corridor supports at most 64 stop signs, got {}",
                road.stop_signs().len()
            )));
        }
        let seed = config.seed;
        Ok(Self {
            road,
            config,
            time: Seconds::ZERO,
            next_id: 0,
            id_stride: 1,
            vehicles: Vec::new(),
            lanes: Lanes::default(),
            arena: StepArena::default(),
            entries: vec![EntryPoint {
                position: Meters::ZERO,
                rate: VehiclesPerHour::ZERO,
                next_arrival: None,
            }],
            rng: SplitMix64::new(seed),
            ego_id: None,
            ego_idx: None,
            turners: 0,
            ego_trace: Vec::new(),
            ego_finished_at: None,
            detectors: Vec::new(),
            det_order: Vec::new(),
            completed: 0,
            emergency_brakes: 0,
            metrics: StepMetrics::default(),
            exits: Vec::new(),
        })
    }

    /// The road being simulated.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Number of vehicles currently on the corridor.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// Vehicles currently on the corridor, front-most first.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Vehicles that reached the end of the corridor.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Hard collision-avoidance interventions (should stay zero; a nonzero
    /// count indicates a car-following parameterization problem).
    pub fn emergency_brakes(&self) -> u64 {
        self.emergency_brakes
    }

    /// Cumulative step-engine work counters (lane kernel split, sweep work,
    /// scratch reuse). Dispatch-dependent counters are deliberately not part
    /// of any determinism-checked state.
    pub fn step_metrics(&self) -> StepMetrics {
        self.metrics
    }

    /// Sets the Poisson arrival rate of background traffic at the corridor
    /// entrance. A zero rate stops injection.
    pub fn set_arrival_rate(&mut self, rate: VehiclesPerHour) {
        let next = self.schedule_next(rate);
        self.entries[0].rate = rate;
        self.entries[0].next_arrival = next;
    }

    /// Adds a mid-corridor entry point (a side-road inflow at an
    /// intersection) injecting background traffic at `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDomain`] if the position is outside the road.
    pub fn add_entry_point(&mut self, position: Meters, rate: VehiclesPerHour) -> Result<()> {
        if !self.road.contains(position) {
            return Err(Error::out_of_domain("entry point outside the corridor"));
        }
        let next = self.schedule_next(rate);
        self.entries.push(EntryPoint {
            position,
            rate,
            next_arrival: next,
        });
        Ok(())
    }

    fn schedule_next(&mut self, rate: VehiclesPerHour) -> Option<Seconds> {
        if rate.value() > 0.0 {
            Some(self.time + Seconds::new(self.rng.exponential(rate.per_second())))
        } else {
            None
        }
    }

    /// Adds an induction-loop detector; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDomain`] if the position is outside the road.
    pub fn add_detector(&mut self, position: Meters) -> Result<usize> {
        if !self.road.contains(position) {
            return Err(Error::out_of_domain("detector outside the corridor"));
        }
        self.detectors.push(InductionLoop::new(position));
        // Keep the sweep order position-sorted (stable on ties so equal
        // positions count in insertion order, like the historical scan).
        let mut order: Vec<usize> = (0..self.detectors.len()).collect();
        order.sort_by(|&a, &b| {
            self.detectors[a]
                .position()
                .value()
                .total_cmp(&self.detectors[b].position().value())
                .then(a.cmp(&b))
        });
        self.det_order = order;
        Ok(self.detectors.len() - 1)
    }

    /// The detectors added so far.
    pub fn detectors(&self) -> &[InductionLoop] {
        &self.detectors
    }

    /// Mutable access to a detector (for window reads).
    pub fn detector_mut(&mut self, idx: usize) -> Option<&mut InductionLoop> {
        self.detectors.get_mut(idx)
    }

    /// Spawns the ego vehicle at the corridor start.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if an ego already exists or the
    /// entrance is blocked.
    pub fn spawn_ego(&mut self, start_speed: MetersPerSecond) -> Result<VehicleId> {
        if self.ego_id.is_some() {
            return Err(Error::invalid_input("an ego vehicle already exists"));
        }
        if self.entrance_blocked() {
            return Err(Error::invalid_input("corridor entrance is blocked"));
        }
        let id = self.allocate_id();
        let vehicle = Vehicle {
            id,
            kind: VehicleKind::Ego,
            position: Meters::ZERO,
            speed: start_speed.max(MetersPerSecond::ZERO),
            params: self.config.ego,
            turn_at_light: None,
            stops_cleared: 0,
            commanded: None,
        };
        let idx = self.insert_vehicle(vehicle);
        self.ego_id = Some(id);
        self.ego_idx = Some(idx);
        self.ego_trace.push(TracePoint {
            time: self.time,
            position: Meters::ZERO,
            speed: start_speed,
        });
        Ok(id)
    }

    /// The ego's current state, if it is on the corridor (O(1) via the
    /// cached index).
    pub fn ego(&self) -> Option<EgoSnapshot> {
        self.ego_id?;
        let idx = self.ego_idx?;
        let v = &self.vehicles[idx];
        debug_assert_eq!(Some(v.id), self.ego_id, "stale ego index");
        Some(EgoSnapshot {
            position: v.position,
            speed: v.speed,
            commanded: v.commanded,
        })
    }

    /// Sets (or clears) the TraCI-style commanded-speed cap on the ego.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if no ego is active or the command is
    /// negative.
    pub fn set_ego_command(&mut self, command: Option<MetersPerSecond>) -> Result<()> {
        if let Some(c) = command {
            if c.value() < 0.0 {
                return Err(Error::invalid_input("commanded speed must be >= 0"));
            }
        }
        self.ego_id
            .ok_or_else(|| Error::invalid_input("no ego vehicle active"))?;
        let idx = self
            .ego_idx
            .ok_or_else(|| Error::invalid_input("ego has left the corridor"))?;
        self.vehicles[idx].commanded = command;
        self.lanes.cmd[idx] = command.map_or(f64::INFINITY, |c| c.value());
        Ok(())
    }

    /// Sets (or clears) the TraCI-style commanded-speed cap on any live
    /// vehicle — the fleet co-simulation path, where every EV in the
    /// corridor (not just the ego) follows a cloud-planned profile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the command is negative or no
    /// vehicle with this id is in the corridor.
    pub fn set_vehicle_command(
        &mut self,
        id: VehicleId,
        command: Option<MetersPerSecond>,
    ) -> Result<()> {
        if let Some(c) = command {
            if c.value() < 0.0 {
                return Err(Error::invalid_input("commanded speed must be >= 0"));
            }
        }
        if let Some(idx) = self.vehicles.iter().position(|v| v.id == id) {
            self.vehicles[idx].commanded = command;
            self.lanes.cmd[idx] = command.map_or(f64::INFINITY, |c| c.value());
            Ok(())
        } else {
            Err(Error::invalid_input(format!(
                "vehicle {id} is not in the corridor"
            )))
        }
    }

    /// The recorded ego trajectory.
    pub fn ego_trace(&self) -> &[TracePoint] {
        &self.ego_trace
    }

    /// The time at which the ego reached the end of the corridor, if it has.
    pub fn ego_finished_at(&self) -> Option<Seconds> {
        self.ego_finished_at
    }

    /// The ego speed profile as a uniform [`TimeSeries`] (speed vs time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the ego never produced a trace.
    pub fn ego_speed_series(&self) -> Result<TimeSeries> {
        if self.ego_trace.is_empty() {
            return Err(Error::invalid_input("no ego trace recorded"));
        }
        TimeSeries::from_samples(
            self.ego_trace[0].time,
            self.config.dt,
            self.ego_trace.iter().map(|p| p.speed.value()).collect(),
        )
    }

    /// Number of vehicles queued upstream of light `light_idx`'s stop line
    /// (the Fig. 5b "real data" probe).
    ///
    /// A vehicle counts as queued while it is gap-chained toward the stop
    /// line **and** still below the discharge speed — this matches the QL
    /// model's `L_q` semantics, where a vehicle leaves the queue when the
    /// discharge wave has accelerated it to `v_min` and carried it through
    /// the light, not the instant its wheels first move. The headway
    /// allowance grows with speed because an accelerating queue stretches.
    ///
    /// # Panics
    ///
    /// Panics if `light_idx` is out of range.
    pub fn queue_at_light(&self, light_idx: usize) -> usize {
        let stop_line = self.road.traffic_lights()[light_idx].position();
        let mut count = 0usize;
        let mut front = stop_line;
        for v in &self.vehicles {
            if v.position > stop_line + Meters::new(0.5) {
                continue; // past the light
            }
            let gap = front - v.position;
            let allowance =
                v.params.length.value() + 3.0 * v.params.min_gap.value() + 1.5 * v.speed.value();
            if gap.value() <= allowance && v.speed.value() < 10.0 {
                count += 1;
                front = v.rear();
            } else if v.position < front {
                break; // a free-flowing or distant vehicle breaks the chain
            }
        }
        count
    }

    /// Advances the simulation by one step.
    pub fn step(&mut self) {
        let dt = self.config.dt;
        let dtv = dt.value();
        self.exits.clear();
        let n = self.vehicles.len();
        debug_assert_eq!(self.lanes.len(), n, "lane/AoS lockstep broken");
        let use_simd = kernel::dispatch(self.config.simd);
        let mut arena = std::mem::take(&mut self.arena);
        let lights = self.road.traffic_lights();
        let signs = self.road.stop_signs();
        let nl = lights.len();
        let ns = signs.len();

        if arena.would_grow(n, nl) {
            self.metrics.arena_grows += 1;
            telemetry::add("microsim.arena_grows", 1);
        } else {
            self.metrics.arena_reuses += 1;
        }

        // Signal phases once per tick, not once per vehicle.
        arena.red.clear();
        arena
            .red
            .extend(lights.iter().map(|l| l.phase_at(self.time) == Phase::Red));

        // Phase 1a: position sweep. Vehicles are front-most first and the
        // lights/signs arrays are position-sorted ascending, so two monotone
        // cursors (only ever moving backward as positions descend) find each
        // vehicle's nearest light/first unserved sign ahead — O(V + K) per
        // tick where the historical per-vehicle scans were O(V × K).
        arena.free.clear();
        arena.stop_gap.clear();
        let uniform_limit = if self.road.speed_zones().is_empty() {
            // The common corridor has no explicit zones; hoist the limit.
            // (Zones are first-match ordered, so a zoned road must keep the
            // historical per-vehicle lookup.)
            Some(self.road.default_limits().1.value())
        } else {
            None
        };
        let mut sweep_advances = 0u64;
        let mut sign_window_checks = 0u64;
        let mut lc = nl; // index of the first light strictly ahead
        let mut sc = ns; // index of the first sign strictly ahead
        for i in 0..n {
            let p = self.lanes.pos[i];
            while lc > 0 && lights[lc - 1].position().value() > p {
                lc -= 1;
                sweep_advances += 1;
            }
            while sc > 0 && signs[sc - 1].position.value() > p {
                sc -= 1;
                sweep_advances += 1;
            }
            // Only the nearest light ahead can bind, and only while red.
            let light_gap = if lc < nl && arena.red[lc] {
                lights[lc].position().value() - p
            } else {
                f64::INFINITY
            };
            // First unserved sign ahead: sign indices are position-ordered,
            // so it is the lowest set bit of the not-served mask at or above
            // the cursor.
            let sign_gap = if sc < ns {
                let unserved = !self.vehicles[i].stops_cleared >> sc;
                let si = sc + unserved.trailing_zeros() as usize;
                if si < ns {
                    signs[si].position.value() - p
                } else {
                    f64::INFINITY
                }
            } else {
                f64::INFINITY
            };
            // Both obstacles are stationary, and the stopped-obstacle safe
            // speed is weakly monotone in the gap, so one merged lane is
            // bit-identical to constraining on each separately.
            arena.stop_gap.push(light_gap.min(sign_gap));
            let limit = match uniform_limit {
                Some(l) => l,
                None => self.road.speed_limits_at(Meters::new(p)).1.value(),
            };
            arena
                .free
                .push(self.lanes.desired[i].min(limit).min(self.lanes.cmd[i]));
        }

        // Phase 1b: the Krauss lane kernel (AVX2 when dispatched).
        arena.next.clear();
        arena.next.resize(n, 0.0);
        let (simd_lanes, scalar_lanes) = kernel::lane_speeds(
            use_simd,
            &kernel::KraussIn {
                pos: &self.lanes.pos,
                spd: &self.lanes.spd,
                length: &self.lanes.length,
                min_gap: &self.lanes.min_gap,
                accel_dt: &self.lanes.accel_dt,
                bt: &self.lanes.bt,
                btsq: &self.lanes.btsq,
                twob: &self.lanes.twob,
                free: &arena.free,
                stop_gap: &arena.stop_gap,
            },
            &mut arena.next,
        );

        // Phase 1c: scalar pass in vehicle order — Krauss dawdle draws and
        // IDM vehicles. Running this in index order keeps the SplitMix64
        // draw sequence identical to the historical per-vehicle loop.
        for i in 0..n {
            match self.lanes.pass[i] {
                PASS_DAWDLE => {
                    let dawdle = self.lanes.sigma_accel_dt[i] * self.rng.next_f64();
                    arena.next[i] = (arena.next[i] - dawdle).max(0.0);
                }
                PASS_IDM => {
                    let spd = self.lanes.spd[i];
                    let sg = arena.stop_gap[i];
                    // Reconstruct the binding (smallest-gap) constraint the
                    // historical `min_by` fold chose; `min_by` keeps the
                    // *last* of equal minima, so a stop line at exactly the
                    // leader gap wins the tie.
                    let binding = if i > 0 {
                        let lg = ((self.lanes.pos[i - 1] - self.lanes.length[i - 1])
                            - self.lanes.pos[i])
                            - self.lanes.min_gap[i];
                        if sg <= lg {
                            Some((Meters::new(sg), MetersPerSecond::ZERO))
                        } else {
                            Some((Meters::new(lg), MetersPerSecond::new(self.lanes.spd[i - 1])))
                        }
                    } else if sg < f64::INFINITY {
                        Some((Meters::new(sg), MetersPerSecond::ZERO))
                    } else {
                        None
                    };
                    let params = &self.vehicles[i].params;
                    let a = params.idm_acceleration(
                        MetersPerSecond::new(spd),
                        MetersPerSecond::new(arena.free[i]),
                        binding,
                    );
                    // Limit braking to a hard emergency bound so a single
                    // step cannot produce absurd decelerations.
                    let a = a
                        .value()
                        .clamp(-2.0 * params.decel.value(), params.accel.value());
                    arena.next[i] = (spd + a * dtv).max(0.0);
                }
                _ => {}
            }
        }

        // Phase 2: integrate positions. With no signs and no detectors this
        // is one vectorized lane pass; otherwise a scalar loop folds the
        // detector-crossing sweep and stop-sign serving into the same pass
        // (the historical code rescanned every detector and sign per
        // vehicle).
        if ns == 0 && self.detectors.is_empty() {
            kernel::integrate(use_simd, &mut self.lanes.pos, &arena.next, dtv);
            // Double-buffer: `next` *becomes* the speed lane (the old speeds
            // become next tick's scratch) instead of copying element-wise.
            std::mem::swap(&mut self.lanes.spd, &mut arena.next);
        } else {
            let nd = self.det_order.len();
            let mut dc = nd; // index of the first detector strictly ahead
            for i in 0..n {
                let from = self.lanes.pos[i];
                let next = arena.next[i];
                let to = from + next * dtv;
                while dc > 0 && self.detectors[self.det_order[dc - 1]].position().value() > from {
                    dc -= 1;
                    sweep_advances += 1;
                }
                // Every detector in (from, to] is a crossing; `observe`
                // re-checks the exact exclusive/inclusive predicate.
                let mut j = dc;
                while j < nd {
                    let det = &mut self.detectors[self.det_order[j]];
                    if det.position().value() > to {
                        break;
                    }
                    det.observe(Meters::new(from), Meters::new(to));
                    j += 1;
                }
                // Serve stop signs: only a (near-)stopped vehicle can serve,
                // and only signs within ±3 m of its new position. The ±4 m
                // scan window over-covers the float rounding of `to - 4.0`;
                // the exact |sign − to| < 3 recheck inside decides every
                // boundary with the historical expression.
                if ns > 0 && next < 0.1 {
                    let lo = signs.partition_point(|s| s.position.value() <= to - 4.0);
                    let mask = &mut self.vehicles[i].stops_cleared;
                    for (si, sign) in signs.iter().enumerate().skip(lo) {
                        let sp = sign.position.value();
                        if sp >= to + 4.0 {
                            break;
                        }
                        sign_window_checks += 1;
                        if *mask & (1u64 << si) == 0 && (sp - to).abs() < 3.0 {
                            *mask |= 1u64 << si;
                        }
                    }
                }
                self.lanes.pos[i] = to;
                self.lanes.spd[i] = next;
            }
        }
        // Seal the detector step: every movement for this step is observed,
        // so the per-step counts become the `LAST_STEP_VEHICLE_NUMBER` value
        // non-destructive readers (TraCI pollers, the SAE feed) see.
        for det in &mut self.detectors {
            det.finish_step();
        }

        // Phase 2b: hard collision guard (should never trigger with sane
        // parameters; counted so tests can assert on it), fused with the
        // AoS write-back. Sequential on purpose: a guarded leader's
        // corrected position binds its follower within the same pass, and
        // the write-back reads the corrected lanes.
        for i in 0..n {
            if i > 0 {
                let lead_rear = self.lanes.pos[i - 1] - self.lanes.length[i - 1];
                if self.lanes.pos[i] > lead_rear {
                    self.lanes.pos[i] = lead_rear;
                    self.lanes.spd[i] = 0.0;
                    self.emergency_brakes += 1;
                }
            }
            self.vehicles[i].position = Meters::new(self.lanes.pos[i]);
            self.vehicles[i].speed = MetersPerSecond::new(self.lanes.spd[i]);
        }

        self.time += dt;

        // Phase 3: remove turners (at green lights) and finished vehicles —
        // one in-place compaction over both the AoS and the lanes, tracking
        // the ego index through the moves.
        let road_len = self.road.length().value();
        // Vehicles only ever leave by turning (needs a pending turner) or by
        // crossing the downstream end (the front-most rear bumper is the
        // earliest candidate); when neither is possible the compaction is a
        // no-op and the scan — the only thing it could do is count `w` up —
        // is skipped wholesale.
        let can_shed =
            self.turners > 0 || (n > 0 && self.lanes.pos[0] - self.lanes.length[0] > road_len);
        if can_shed {
            let old_ego = self.ego_idx;
            self.ego_idx = None;
            let mut finished_ego = false;
            let mut w = 0usize;
            for r in 0..n {
                if let Some(light_idx) = self.vehicles[r].turn_at_light {
                    if self.lanes.pos[r] >= lights[light_idx].position().value() {
                        self.turners -= 1;
                        continue; // turned off the corridor
                    }
                }
                if self.lanes.pos[r] - self.lanes.length[r] > road_len {
                    self.completed += 1;
                    let v = &self.vehicles[r];
                    if v.turn_at_light.is_some() {
                        self.turners -= 1;
                    }
                    self.exits.push(Handoff {
                        id: v.id,
                        kind: v.kind,
                        speed: v.speed,
                        params: v.params,
                        stops_cleared: v.stops_cleared,
                        commanded: v.commanded,
                    });
                    if old_ego == Some(r) {
                        finished_ego = true;
                    }
                    continue;
                }
                if r != w {
                    self.vehicles.swap(w, r);
                    self.lanes.copy(r, w);
                }
                if old_ego == Some(r) {
                    self.ego_idx = Some(w);
                }
                w += 1;
            }
            self.vehicles.truncate(w);
            self.lanes.truncate(w);
            if finished_ego {
                self.ego_finished_at = Some(self.time);
            }
        }

        // Phase 4: Poisson arrivals at the entrance.
        self.inject_arrivals();

        // Phase 5: ego telemetry (O(1) via the cached index).
        if self.ego_id.is_some() {
            if let Some(idx) = self.ego_idx {
                let v = &self.vehicles[idx];
                self.ego_trace.push(TracePoint {
                    time: self.time,
                    position: v.position,
                    speed: v.speed,
                });
            }
        }

        self.metrics.simd_lanes += simd_lanes;
        self.metrics.scalar_lanes += scalar_lanes;
        self.metrics.sweep_advances += sweep_advances;
        self.metrics.sign_window_checks += sign_window_checks;
        telemetry::add("microsim.steps", 1);
        telemetry::add("microsim.simd_lanes", simd_lanes);
        telemetry::add("microsim.scalar_lanes", scalar_lanes);
        telemetry::add("microsim.sweep_advances", sweep_advances);
        telemetry::add("microsim.sign_window_checks", sign_window_checks);
        self.arena = arena;
    }

    /// Runs until `t` (inclusive of the last partial step boundary).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `t` is more than one step in the
    /// past (an already-reached target within the current step is a no-op,
    /// so `run_until` can be called with a monotone schedule regardless of
    /// step-boundary rounding).
    pub fn run_until(&mut self, t: Seconds) -> Result<()> {
        if t + self.config.dt < self.time {
            return Err(Error::invalid_input("cannot run backwards in time"));
        }
        while self.time < t {
            self.step();
        }
        Ok(())
    }

    fn allocate_id(&mut self) -> VehicleId {
        let id = VehicleId(self.next_id);
        self.next_id += self.id_stride;
        id
    }

    /// Configures id allocation as an interleaved stream: the next locally
    /// allocated id is `first` and subsequent ones step by `stride`
    /// (minimum 1). A [`Network`](crate::Network) gives corridor `i` of `n`
    /// the stream `i, i + n, i + 2n, …` so vehicle ids stay unique
    /// network-wide without cross-shard coordination.
    pub fn set_id_allocation(&mut self, first: u64, stride: u64) {
        self.next_id = first;
        self.id_stride = stride.max(1);
    }

    fn entrance_blocked(&self) -> bool {
        self.insertion_blocked(Meters::ZERO, &self.config.ego, MetersPerSecond::ZERO)
    }

    /// Whether inserting a vehicle (front bumper at `position`, driving with
    /// `params`, entering at `speed`) would violate spacing with the
    /// surrounding traffic.
    ///
    /// Two sides must clear. Ahead: the nearest leader must leave launch
    /// room (a bounded-deceleration IDM entrant additionally needs its own
    /// emergency stopping distance, since unlike Krauss it cannot shed
    /// speed in a single step). Behind: **every** upstream vehicle whose
    /// speed-dependent safety margin reaches the insertion point blocks it,
    /// not just a follower within one car length — a fast follower 20 m
    /// back is exactly the one an insertion would force into an emergency
    /// brake.
    fn insertion_blocked(
        &self,
        position: Meters,
        params: &KraussParams,
        speed: MetersPerSecond,
    ) -> bool {
        let length = params.length.value();
        let dt = self.config.dt.value();
        // The scan walks the contiguous position/speed lanes (identical to
        // the AoS values outside a step) and touches the cold AoS only for
        // the per-class parameters.
        for (i, v) in self.vehicles.iter().enumerate() {
            let vpos = self.lanes.pos[i];
            let vspd = self.lanes.spd[i];
            if vpos >= position.value() {
                let ahead_gap = (vpos - self.lanes.length[i]) - position.value();
                let launch = match params.model {
                    FollowingModel::Krauss => 5.0,
                    FollowingModel::Idm => {
                        let ve = speed.value();
                        5.0_f64.max(ve * ve / (4.0 * params.decel.value()))
                    }
                };
                if ahead_gap < params.min_gap.value() + launch {
                    return true;
                }
            } else {
                let follower_gap = (position.value() - vpos) - length;
                let vf = vspd;
                let needed = v.params.min_gap.value()
                    + match v.params.model {
                        FollowingModel::Krauss => 0.5 * vf,
                        FollowingModel::Idm => {
                            // Braking is clamped to 2·b per step, so the
                            // follower needs one reaction step plus its
                            // emergency stopping distance even if the
                            // entrant has to stop dead immediately.
                            (0.5 * vf).max(vf * dt + vf * vf / (4.0 * v.params.decel.value()))
                        }
                    };
                if follower_gap < needed {
                    return true;
                }
            }
        }
        false
    }

    /// Attempts to inject a handed-off vehicle at the corridor start (the
    /// junction inflow of a [`Network`](crate::Network)). Returns `false` —
    /// leaving the simulation untouched — when the entrance spacing check
    /// rejects the insertion; the caller keeps the vehicle queued at the
    /// junction and retries on a later tick.
    ///
    /// The vehicle keeps its id, speed, parameters and any active speed
    /// command; its served-sign mask restarts empty because sign indices
    /// are corridor-local. Background vehicles draw fresh turn decisions
    /// for this corridor from the receiving simulation's RNG stream.
    pub fn receive(&mut self, handoff: &Handoff) -> bool {
        if self.insertion_blocked(Meters::ZERO, &handoff.params, handoff.speed) {
            return false;
        }
        let mut turn_at_light = None;
        if handoff.kind == VehicleKind::Background {
            for i in 0..self.road.traffic_lights().len() {
                if self.rng.chance(1.0 - self.config.straight_ratio) {
                    turn_at_light = Some(i);
                    break;
                }
            }
        }
        let idx = self.insert_vehicle(Vehicle {
            id: handoff.id,
            kind: handoff.kind,
            position: Meters::ZERO,
            speed: handoff.speed,
            params: handoff.params,
            turn_at_light,
            stops_cleared: 0,
            commanded: handoff.commanded,
        });
        if handoff.kind == VehicleKind::Ego {
            self.ego_id = Some(handoff.id);
            self.ego_idx = Some(idx);
        }
        true
    }

    /// Drains the vehicles that crossed the downstream corridor end during
    /// the most recent [`step`](Self::step) (junction boundary messages).
    pub fn take_exits(&mut self) -> Vec<Handoff> {
        std::mem::take(&mut self.exits)
    }

    /// Appends the latest step's exits to a caller-provided buffer instead
    /// of allocating a fresh `Vec` — the sharded network loop keeps one
    /// staging buffer per cell and allocates nothing in steady state.
    pub fn drain_exits_into(&mut self, out: &mut Vec<Handoff>) {
        out.append(&mut self.exits);
    }

    /// Inserts `v` into both the AoS and the lanes, returning its index and
    /// keeping the cached ego index valid.
    fn insert_vehicle(&mut self, v: Vehicle) -> usize {
        // Vehicles are sorted front-most first; new arrivals enter at the
        // back (position 0).
        let idx = self.vehicles.partition_point(|u| u.position >= v.position);
        if v.turn_at_light.is_some() {
            self.turners += 1;
        }
        self.lanes.insert(idx, &v, self.config.dt.value());
        self.vehicles.insert(idx, v);
        if let Some(e) = self.ego_idx {
            if idx <= e {
                self.ego_idx = Some(e + 1);
            }
        }
        idx
    }

    fn inject_arrivals(&mut self) {
        for e in 0..self.entries.len() {
            let Some(when) = self.entries[e].next_arrival else {
                continue;
            };
            if self.time < when {
                continue;
            }
            // Schedule the next arrival regardless of whether this one fits.
            let rate = self.entries[e].rate;
            self.entries[e].next_arrival = self.schedule_next(rate);
            let position = self.entries[e].position;
            // Spacing is checked with the background profile (the common
            // case) *before* any trait draws so a dropped arrival consumes
            // no extra RNG.
            let probe_speed = self
                .road
                .speed_limits_at(position)
                .0
                .min(self.config.background.desired_speed);
            if self.insertion_blocked(position, &self.config.background, probe_speed) {
                continue; // drop the arrival: no room at this entry
            }
            // Decide where (if anywhere) this vehicle turns off, among the
            // lights ahead of its entry point.
            let mut turn_at_light = None;
            for (i, light) in self.road.traffic_lights().iter().enumerate() {
                if light.position() <= position {
                    continue;
                }
                if self.rng.chance(1.0 - self.config.straight_ratio) {
                    turn_at_light = Some(i);
                    break;
                }
            }
            // Stop signs behind the entry point are already "served".
            let mut stops_cleared = 0u64;
            for (si, sign) in self.road.stop_signs().iter().enumerate() {
                if sign.position <= position {
                    stops_cleared |= 1u64 << si;
                }
            }
            // Population draws: trucks first (the historical draw order,
            // so `idm_fraction = 0` replays existing seeds exactly), then
            // the IDM share among the remainder. The IDM draw is gated on a
            // positive fraction because `chance` always consumes a draw.
            let params = if self.rng.chance(self.config.truck_fraction) {
                self.config.truck
            } else if self.config.idm_fraction > 0.0 && self.rng.chance(self.config.idm_fraction) {
                self.config.idm_background
            } else {
                self.config.background
            };
            let entry_speed = self
                .road
                .speed_limits_at(position)
                .0
                .min(params.desired_speed);
            let id = self.allocate_id();
            self.insert_vehicle(Vehicle {
                id,
                kind: VehicleKind::Background,
                position,
                speed: entry_speed,
                params,
                turn_at_light,
                stops_cleared,
                commanded: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_road::RoadBuilder;

    fn free_road() -> Road {
        RoadBuilder::new(Meters::new(2000.0))
            .default_limits(MetersPerSecond::new(10.0), MetersPerSecond::new(20.0))
            .build()
            .unwrap()
    }

    fn quick_sim(road: Road) -> Simulation {
        Simulation::new(road, SimConfig::default()).unwrap()
    }

    #[test]
    fn empty_simulation_advances_time() {
        let mut sim = quick_sim(free_road());
        sim.run_until(Seconds::new(5.0)).unwrap();
        assert!((sim.time().value() - 5.0).abs() < 0.11);
        assert_eq!(sim.vehicle_count(), 0);
        assert!(sim.run_until(Seconds::new(1.0)).is_err());
    }

    #[test]
    fn ego_accelerates_to_limit_on_free_road() {
        let mut sim = quick_sim(free_road());
        sim.spawn_ego(MetersPerSecond::ZERO).unwrap();
        sim.run_until(Seconds::new(30.0)).unwrap();
        let ego = sim.ego().expect("ego still driving");
        assert!(
            (ego.speed.value() - 19.4).abs() < 0.2,
            "ego should cruise at its desired speed, got {}",
            ego.speed
        );
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn ego_respects_commanded_speed() {
        let mut sim = quick_sim(free_road());
        sim.spawn_ego(MetersPerSecond::ZERO).unwrap();
        sim.set_ego_command(Some(MetersPerSecond::new(7.0)))
            .unwrap();
        sim.run_until(Seconds::new(20.0)).unwrap();
        let ego = sim.ego().unwrap();
        assert!((ego.speed.value() - 7.0).abs() < 0.1);
        assert!(sim
            .set_ego_command(Some(MetersPerSecond::new(-1.0)))
            .is_err());
    }

    #[test]
    fn ego_stops_at_red_light() {
        let road = RoadBuilder::new(Meters::new(1000.0))
            .default_limits(MetersPerSecond::new(10.0), MetersPerSecond::new(20.0))
            .traffic_light(
                Meters::new(500.0),
                Seconds::new(1000.0), // effectively always red in this test
                Seconds::new(10.0),
                Seconds::ZERO,
            )
            .build()
            .unwrap();
        let mut sim = quick_sim(road);
        sim.spawn_ego(MetersPerSecond::new(15.0)).unwrap();
        sim.run_until(Seconds::new(60.0)).unwrap();
        let ego = sim.ego().unwrap();
        assert!(ego.speed.value() < 0.1, "ego must stop at red");
        assert!(ego.position.value() <= 500.0);
        assert!(ego.position.value() > 450.0, "ego stops near the line");
    }

    #[test]
    fn ego_serves_stop_sign_then_proceeds() {
        let road = RoadBuilder::new(Meters::new(1000.0))
            .default_limits(MetersPerSecond::new(10.0), MetersPerSecond::new(20.0))
            .stop_sign(Meters::new(300.0))
            .build()
            .unwrap();
        let mut sim = quick_sim(road);
        sim.spawn_ego(MetersPerSecond::new(15.0)).unwrap();
        let mut stopped_near_sign = false;
        for _ in 0..1500 {
            sim.step();
            if let Some(e) = sim.ego() {
                if e.speed.value() < 0.1 && (e.position.value() - 300.0).abs() < 5.0 {
                    stopped_near_sign = true;
                }
            }
        }
        assert!(stopped_near_sign, "ego must come to a halt at the sign");
        assert!(
            sim.ego_finished_at().is_some(),
            "ego proceeds after stopping"
        );
    }

    #[test]
    fn arrivals_inject_and_flow_through() {
        let mut sim = quick_sim(free_road());
        sim.set_arrival_rate(VehiclesPerHour::new(600.0));
        sim.run_until(Seconds::new(300.0)).unwrap();
        assert!(sim.completed() > 20, "completed {}", sim.completed());
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn queue_forms_at_red_and_discharges_on_green() {
        let mut sim = quick_sim(Road::us25());
        sim.set_arrival_rate(VehiclesPerHour::new(700.0));
        // Warm up to the end of a red phase at light 0, then run through
        // the following green (derive the instants from the light itself).
        let light = sim.road().traffic_lights()[0];
        let red_end = light.offset() + light.red() + light.cycle() * 2.0;
        sim.run_until(red_end - Seconds::new(2.0)).unwrap();
        let during_red = sim.queue_at_light(0);
        assert!(during_red > 0, "a queue should form during red");
        sim.run_until(red_end + light.green() - Seconds::new(3.0))
            .unwrap();
        let late_green = sim.queue_at_light(0);
        assert!(
            late_green < during_red,
            "queue should discharge: {during_red} -> {late_green}"
        );
    }

    #[test]
    fn detectors_count_flow() {
        let mut sim = quick_sim(free_road());
        let det = sim.add_detector(Meters::new(1000.0)).unwrap();
        assert!(sim.add_detector(Meters::new(9999.0)).is_err());
        sim.set_arrival_rate(VehiclesPerHour::new(720.0));
        sim.run_until(Seconds::new(600.0)).unwrap();
        let flow = sim
            .detector_mut(det)
            .unwrap()
            .take_window(Seconds::new(600.0));
        // Expect roughly the injection rate (wide tolerance for Poisson).
        assert!(
            flow.value() > 400.0 && flow.value() < 1000.0,
            "measured {flow}"
        );
    }

    #[test]
    fn turners_leave_at_lights() {
        let mut sim = Simulation::new(
            Road::us25(),
            SimConfig {
                straight_ratio: 0.5,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(720.0));
        let det = sim.add_detector(Meters::new(4100.0)).unwrap();
        sim.run_until(Seconds::new(900.0)).unwrap();
        let through = sim.detectors()[det].total();
        // With two lights at γ=0.5 only ~25% survive to the corridor end.
        let injected = sim.completed() + sim.vehicle_count() as u64 + through; // loose lower bound sanity
        assert!(through > 0);
        assert!(
            (through as f64) < 0.6 * injected as f64,
            "most vehicles should have turned off: {through} of {injected}"
        );
    }

    #[test]
    fn ego_trace_is_contiguous() {
        let mut sim = quick_sim(free_road());
        sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
        sim.run_until(Seconds::new(10.0)).unwrap();
        let trace = sim.ego_trace();
        // 100 steps plus the spawn sample; float time accumulation may add
        // one extra step at the boundary.
        assert!((101..=102).contains(&trace.len()), "len {}", trace.len());
        let series = sim.ego_speed_series().unwrap();
        assert_eq!(series.len(), trace.len());
        // Positions are non-decreasing.
        for w in trace.windows(2) {
            assert!(w[1].position >= w[0].position);
        }
    }

    #[test]
    fn second_ego_rejected() {
        let mut sim = quick_sim(free_road());
        sim.spawn_ego(MetersPerSecond::ZERO).unwrap();
        assert!(sim.spawn_ego(MetersPerSecond::ZERO).is_err());
    }

    #[test]
    fn side_entry_points_inject_downstream() {
        let mut sim = quick_sim(Road::us25());
        assert!(sim
            .add_entry_point(Meters::new(9999.0), VehiclesPerHour::new(100.0))
            .is_err());
        sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(600.0))
            .unwrap();
        sim.run_until(Seconds::new(120.0)).unwrap();
        assert!(sim.vehicle_count() > 0);
        // Every vehicle entered at 600 m, so none can be upstream of it.
        for v in sim.vehicles() {
            assert!(v.position() >= Meters::new(600.0) - Meters::new(1e-6));
        }
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn side_entries_skip_passed_stop_signs() {
        // Vehicles injected at 600 m must not brake for the 490 m sign.
        let mut sim = quick_sim(Road::us25());
        sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(400.0))
            .unwrap();
        sim.run_until(Seconds::new(200.0)).unwrap();
        // No vehicle should ever be stopped upstream of the first light
        // while the light is green (nothing else can stop them).
        assert!(sim.completed() + sim.vehicle_count() as u64 > 0);
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn idm_fleet_flows_without_collisions() {
        let mut sim = Simulation::new(
            Road::us25(),
            SimConfig {
                background: crate::config::KraussParams::passenger_idm(),
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(900.0));
        sim.run_until(Seconds::new(400.0)).unwrap();
        assert!(sim.completed() > 5, "IDM traffic must flow");
        assert_eq!(sim.emergency_brakes(), 0, "IDM must stay collision-free");
        for w in sim.vehicles().windows(2) {
            assert!(w[1].position() <= w[0].rear() + Meters::new(1e-6));
        }
    }

    #[test]
    fn idm_queues_form_and_discharge_like_krauss() {
        let mk = |params| {
            let mut sim = Simulation::new(
                Road::us25(),
                SimConfig {
                    background: params,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(700.0));
            let light = sim.road().traffic_lights()[0];
            let red_end = light.offset() + light.red() + light.cycle() * 4.0;
            sim.run_until(red_end - Seconds::new(2.0)).unwrap();
            sim.queue_at_light(0)
        };
        let krauss = mk(crate::config::KraussParams::passenger());
        let idm = mk(crate::config::KraussParams::passenger_idm());
        assert!(
            krauss > 0 && idm > 0,
            "both models build queues: {krauss} vs {idm}"
        );
    }

    #[test]
    fn truck_mix_injects_heavier_vehicles_safely() {
        let mut sim = Simulation::new(
            Road::us25(),
            SimConfig {
                truck_fraction: 0.3,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(800.0));
        sim.run_until(Seconds::new(300.0)).unwrap();
        let trucks = sim
            .vehicles()
            .iter()
            .filter(|v| v.params().length.value() > 10.0)
            .count();
        assert!(trucks > 0, "a 30% truck share must show up in the mix");
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn no_collisions_in_dense_signalized_traffic() {
        let mut sim = quick_sim(Road::us25());
        sim.set_arrival_rate(VehiclesPerHour::new(1200.0));
        sim.run_until(Seconds::new(600.0)).unwrap();
        assert_eq!(
            sim.emergency_brakes(),
            0,
            "Krauss following must prevent collisions"
        );
        // Invariant: strictly ordered positions with positive gaps.
        for w in sim.vehicles().windows(2) {
            assert!(w[1].position <= w[0].rear() + Meters::new(1e-6));
        }
    }

    #[test]
    fn side_entries_never_force_emergency_brakes() {
        // Regression: the follower-gap check used to apply only to upstream
        // vehicles within one car length of the insertion point
        // (`-behind_gap < 0.0`), so a fast follower a few metres further
        // back was ignored entirely. IDM followers brake at a bounded rate,
        // so such an insertion forced the collision guard. Every upstream
        // vehicle whose gap can bind must pass the min_gap + 0.5·v test.
        let mut sim = Simulation::new(
            Road::us25(),
            SimConfig {
                background: KraussParams::passenger_idm(),
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(1000.0));
        // High side-entry rate in fast traffic: arrivals leaving the stop
        // sign at 490 m reach ~19 m/s by this merge point.
        sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(900.0))
            .unwrap();
        sim.run_until(Seconds::new(400.0)).unwrap();
        assert!(
            sim.completed() + sim.vehicle_count() as u64 > 40,
            "the merge must still admit traffic"
        );
        assert_eq!(
            sim.emergency_brakes(),
            0,
            "side entries must respect every binding follower gap"
        );
    }

    #[test]
    fn stop_sign_masks_use_all_64_bits() {
        // Regression: the served-sign mask was a u32, so `1 << si` for the
        // 33rd sign overflowed (panic in debug, wraparound in release).
        let mut b = RoadBuilder::new(Meters::new(10_000.0));
        for i in 0..40 {
            b.stop_sign(Meters::new(50.0 + 200.0 * i as f64));
        }
        let road = b
            .default_limits(MetersPerSecond::new(5.0), MetersPerSecond::new(20.0))
            .build()
            .unwrap();
        let mut sim = quick_sim(road);
        // Entering just past sign 35 marks signs 0..=35 as served — indices
        // beyond 31 exercise the full width of the mask.
        sim.add_entry_point(Meters::new(7060.0), VehiclesPerHour::new(700.0))
            .unwrap();
        sim.run_until(Seconds::new(120.0)).unwrap();
        assert!(sim.vehicle_count() > 0);
        for v in sim.vehicles() {
            assert_ne!(
                v.stops_cleared() & (1u64 << 35),
                0,
                "signs behind the entry must be marked served"
            );
        }
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn exits_become_handoffs_and_receive_preserves_identity() {
        let road = RoadBuilder::new(Meters::new(2000.0))
            .default_limits(MetersPerSecond::new(10.0), MetersPerSecond::new(20.0))
            .stop_sign(Meters::new(300.0))
            .build()
            .unwrap();
        let mut sim = Simulation::new(road, SimConfig::default()).unwrap();
        sim.set_id_allocation(3, 7);
        let id = sim.spawn_ego(MetersPerSecond::new(15.0)).unwrap();
        assert_eq!(id.raw(), 3, "first id comes from the allocation base");
        sim.set_ego_command(Some(MetersPerSecond::new(12.0)))
            .unwrap();
        let mut exited = Vec::new();
        while exited.is_empty() && sim.time() < Seconds::new(400.0) {
            sim.step();
            exited.extend(sim.take_exits());
        }
        let h = exited[0];
        assert_eq!(h.id, id);
        assert_eq!(h.kind, VehicleKind::Ego);
        assert_eq!(h.commanded, Some(MetersPerSecond::new(12.0)));
        assert_eq!(h.stops_cleared, 1, "the served stop sign rides along");
        assert!(h.speed.value() > 0.0);

        // Re-injection on a downstream corridor keeps id and speed.
        let mut dst = quick_sim(free_road());
        assert!(dst.receive(&h));
        let v = dst.vehicles().iter().find(|v| v.id() == h.id).unwrap();
        assert_eq!(v.speed(), h.speed);
        assert_eq!(v.position(), Meters::ZERO);
        assert_eq!(
            v.stops_cleared(),
            0,
            "served signs do not carry across corridors"
        );
        let ego = dst
            .ego()
            .expect("ego identity transfers to the new corridor");
        assert_eq!(ego.speed, h.speed);

        // A blocked entrance refuses the handoff (head-of-line at junctions).
        let blocked = Handoff {
            id: VehicleId(99),
            kind: VehicleKind::Background,
            speed: MetersPerSecond::new(10.0),
            params: KraussParams::passenger(),
            stops_cleared: 0,
            commanded: None,
        };
        assert!(!dst.receive(&blocked), "entrance is occupied by the ego");
        assert_eq!(dst.vehicle_count(), 1);
    }

    /// Replays the historical per-vehicle scan algorithm (pre-SoA) over the
    /// public state: constraints gathered by scanning every light and sign
    /// per vehicle, the Krauss/IDM fold, integration, and the sequential
    /// collision guard. Returns `id → (speed_bits, pos_bits)` predictions
    /// for every vehicle present before the step. Dawdle draws are not
    /// replayed, so callers must use `σ = 0` backgrounds.
    fn scan_oracle(sim: &Simulation) -> std::collections::HashMap<u64, (u64, u64)> {
        let dt = sim.config().dt;
        let road = sim.road();
        let vehicles = sim.vehicles();
        let mut new_speeds: Vec<MetersPerSecond> = Vec::with_capacity(vehicles.len());
        for (i, v) in vehicles.iter().enumerate() {
            let mut constraints: Vec<(Meters, MetersPerSecond)> = Vec::with_capacity(3);
            if i > 0 {
                let lead = &vehicles[i - 1];
                constraints.push((lead.rear() - v.position - v.params.min_gap, lead.speed));
            }
            for light in road.traffic_lights() {
                if light.position() > v.position {
                    if light.phase_at(sim.time()) == Phase::Red {
                        constraints.push((light.position() - v.position, MetersPerSecond::ZERO));
                    }
                    break;
                }
            }
            for (si, sign) in road.stop_signs().iter().enumerate() {
                if sign.position > v.position && v.stops_cleared & (1u64 << si) == 0 {
                    constraints.push((sign.position - v.position, MetersPerSecond::ZERO));
                    break;
                }
            }
            let mut free = v
                .params
                .desired_speed
                .min(road.speed_limits_at(v.position).1);
            if let Some(cmd) = v.commanded {
                free = free.min(cmd);
            }
            let next = match v.params.model {
                FollowingModel::Krauss => {
                    let mut desired = free.min(v.speed + v.params.accel * dt);
                    for &(gap, obstacle_speed) in &constraints {
                        desired = desired.min(v.params.safe_speed(gap, obstacle_speed));
                    }
                    desired.max(MetersPerSecond::ZERO)
                }
                FollowingModel::Idm => {
                    let binding = constraints
                        .iter()
                        .copied()
                        .min_by(|a, b| a.0.value().total_cmp(&b.0.value()));
                    let a = v.params.idm_acceleration(v.speed, free, binding);
                    let a = a
                        .value()
                        .clamp(-2.0 * v.params.decel.value(), v.params.accel.value());
                    MetersPerSecond::new((v.speed.value() + a * dt.value()).max(0.0))
                }
            };
            new_speeds.push(next);
        }
        let mut pos: Vec<Meters> = vehicles.iter().map(|v| v.position).collect();
        for i in 0..vehicles.len() {
            pos[i] += new_speeds[i] * dt;
        }
        for i in 1..vehicles.len() {
            let lead_rear = pos[i - 1] - vehicles[i - 1].params.length;
            if pos[i] > lead_rear {
                pos[i] = lead_rear;
                new_speeds[i] = MetersPerSecond::ZERO;
            }
        }
        vehicles
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    v.id.raw(),
                    (new_speeds[i].value().to_bits(), pos[i].value().to_bits()),
                )
            })
            .collect()
    }

    #[test]
    fn step_matches_per_vehicle_scan_oracle_bitwise() {
        // Adversarial layout: a light and a sign sharing a stop line, a
        // near-co-located pair, a side entry exactly at a signal, and a
        // mixed Krauss/IDM population. Every step of the sweeping engine
        // must reproduce the historical per-vehicle scan bit-for-bit.
        let road = RoadBuilder::new(Meters::new(2000.0))
            .default_limits(MetersPerSecond::new(8.0), MetersPerSecond::new(20.0))
            .traffic_light(
                Meters::new(400.0),
                Seconds::new(30.0),
                Seconds::new(20.0),
                Seconds::ZERO,
            )
            .stop_sign(Meters::new(400.0)) // co-located with the light
            .stop_sign(Meters::new(897.0)) // near-co-located pair
            .traffic_light(
                Meters::new(900.0),
                Seconds::new(25.0),
                Seconds::new(25.0),
                Seconds::new(13.0),
            )
            .build()
            .unwrap();
        let mut sim = Simulation::new(
            road,
            SimConfig {
                background: KraussParams {
                    sigma: 0.0, // the oracle cannot replay dawdle draws
                    ..KraussParams::passenger()
                },
                idm_fraction: 0.35,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_arrival_rate(VehiclesPerHour::new(900.0));
        sim.add_entry_point(Meters::new(400.0), VehiclesPerHour::new(300.0))
            .unwrap();
        sim.spawn_ego(MetersPerSecond::new(10.0)).unwrap();
        sim.set_ego_command(Some(MetersPerSecond::new(12.0)))
            .unwrap();
        for _ in 0..2500 {
            let want = scan_oracle(&sim);
            sim.step();
            for v in sim.vehicles() {
                if let Some(&(sbits, pbits)) = want.get(&v.id.raw()) {
                    assert_eq!(
                        v.speed.value().to_bits(),
                        sbits,
                        "speed of {} diverged at t = {}",
                        v.id,
                        sim.time()
                    );
                    assert_eq!(
                        v.position.value().to_bits(),
                        pbits,
                        "position of {} diverged at t = {}",
                        v.id,
                        sim.time()
                    );
                }
            }
        }
        assert_eq!(sim.emergency_brakes(), 0);
        assert!(sim.completed() > 0, "traffic must flow through the layout");
    }

    #[test]
    fn entry_exactly_at_signal_lines_is_not_held() {
        // A vehicle injected exactly at a stop line binds on neither the
        // (always-red) light nor the sign there — both use strictly-ahead
        // semantics, and the sweep must reproduce that boundary.
        let road = RoadBuilder::new(Meters::new(1500.0))
            .default_limits(MetersPerSecond::new(8.0), MetersPerSecond::new(20.0))
            .traffic_light(
                Meters::new(600.0),
                Seconds::new(10_000.0),
                Seconds::new(1.0),
                Seconds::ZERO,
            )
            .stop_sign(Meters::new(600.0))
            .build()
            .unwrap();
        let mut sim = quick_sim(road);
        sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(300.0))
            .unwrap();
        sim.run_until(Seconds::new(300.0)).unwrap();
        assert!(sim.completed() > 0, "entrants at the line drive on");
        assert_eq!(sim.emergency_brakes(), 0);
        for v in sim.vehicles() {
            assert!(v.position().value() >= 600.0 - 1e-9);
        }
    }

    #[test]
    fn co_located_light_and_sign_both_bind() {
        let road = RoadBuilder::new(Meters::new(1000.0))
            .default_limits(MetersPerSecond::new(8.0), MetersPerSecond::new(20.0))
            .traffic_light(
                Meters::new(500.0),
                Seconds::new(40.0),
                Seconds::new(40.0),
                Seconds::ZERO,
            )
            .stop_sign(Meters::new(500.0))
            .build()
            .unwrap();
        let mut sim = quick_sim(road);
        sim.spawn_ego(MetersPerSecond::new(15.0)).unwrap();
        let mut stopped_at_line = false;
        while sim.time() < Seconds::new(120.0) && sim.ego_finished_at().is_none() {
            sim.step();
            if let Some(e) = sim.ego() {
                if e.speed.value() < 0.1 && (e.position.value() - 500.0).abs() < 5.0 {
                    stopped_at_line = true;
                    assert!(
                        e.position.value() <= 500.0,
                        "the merged stop lane must hold the ego at the line"
                    );
                }
            }
        }
        assert!(stopped_at_line, "the co-located pair must halt the ego");
        assert!(
            sim.ego_finished_at().is_some(),
            "a served sign and a green light release the ego"
        );
        assert_eq!(sim.emergency_brakes(), 0);
    }

    #[test]
    fn config_simd_off_is_bit_identical() {
        let run = |simd: bool| {
            let mut sim = Simulation::new(
                Road::us25(),
                SimConfig {
                    simd,
                    truck_fraction: 0.2,
                    idm_fraction: 0.15,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(900.0));
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            for _ in 0..1200 {
                sim.step();
            }
            sim
        };
        let auto = run(true);
        let forced = run(false);
        assert_eq!(forced.step_metrics().simd_lanes, 0);
        assert_eq!(
            auto.step_metrics().total_lanes(),
            forced.step_metrics().total_lanes(),
            "the lane split moves with dispatch, the total work does not"
        );
        assert_eq!(auto.completed(), forced.completed());
        assert_eq!(auto.emergency_brakes(), forced.emergency_brakes());
        assert_eq!(auto.vehicle_count(), forced.vehicle_count());
        for (a, f) in auto.vehicles().iter().zip(forced.vehicles()) {
            assert_eq!(a.id, f.id);
            assert_eq!(a.position.value().to_bits(), f.position.value().to_bits());
            assert_eq!(a.speed.value().to_bits(), f.speed.value().to_bits());
            assert_eq!(a.stops_cleared, f.stops_cleared);
        }
        assert_eq!(auto.ego_trace().len(), forced.ego_trace().len());
        for (a, f) in auto.ego_trace().iter().zip(forced.ego_trace()) {
            assert_eq!(a.position.value().to_bits(), f.position.value().to_bits());
            assert_eq!(a.speed.value().to_bits(), f.speed.value().to_bits());
        }

        // Also pin the detector-free road, which takes the vectorized
        // integration path.
        let free = |simd: bool| {
            let mut sim = Simulation::new(
                free_road(),
                SimConfig {
                    simd,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(1100.0));
            for _ in 0..800 {
                sim.step();
            }
            sim
        };
        let fa = free(true);
        let fs = free(false);
        assert_eq!(fa.completed(), fs.completed());
        for (a, f) in fa.vehicles().iter().zip(fs.vehicles()) {
            assert_eq!(a.position.value().to_bits(), f.position.value().to_bits());
            assert_eq!(a.speed.value().to_bits(), f.speed.value().to_bits());
        }
    }

    #[test]
    fn step_arena_reuses_capacity_in_steady_state() {
        let mut sim = quick_sim(Road::us25());
        sim.set_arrival_rate(VehiclesPerHour::new(900.0));
        let mut lanes_expected = 0u64;
        for _ in 0..3000 {
            lanes_expected += sim.vehicle_count() as u64;
            sim.step();
        }
        let m = sim.step_metrics();
        assert_eq!(
            m.total_lanes(),
            lanes_expected,
            "every vehicle-step is exactly one kernel lane"
        );
        assert_eq!(m.arena_grows + m.arena_reuses, 3000);
        assert!(
            m.arena_grows < 64,
            "scratch growth must cap out, got {}",
            m.arena_grows
        );
        assert!(m.arena_reuses > 2900);
        assert!(m.sweep_advances > 0, "the cursor sweeps must do the work");
    }

    #[test]
    fn drain_exits_into_reuses_the_buffer() {
        let mut sim = quick_sim(free_road());
        sim.set_arrival_rate(VehiclesPerHour::new(900.0));
        let mut buf = Vec::new();
        let mut drained = 0u64;
        for _ in 0..6000 {
            sim.step();
            sim.drain_exits_into(&mut buf);
            drained += buf.len() as u64;
            buf.clear();
        }
        assert_eq!(drained, sim.completed());
        assert!(sim.take_exits().is_empty(), "drain leaves nothing behind");
    }
}
