//! A sharded, deterministic multi-corridor network simulation.
//!
//! A [`Network`] joins single-corridor [`Simulation`]s at junctions: a
//! vehicle whose rear bumper clears the downstream end of corridor `i` is
//! packaged as a [`Handoff`] boundary message and re-injected at the head of
//! `downstream(i)` on the next tick (or leaves the network when there is no
//! downstream corridor). Corridors are partitioned into fixed contiguous
//! chunks over a thread team ([`velopt_common::par::map_chunks`]) that steps
//! them in lockstep.
//!
//! # Determinism
//!
//! An N-shard run is bit-identical to a 1-shard run at any thread count:
//!
//! * Within one tick, corridors are **independent** — each cell drains its
//!   own junction queue and steps its own `Simulation` with its own
//!   [`SplitMix64`] stream (seeded deterministically from the corridor
//!   index), so the chunk geometry cannot change any cell's state.
//! * Boundary messages are routed **after** the parallel phase, on the
//!   calling thread, in ascending source-corridor order (per-chunk outboxes
//!   come back in chunk order, and cells are processed in order within a
//!   chunk), so junction queues receive identical contents in identical
//!   order regardless of shard count.
//! * Aggregate statistics fold per-chunk counters in chunk order, and trace
//!   hashes mix `f64::to_bits` exactly, so even the observability surface is
//!   reproducible bit-for-bit.

use crate::arena::StepMetrics;
use crate::config::SimConfig;
use crate::sim::{EgoSnapshot, Handoff, Simulation};
use crate::vehicle::{VehicleId, VehicleKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use velopt_common::par;
use velopt_common::rng::SplitMix64;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_common::{Error, Result};
use velopt_road::Road;

/// Per-corridor background-traffic population shares. Overrides the
/// network-wide [`SimConfig`] fractions for one corridor, so a network can
/// mix (say) a truck-heavy arterial feeding a passenger-only downtown grid.
/// The mix only biases which preset each Poisson arrival draws — the draw
/// order itself is unchanged, so two corridors with different mixes still
/// consume their RNG streams identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleMix {
    /// Fraction of arrivals drawn as trucks (`[0, 1]`).
    pub truck_fraction: f64,
    /// Fraction of non-truck arrivals drawn as IDM followers (`[0, 1]`).
    pub idm_fraction: f64,
}

/// One corridor of a [`Network`] and how it connects to the rest.
#[derive(Debug, Clone)]
pub struct CorridorSpec {
    /// The corridor geometry and signals.
    pub road: Road,
    /// Index of the corridor that through-traffic continues onto, or `None`
    /// for a network exit.
    pub downstream: Option<usize>,
    /// Poisson arrival rate of fresh background traffic at the corridor
    /// entrance (zero = junction inflow only).
    pub arrival_rate: VehiclesPerHour,
    /// Mid-corridor side-road inflows as `(position, rate)` pairs.
    pub side_entries: Vec<(Meters, VehiclesPerHour)>,
    /// Induction-loop detector positions.
    pub detectors: Vec<Meters>,
    /// Per-corridor traffic-population override (`None` = use the
    /// network-wide [`SimConfig`] fractions).
    pub mix: Option<VehicleMix>,
}

impl CorridorSpec {
    /// A corridor that hands its through-traffic to `downstream`.
    pub fn through(road: Road, downstream: usize) -> Self {
        Self {
            road,
            downstream: Some(downstream),
            arrival_rate: VehiclesPerHour::ZERO,
            side_entries: Vec::new(),
            detectors: Vec::new(),
            mix: None,
        }
    }

    /// A corridor whose through-traffic leaves the network at the end.
    pub fn terminal(road: Road) -> Self {
        Self {
            road,
            downstream: None,
            arrival_rate: VehiclesPerHour::ZERO,
            side_entries: Vec::new(),
            detectors: Vec::new(),
            mix: None,
        }
    }
}

/// One sample of the ego's trajectory through the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkTracePoint {
    /// Simulation time.
    pub time: Seconds,
    /// Corridor the ego is on.
    pub corridor: usize,
    /// Front-bumper position within that corridor.
    pub position: Meters,
    /// Ego speed.
    pub speed: MetersPerSecond,
}

/// Deterministic aggregate statistics over the whole network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Vehicles currently on some corridor.
    pub vehicles: u64,
    /// Corridor-end crossings (a vehicle traversing `k` corridors counts
    /// `k` times).
    pub corridor_completions: u64,
    /// Vehicles that left the network at a terminal corridor.
    pub departed: u64,
    /// Junction boundary messages routed so far.
    pub handoffs: u64,
    /// Hard collision-guard interventions summed over all corridors
    /// (should stay zero).
    pub emergency_brakes: u64,
    /// Total vehicle-steps executed (the bench suite's work counter).
    pub vehicles_stepped: u64,
}

/// A corridor cell: its simulation, its junction queue, and where its
/// through-traffic goes.
#[derive(Debug, Clone)]
struct Cell {
    sim: Simulation,
    downstream: Option<usize>,
    /// Handoffs delivered but not yet admitted (head-of-line blocking:
    /// vehicles enter the new corridor in arrival order).
    pending: VecDeque<Handoff>,
    /// This tick's outgoing boundary messages, staged by the parallel phase
    /// for the sequential router. Drained every tick; the `Vec` capacity is
    /// the reused outbox buffer (no per-tick message allocation).
    staged: Vec<Handoff>,
    /// Vehicle count this cell stepped on the last tick (folded into
    /// `vehicles_stepped` by the sequential phase).
    stepped_last_tick: u64,
}

/// A network of corridors stepping in lockstep on a sharded thread team.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{Seconds, VehiclesPerHour};
/// use velopt_microsim::{CorridorSpec, Network, SimConfig};
/// use velopt_road::Road;
///
/// let mut feeder = CorridorSpec::through(Road::us25(), 1);
/// feeder.arrival_rate = VehiclesPerHour::new(600.0);
/// let sink = CorridorSpec::terminal(Road::us25());
/// let mut net = Network::new(vec![feeder, sink], 2, SimConfig::default())?;
/// net.run_until(Seconds::new(60.0))?;
/// assert!(net.stats().vehicles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cells: Vec<Cell>,
    shards: usize,
    dt: Seconds,
    time: Seconds,
    departed: u64,
    handoffs: u64,
    vehicles_stepped: u64,
    ego_id: Option<VehicleId>,
    /// The corridor the ego is on (or queued to enter); `None` before spawn
    /// and after the ego leaves the network.
    ego_cell: Option<usize>,
    ego_trace: Vec<NetworkTracePoint>,
    ego_finished_at: Option<Seconds>,
}

impl Network {
    /// Builds a network from corridor specs.
    ///
    /// `shards` is the worker-team size stepping the corridors (`0` = one
    /// per available core). The shard count never changes results — only
    /// wall-clock time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if there are no corridors, a
    /// downstream index is out of range or self-referential, the config
    /// fails validation, or a side entry/detector lies outside its road.
    pub fn new(specs: Vec<CorridorSpec>, shards: usize, config: SimConfig) -> Result<Self> {
        if specs.is_empty() {
            return Err(Error::invalid_input(
                "a network needs at least one corridor",
            ));
        }
        let n = specs.len();
        let config = config.validated()?;
        // Per-corridor RNG streams are forked from the master seed in
        // corridor index order, so corridor i's stream depends only on
        // (seed, i) — never on sharding.
        let mut seed_root = SplitMix64::new(config.seed);
        let mut cells = Vec::with_capacity(n);
        for (i, spec) in specs.into_iter().enumerate() {
            if let Some(d) = spec.downstream {
                if d >= n {
                    return Err(Error::invalid_input(format!(
                        "corridor {i} hands off to nonexistent corridor {d}"
                    )));
                }
                if d == i {
                    return Err(Error::invalid_input(format!(
                        "corridor {i} cannot hand off to itself"
                    )));
                }
            }
            let mut cfg = SimConfig {
                seed: seed_root.next_u64(),
                ..config
            };
            if let Some(mix) = spec.mix {
                cfg.truck_fraction = mix.truck_fraction;
                cfg.idm_fraction = mix.idm_fraction;
                // Re-validate: the per-corridor override may be out of range
                // even when the network-wide config was fine.
                cfg = cfg
                    .validated()
                    .map_err(|e| Error::invalid_input(format!("corridor {i} vehicle mix: {e}")))?;
            }
            let mut sim = Simulation::new(spec.road, cfg)?;
            sim.set_id_allocation(i as u64, n as u64);
            if spec.arrival_rate.value() > 0.0 {
                sim.set_arrival_rate(spec.arrival_rate);
            }
            for (pos, rate) in spec.side_entries {
                sim.add_entry_point(pos, rate)?;
            }
            for pos in spec.detectors {
                sim.add_detector(pos)?;
            }
            cells.push(Cell {
                sim,
                downstream: spec.downstream,
                pending: VecDeque::new(),
                staged: Vec::new(),
                stepped_last_tick: 0,
            });
        }
        Ok(Self {
            cells,
            shards: par::effective_threads(shards),
            dt: config.dt,
            time: Seconds::ZERO,
            departed: 0,
            handoffs: 0,
            vehicles_stepped: 0,
            ego_id: None,
            ego_cell: None,
            ego_trace: Vec::new(),
            ego_finished_at: None,
        })
    }

    /// Number of corridors.
    pub fn corridors(&self) -> usize {
        self.cells.len()
    }

    /// The worker-team size stepping the corridors.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Current simulation time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Read access to one corridor's simulation (signals, detectors,
    /// vehicles).
    pub fn corridor(&self, idx: usize) -> Option<&Simulation> {
        self.cells.get(idx).map(|c| &c.sim)
    }

    /// Boundary vehicles already routed through a junction and queued to
    /// enter `corridor` at its next step. Observability surfaces (TraCI)
    /// report these at position 0 of the destination corridor so a vehicle
    /// never vanishes for the handoff tick.
    pub fn pending(&self, idx: usize) -> impl Iterator<Item = &Handoff> + '_ {
        self.cells
            .get(idx)
            .map(|c| c.pending.iter())
            .into_iter()
            .flatten()
    }

    /// Total signal heads over all corridors.
    pub fn signal_count(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.sim.road().traffic_lights().len() + c.sim.road().stop_signs().len())
            .sum()
    }

    /// Deterministic aggregate statistics, folded in corridor order.
    pub fn stats(&self) -> NetworkStats {
        let mut s = NetworkStats {
            vehicles: 0,
            corridor_completions: 0,
            departed: self.departed,
            handoffs: self.handoffs,
            emergency_brakes: 0,
            vehicles_stepped: self.vehicles_stepped,
        };
        for cell in &self.cells {
            s.vehicles += cell.sim.vehicle_count() as u64 + cell.pending.len() as u64;
            s.corridor_completions += cell.sim.completed();
            s.emergency_brakes += cell.sim.emergency_brakes();
        }
        s
    }

    /// Cumulative step-engine work counters, folded in corridor order.
    ///
    /// The SIMD/scalar split is dispatch-dependent and therefore *not* part
    /// of [`NetworkStats`] or [`Network::state_hash`]; use
    /// [`StepMetrics::total_lanes`] for dispatch-invariant work accounting.
    pub fn step_metrics(&self) -> StepMetrics {
        let mut m = StepMetrics::default();
        for cell in &self.cells {
            m.merge(cell.sim.step_metrics());
        }
        m
    }

    /// Spawns the ego vehicle at the start of `corridor`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if an ego already exists, the
    /// corridor index is out of range, or the entrance is blocked.
    pub fn spawn_ego(&mut self, corridor: usize, speed: MetersPerSecond) -> Result<VehicleId> {
        if self.ego_id.is_some() {
            return Err(Error::invalid_input("an ego vehicle already exists"));
        }
        let cell = self
            .cells
            .get_mut(corridor)
            .ok_or_else(|| Error::invalid_input("corridor index out of range"))?;
        let id = cell.sim.spawn_ego(speed)?;
        self.ego_id = Some(id);
        self.ego_cell = Some(corridor);
        self.ego_trace.push(NetworkTracePoint {
            time: self.time,
            corridor,
            position: Meters::ZERO,
            speed,
        });
        Ok(id)
    }

    /// The ego's current state, if it is on some corridor (not queued at a
    /// junction).
    pub fn ego(&self) -> Option<EgoSnapshot> {
        self.cells[self.ego_cell?].sim.ego()
    }

    /// The corridor the ego is on or queued to enter.
    pub fn ego_corridor(&self) -> Option<usize> {
        self.ego_cell
    }

    /// The ego's network-wide vehicle id, if one was spawned.
    pub fn ego_vehicle_id(&self) -> Option<VehicleId> {
        self.ego_id
    }

    /// Sets (or clears) the TraCI commanded-speed cap on the ego, wherever
    /// in the network it currently is. A command issued while the ego waits
    /// in a junction queue is applied to the queued boundary message.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if no ego is active or the command is
    /// negative.
    pub fn set_ego_command(&mut self, command: Option<MetersPerSecond>) -> Result<()> {
        let Some(cell_idx) = self.ego_cell else {
            return Err(Error::invalid_input("no ego vehicle active"));
        };
        if let Some(c) = command {
            if c.value() < 0.0 {
                return Err(Error::invalid_input("commanded speed must be >= 0"));
            }
        }
        let ego_id = self.ego_id;
        let cell = &mut self.cells[cell_idx];
        if cell.sim.ego().is_some() {
            return cell.sim.set_ego_command(command);
        }
        for h in cell.pending.iter_mut() {
            if Some(h.id) == ego_id {
                h.commanded = command;
                return Ok(());
            }
        }
        Err(Error::invalid_input("ego has left the network"))
    }

    /// Sets (or clears) the TraCI commanded-speed cap on any live vehicle,
    /// wherever in the network it currently is — the fleet co-simulation
    /// path, where every EV follows a cloud-planned profile. A command
    /// issued while the vehicle waits in a junction queue is applied to the
    /// queued boundary message and travels with it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the command is negative or no
    /// vehicle with this id is anywhere in the network.
    pub fn set_vehicle_command(
        &mut self,
        id: VehicleId,
        command: Option<MetersPerSecond>,
    ) -> Result<()> {
        if let Some(c) = command {
            if c.value() < 0.0 {
                return Err(Error::invalid_input("commanded speed must be >= 0"));
            }
        }
        for cell in self.cells.iter_mut() {
            // The negative-speed case is pre-checked, so a cell error here
            // only ever means "not in this corridor" — keep looking.
            if cell.sim.set_vehicle_command(id, command).is_ok() {
                return Ok(());
            }
            for h in cell.pending.iter_mut() {
                if h.id == id {
                    h.commanded = command;
                    return Ok(());
                }
            }
        }
        Err(Error::invalid_input(format!(
            "vehicle {id} is not in the network"
        )))
    }

    /// The recorded ego trajectory through the network (one sample per tick
    /// the ego spent on a corridor).
    pub fn ego_trace(&self) -> &[NetworkTracePoint] {
        &self.ego_trace
    }

    /// The time at which the ego left the network, if it has.
    pub fn ego_finished_at(&self) -> Option<Seconds> {
        self.ego_finished_at
    }

    /// Advances every corridor by one tick and routes junction boundary
    /// messages.
    pub fn step(&mut self) {
        let n = self.cells.len();
        let shards = self.shards.min(n).max(1);
        let chunk_len = n.div_ceil(shards);
        // Parallel phase: each cell admits queued junction arrivals, steps,
        // and stages its outgoing boundary messages into its own pooled
        // outbox. Cells share nothing, so the chunk geometry cannot change
        // any cell's state, and the buffers' capacities carry across ticks
        // (no per-tick message allocation once warm).
        par::map_chunks(&mut self.cells, chunk_len, shards, |_, cells| {
            for cell in cells.iter_mut() {
                while let Some(h) = cell.pending.front() {
                    if cell.sim.receive(h) {
                        cell.pending.pop_front();
                    } else {
                        break; // head-of-line: keep arrival order at the junction
                    }
                }
                cell.stepped_last_tick = cell.sim.vehicle_count() as u64;
                cell.sim.step();
                cell.sim.drain_exits_into(&mut cell.staged);
            }
        });
        self.time += self.dt;
        // Sequential routing phase, in ascending source-corridor order.
        // Chunks partition the cells contiguously and in order, so this is
        // exactly the order the per-chunk outboxes used to be folded in:
        // identical queue contents and order at any shard count.
        for ci in 0..n {
            self.vehicles_stepped += self.cells[ci].stepped_last_tick;
            let mut staged = std::mem::take(&mut self.cells[ci].staged);
            let dest = self.cells[ci].downstream;
            for h in staged.drain(..) {
                match dest {
                    Some(d) => {
                        if h.kind == VehicleKind::Ego {
                            self.ego_cell = Some(d);
                        }
                        self.cells[d].pending.push_back(h);
                        self.handoffs += 1;
                    }
                    None => {
                        self.departed += 1;
                        if h.kind == VehicleKind::Ego {
                            self.ego_cell = None;
                            self.ego_finished_at = Some(self.time);
                        }
                    }
                }
            }
            // Hand the (now empty) outbox back so its capacity is reused.
            self.cells[ci].staged = staged;
        }
        // Ego telemetry (skipped while the ego waits in a junction queue).
        if let Some(cell_idx) = self.ego_cell {
            if let Some(e) = self.cells[cell_idx].sim.ego() {
                self.ego_trace.push(NetworkTracePoint {
                    time: self.time,
                    corridor: cell_idx,
                    position: e.position,
                    speed: e.speed,
                });
            }
        }
    }

    /// Runs until `t` (inclusive of the last partial step boundary).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `t` is more than one step in the
    /// past.
    pub fn run_until(&mut self, t: Seconds) -> Result<()> {
        if t + self.dt < self.time {
            return Err(Error::invalid_input("cannot run backwards in time"));
        }
        while self.time < t {
            self.step();
        }
        Ok(())
    }

    /// A 64-bit digest of the complete dynamic state (time, every vehicle on
    /// every corridor, every queued boundary message, aggregate counters),
    /// mixing `f64::to_bits` exactly. Equal hashes across shard counts are
    /// the network's bit-identity witness.
    pub fn state_hash(&self) -> u64 {
        let mut h = mix64(0x0005_EED0_F2E7, self.time.value().to_bits());
        for cell in &self.cells {
            for v in cell.sim.vehicles() {
                h = mix64(h, v.id().raw());
                h = mix64(h, v.position().value().to_bits());
                h = mix64(h, v.speed().value().to_bits());
                h = mix64(h, v.stops_cleared());
            }
            for p in &cell.pending {
                h = mix64(h, p.id.raw());
                h = mix64(h, p.speed.value().to_bits());
                h = mix64(h, p.stops_cleared);
            }
            h = mix64(h, cell.sim.completed());
            h = mix64(h, cell.sim.emergency_brakes());
            for det in cell.sim.detectors() {
                h = mix64(h, det.total());
                h = mix64(h, det.last_step_count());
            }
        }
        let s = self.stats();
        h = mix64(h, s.departed);
        h = mix64(h, s.handoffs);
        h = mix64(h, s.vehicles_stepped);
        h
    }

    /// A 64-bit digest of the ego trace (`f64::to_bits` of every sample).
    pub fn ego_trace_hash(&self) -> u64 {
        let mut h = 0x000E_6071_2ACE_u64;
        for p in &self.ego_trace {
            h = mix64(h, p.time.value().to_bits());
            h = mix64(h, p.corridor as u64);
            h = mix64(h, p.position.value().to_bits());
            h = mix64(h, p.speed.value().to_bits());
        }
        h
    }
}

/// SplitMix64-style avalanche combiner for the state digests.
fn mix64(h: u64, x: u64) -> u64 {
    let mut z = h
        .rotate_left(23)
        .wrapping_add(x)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_corridor_net(shards: usize) -> Network {
        let mut feeder = CorridorSpec::through(Road::us25(), 1);
        feeder.arrival_rate = VehiclesPerHour::new(700.0);
        let sink = CorridorSpec::terminal(Road::us25());
        Network::new(vec![feeder, sink], shards, SimConfig::default()).unwrap()
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        assert!(Network::new(vec![], 1, SimConfig::default()).is_err());
        let dangling = CorridorSpec::through(Road::us25(), 5);
        assert!(Network::new(vec![dangling], 1, SimConfig::default()).is_err());
        let self_loop = CorridorSpec::through(Road::us25(), 0);
        assert!(Network::new(vec![self_loop], 1, SimConfig::default()).is_err());
    }

    #[test]
    fn traffic_flows_across_the_junction() {
        let mut net = two_corridor_net(1);
        net.run_until(Seconds::new(900.0)).unwrap();
        let s = net.stats();
        assert!(s.handoffs > 0, "through-traffic must cross the junction");
        assert!(s.departed > 0, "and eventually leave the network");
        assert_eq!(s.emergency_brakes, 0);
        assert!(net.corridor(1).unwrap().vehicle_count() > 0);
        assert!(net.corridor(2).is_none());
    }

    #[test]
    fn vehicle_ids_are_unique_network_wide() {
        let mut net = two_corridor_net(2);
        net.run_until(Seconds::new(600.0)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for c in 0..net.corridors() {
            for v in net.corridor(c).unwrap().vehicles() {
                assert!(seen.insert(v.id().raw()), "duplicate id {}", v.id());
            }
        }
        assert!(seen.len() > 10);
    }

    #[test]
    fn ego_crosses_junctions_and_finishes() {
        let mut net = two_corridor_net(1);
        let id = net.spawn_ego(0, MetersPerSecond::new(5.0)).unwrap();
        assert!(net.spawn_ego(1, MetersPerSecond::ZERO).is_err());
        net.run_until(Seconds::new(1500.0)).unwrap();
        assert_eq!(
            net.ego_finished_at().is_some(),
            net.ego_corridor().is_none(),
        );
        assert!(
            net.ego_finished_at().is_some(),
            "ego must clear 2 corridors"
        );
        // The trace visits both corridors with the same vehicle identity.
        let trace = net.ego_trace();
        assert!(trace.iter().any(|p| p.corridor == 0));
        assert!(trace.iter().any(|p| p.corridor == 1));
        let _ = id;
    }

    #[test]
    fn ego_commands_apply_across_the_network() {
        let mut net = two_corridor_net(1);
        assert!(net.set_ego_command(None).is_err(), "no ego yet");
        net.spawn_ego(0, MetersPerSecond::new(5.0)).unwrap();
        net.set_ego_command(Some(MetersPerSecond::new(4.0)))
            .unwrap();
        assert!(net
            .set_ego_command(Some(MetersPerSecond::new(-2.0)))
            .is_err());
        net.run_until(Seconds::new(60.0)).unwrap();
        let ego = net.ego().unwrap();
        assert!((ego.speed.value() - 4.0).abs() < 0.1, "speed {}", ego.speed);
    }

    #[test]
    fn signal_count_sums_all_corridors() {
        let net = two_corridor_net(1);
        // us25 has 2 lights + 1 stop sign per corridor.
        assert_eq!(net.signal_count(), 6);
    }

    #[test]
    fn per_corridor_mix_materializes_and_is_shard_invariant() {
        use crate::vehicle::VehicleKind;
        let build = |shards: usize| {
            let mut feeder = CorridorSpec::through(Road::us25(), 1);
            feeder.arrival_rate = VehiclesPerHour::new(900.0);
            feeder.mix = Some(VehicleMix {
                truck_fraction: 0.5,
                idm_fraction: 0.4,
            });
            let mut sink = CorridorSpec::terminal(Road::us25());
            sink.arrival_rate = VehiclesPerHour::new(400.0);
            // Sink keeps the network-wide default mix (no trucks, no IDM).
            Network::new(vec![feeder, sink], shards, SimConfig::default()).unwrap()
        };
        let mut a = build(1);
        a.run_until(Seconds::new(600.0)).unwrap();
        let trucks = a
            .corridor(0)
            .unwrap()
            .vehicles()
            .iter()
            .filter(|v| v.kind() == VehicleKind::Background && v.params().length.value() > 10.0)
            .count();
        assert!(trucks > 0, "a 50% truck mix must put trucks on corridor 0");
        let mut b = build(4);
        b.run_until(Seconds::new(600.0)).unwrap();
        assert_eq!(
            a.state_hash(),
            b.state_hash(),
            "mix must stay shard-invariant"
        );
        assert_eq!(a.stats(), b.stats());

        let mut bad = CorridorSpec::terminal(Road::us25());
        bad.mix = Some(VehicleMix {
            truck_fraction: 1.5,
            idm_fraction: 0.0,
        });
        assert!(Network::new(vec![bad], 1, SimConfig::default()).is_err());
    }

    #[test]
    fn step_metrics_fold_over_corridors() {
        let mut net = two_corridor_net(2);
        net.run_until(Seconds::new(300.0)).unwrap();
        let m = net.step_metrics();
        let per_cell: u64 = (0..net.corridors())
            .map(|c| net.corridor(c).unwrap().step_metrics().total_lanes())
            .sum();
        assert_eq!(m.total_lanes(), per_cell);
        assert!(m.total_lanes() > 0);
        assert!(m.sweep_advances > 0);
    }
}
