//! Vehicle state.

use crate::config::KraussParams;
use serde::{Deserialize, Serialize};
use std::fmt;
use velopt_common::units::{Meters, MetersPerSecond};

/// Opaque vehicle identifier, unique within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub(crate) u64);

impl VehicleId {
    /// The raw id value (stable for the lifetime of the simulation; also
    /// used as the TraCI vehicle id string `veh<N>`).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value — e.g. parsed back out of the
    /// TraCI `veh<N>` object string. An id that names no live vehicle is
    /// harmless: every lookup taking a `VehicleId` fails cleanly for it.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "veh{}", self.0)
    }
}

/// What kind of participant a vehicle is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VehicleKind {
    /// Background traffic following Krauss rules autonomously.
    Background,
    /// The externally-controlled EV under study.
    Ego,
}

/// A vehicle on the corridor.
///
/// Positions are measured at the **front bumper** from the corridor start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    pub(crate) id: VehicleId,
    pub(crate) kind: VehicleKind,
    pub(crate) position: Meters,
    pub(crate) speed: MetersPerSecond,
    pub(crate) params: KraussParams,
    /// Index of the traffic light at which this vehicle turns off the
    /// corridor (`None` = drives straight to the end).
    pub(crate) turn_at_light: Option<usize>,
    /// Stop signs (by index) already served with a full stop. 64 bits wide;
    /// [`RoadBuilder`](velopt_road::RoadBuilder) rejects corridors with more
    /// than 64 signs so the mask cannot overflow.
    pub(crate) stops_cleared: u64,
    /// Commanded (TraCI `setSpeed`) cap; `None` = free driving.
    pub(crate) commanded: Option<MetersPerSecond>,
}

impl Vehicle {
    /// The vehicle id.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Background or ego.
    pub fn kind(&self) -> VehicleKind {
        self.kind
    }

    /// Front-bumper position.
    pub fn position(&self) -> Meters {
        self.position
    }

    /// Current speed.
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// Car-following parameters.
    pub fn params(&self) -> &KraussParams {
        &self.params
    }

    /// Rear-bumper position.
    pub fn rear(&self) -> Meters {
        self.position - self.params.length
    }

    /// Whether the vehicle is (effectively) standing.
    pub fn is_stopped(&self) -> bool {
        self.speed.value() < 0.1
    }

    /// The active commanded-speed cap, if any.
    pub fn commanded(&self) -> Option<MetersPerSecond> {
        self.commanded
    }

    /// Bitmask of stop signs (by corridor index) already served with a full
    /// stop.
    pub fn stops_cleared(&self) -> u64 {
        self.stops_cleared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vehicle() -> Vehicle {
        Vehicle {
            id: VehicleId(7),
            kind: VehicleKind::Background,
            position: Meters::new(100.0),
            speed: MetersPerSecond::new(5.0),
            params: KraussParams::passenger(),
            turn_at_light: None,
            stops_cleared: 0,
            commanded: None,
        }
    }

    #[test]
    fn id_display_matches_traci_convention() {
        assert_eq!(VehicleId(3).to_string(), "veh3");
        assert_eq!(VehicleId(3).raw(), 3);
    }

    #[test]
    fn rear_is_front_minus_length() {
        let v = vehicle();
        assert_eq!(v.rear(), Meters::new(95.0));
    }

    #[test]
    fn stopped_threshold() {
        let mut v = vehicle();
        assert!(!v.is_stopped());
        v.speed = MetersPerSecond::new(0.05);
        assert!(v.is_stopped());
    }
}
