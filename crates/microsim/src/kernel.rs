//! SIMD lane kernels for the car-following step.
//!
//! [`crate::Simulation::step`] evaluates, for every vehicle lane `i` of the
//! structure-of-arrays state (front-most first), the Krauss update
//!
//! ```text
//! vacc      = spd[i] + accel_dt[i]
//! desired   = min(free[i], vacc)
//! g_lead    = ((pos[i-1] - length[i-1]) - pos[i]) - min_gap[i]     (i > 0)
//! safe_lead = max(-bt[i] + sqrt((btsq[i] + spd[i-1]²) + twob[i]·max(g_lead, 0)), 0)
//! safe_stop = max(-bt[i] + sqrt(btsq[i] + twob[i]·max(stop_gap[i], 0)), 0)
//! next[i]   = max(min(min(desired, safe_lead), safe_stop), 0)
//! ```
//!
//! over contiguous `f64` lanes. This module provides that evaluation in two
//! bit-identical flavors — a portable scalar kernel and an AVX2 kernel
//! selected at runtime — plus the (equally dual) position-integration lane
//! pass `pos[i] = pos[i] + next[i]·dt`.
//!
//! # Bit-identity contract
//!
//! Every lane is an *independent* expression — there is no cross-lane
//! accumulation anywhere — so vectorizing cannot reassociate anything. The
//! AVX2 kernels use `vmulpd`/`vaddpd`/`vsubpd`/`vsqrtpd` only, never a
//! fused multiply-add (an FMA would skip the intermediate rounding of the
//! `mul` result and produce different bits), and evaluate exactly the
//! scalar expressions above with the same association. IEEE-754 requires
//! `vsqrtpd` to be correctly rounded, so even the square root is
//! bit-identical to scalar `f64::sqrt`. The expressions mirror
//! [`KraussParams::safe_speed`](crate::KraussParams::safe_speed) exactly:
//! `btsq = ((b·b)·τ)·τ` carries the left-associated rounding of
//! `b*b*tau*tau`, `(-b)·τ == -(b·τ)` because IEEE negation is exact, and
//! the sum association `(btsq + v_l²) + twob·g` matches
//! `b*b*tau*tau + vl*vl + 2.0*b*g`.
//!
//! Absent constraints use `+∞` sentinels: a missing leader, green light, or
//! served stop sign yields an infinite gap, `sqrt(+∞) = +∞`, and
//! `min(x, +∞) = x` — the same value the historical per-vehicle loop
//! produced by skipping the constraint. The merged light/sign lane
//! `stop_gap = min(light_gap, sign_gap)` is sound because the stopped-
//! obstacle safe speed is weakly monotone in the gap, so
//! `min(f(a), f(b)) == f(min(a, b))` bit-for-bit. No lane ever holds a NaN
//! and no `-0.0` arises (all safe speeds are clamped through `max(·, +0.0)`
//! and gaps of exactly-equal positions round to `+0.0`), so the
//! `min`/`max` folds are order- and flavor-insensitive: `vminpd`/`vmaxpd`
//! tie-breaking cannot be observed.
//!
//! Krauss dawdle noise and IDM vehicles are *not* lane work: the caller
//! applies them in a scalar pass in vehicle order after the kernel, so the
//! SplitMix64 draw sequence is unchanged from the per-vehicle loop.
//!
//! # Dispatch
//!
//! [`dispatch`] gates the AVX2 path on three independent switches: the
//! [`SimConfig::simd`](crate::SimConfig::simd) knob, the
//! `VELOPT_MICROSIM_SIMD` environment override (`0`/`off`/`scalar`/`false`
//! forces the portable kernel — how CI exercises the scalar path on any
//! host), and a runtime `is_x86_feature_detected!("avx2")` probe. Lane 0
//! (no leader load at `i - 1`) and ragged tails shorter than a vector
//! block always take the scalar kernel, which is bit-identical by the
//! argument above.

use std::sync::OnceLock;

/// Lanes per AVX2 block (one `ymm` register of doubles).
pub(crate) const BLOCK: usize = 4;

/// The structure-of-arrays inputs of one car-following lane pass. All
/// slices have the same length (one entry per vehicle, front-most first);
/// derived parameter lanes are precomputed at vehicle insertion.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KraussIn<'a> {
    /// Front-bumper positions from the previous step.
    pub pos: &'a [f64],
    /// Speeds from the previous step.
    pub spd: &'a [f64],
    /// Vehicle lengths (the *leader's* length is read at `i - 1`).
    pub length: &'a [f64],
    /// Standstill gaps `min_gap`.
    pub min_gap: &'a [f64],
    /// `accel · dt`.
    pub accel_dt: &'a [f64],
    /// `b · τ`.
    pub bt: &'a [f64],
    /// `b · b · τ · τ` (left-associated, matching `safe_speed`).
    pub btsq: &'a [f64],
    /// `2 · b`.
    pub twob: &'a [f64],
    /// Free-flow target (desired speed ∧ road limit ∧ TraCI command).
    pub free: &'a [f64],
    /// Gap to the binding red light / unserved stop sign (`+∞` = none).
    pub stop_gap: &'a [f64],
}

/// Whether `VELOPT_MICROSIM_SIMD` forces the portable kernels. Read once
/// and cached: the override exists so CI can pin the dispatch for a whole
/// test process, not to be toggled mid-run (same-run comparisons flip the
/// [`SimConfig::simd`](crate::SimConfig::simd) knob instead).
fn env_forces_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("VELOPT_MICROSIM_SIMD") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "scalar" | "false"
        ),
        Err(_) => false,
    })
}

/// Whether the step should attempt the AVX2 kernels: the config knob must
/// allow it, the `VELOPT_MICROSIM_SIMD` override must not force scalar,
/// and the host must actually report AVX2.
pub(crate) fn dispatch(config_simd: bool) -> bool {
    if !config_simd || env_forces_scalar() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        x86::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The portable per-lane Krauss update — the exact expression sequence of
/// the historical per-vehicle loop, factored per lane. `i == 0` has no
/// leader; its gap sentinel is `+∞`.
#[inline]
pub(crate) fn lane_speed_scalar(input: &KraussIn<'_>, i: usize) -> f64 {
    let vacc = input.spd[i] + input.accel_dt[i];
    let desired = input.free[i].min(vacc);
    let safe_lead = if i > 0 {
        let g =
            (((input.pos[i - 1] - input.length[i - 1]) - input.pos[i]) - input.min_gap[i]).max(0.0);
        let vl = input.spd[i - 1];
        (-input.bt[i] + (input.btsq[i] + vl * vl + input.twob[i] * g).sqrt()).max(0.0)
    } else {
        f64::INFINITY
    };
    let gs = input.stop_gap[i].max(0.0);
    let safe_stop = (-input.bt[i] + (input.btsq[i] + input.twob[i] * gs).sqrt()).max(0.0);
    desired.min(safe_lead).min(safe_stop).max(0.0)
}

/// Computes the full `next` speed lane, choosing the AVX2 or portable
/// kernel per block, and returns `(simd_lanes, scalar_lanes)` — how many
/// vehicle lanes each flavor evaluated. `use_simd` is the step-level
/// [`dispatch`] verdict; lane 0 and the ragged tail always take the
/// portable kernel.
pub(crate) fn lane_speeds(use_simd: bool, input: &KraussIn<'_>, next: &mut [f64]) -> (u64, u64) {
    let n = next.len();
    debug_assert_eq!(input.pos.len(), n);
    if n == 0 {
        return (0, 0);
    }
    #[cfg(target_arch = "x86_64")]
    if use_simd && n > 1 + BLOCK && x86::available() {
        // Lane 0 has no leader — scalar. Vector blocks start at lane 1 so
        // the `i - 1` leader loads are always in bounds.
        next[0] = lane_speed_scalar(input, 0);
        let mut i = 1usize;
        while i + BLOCK <= n {
            // SAFETY: `x86::available()` verified AVX2 on this host and
            // `i + BLOCK <= n` with `i >= 1` keeps every load (including
            // the leader loads at `i - 1`) inside the equal-length lanes.
            unsafe { x86::lane_speed_block(input, i, next) };
            i += BLOCK;
        }
        let simd_lanes = (i - 1) as u64;
        for (j, out) in next.iter_mut().enumerate().skip(i) {
            *out = lane_speed_scalar(input, j);
        }
        return (simd_lanes, (n - i + 1) as u64);
    }
    for (i, out) in next.iter_mut().enumerate() {
        *out = lane_speed_scalar(input, i);
    }
    (0, n as u64)
}

/// Position integration lane pass: `pos[i] = pos[i] + next[i] · dt` — the
/// exact expression of `v.position += v.speed * dt`. Used when no detector
/// or stop-sign bookkeeping needs the per-vehicle old position; the AVX2
/// flavor is `vmulpd` + `vaddpd` with a broadcast `dt`, bit-identical to
/// scalar.
pub(crate) fn integrate(use_simd: bool, pos: &mut [f64], next: &[f64], dt: f64) {
    let n = pos.len();
    debug_assert_eq!(next.len(), n);
    #[cfg(target_arch = "x86_64")]
    if use_simd && n >= BLOCK && x86::available() {
        let mut i = 0usize;
        while i + BLOCK <= n {
            // SAFETY: AVX2 verified; `i + BLOCK <= n` bounds the loads and
            // the store within the equal-length lanes.
            unsafe { x86::integrate_block(pos, next, dt, i) };
            i += BLOCK;
        }
        for j in i..n {
            pos[j] += next[j] * dt;
        }
        return;
    }
    for i in 0..n {
        pos[i] += next[i] * dt;
    }
}

/// AVX2 kernels, selected at runtime.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{KraussIn, BLOCK};
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_sqrt_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd,
    };

    /// One-time (cached by std) AVX2 probe.
    #[inline]
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// One block of [`BLOCK`] Krauss lanes starting at `i >= 1`:
    /// `vmulpd`/`vaddpd`/`vsubpd`/`vsqrtpd` only — no FMA — evaluating the
    /// scalar lane expressions verbatim, so every lane carries the exact
    /// bits of [`super::lane_speed_scalar`]. Negation of `bt` is a sign-bit
    /// XOR (exact); `vsqrtpd` is IEEE correctly rounded and therefore
    /// matches `f64::sqrt` bit-for-bit; the `min`/`max` folds see no NaN
    /// and no `-0.0` (module doc), so operand-order tie-breaking is
    /// unobservable.
    ///
    /// # Safety
    ///
    /// Requires AVX2, `1 <= i` and `i + BLOCK <= n` for the common length
    /// `n` of all lanes in `input` and of `next`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_speed_block(input: &KraussIn<'_>, i: usize, next: &mut [f64]) {
        debug_assert!(i >= 1 && i + BLOCK <= next.len());
        let zero = _mm256_set1_pd(0.0);
        let sign = _mm256_set1_pd(-0.0);
        let pos = _mm256_loadu_pd(input.pos.as_ptr().add(i));
        let spd = _mm256_loadu_pd(input.spd.as_ptr().add(i));
        let lead_pos = _mm256_loadu_pd(input.pos.as_ptr().add(i - 1));
        let lead_len = _mm256_loadu_pd(input.length.as_ptr().add(i - 1));
        let lead_spd = _mm256_loadu_pd(input.spd.as_ptr().add(i - 1));
        let min_gap = _mm256_loadu_pd(input.min_gap.as_ptr().add(i));
        let accel_dt = _mm256_loadu_pd(input.accel_dt.as_ptr().add(i));
        let bt = _mm256_loadu_pd(input.bt.as_ptr().add(i));
        let btsq = _mm256_loadu_pd(input.btsq.as_ptr().add(i));
        let twob = _mm256_loadu_pd(input.twob.as_ptr().add(i));
        let free = _mm256_loadu_pd(input.free.as_ptr().add(i));
        let stop_gap = _mm256_loadu_pd(input.stop_gap.as_ptr().add(i));

        // desired = min(free, spd + accel_dt)
        let desired = _mm256_min_pd(free, _mm256_add_pd(spd, accel_dt));
        let neg_bt = _mm256_xor_pd(bt, sign);

        // safe_lead = max(-bt + sqrt((btsq + vl²) + twob·max(g, 0)), 0)
        let g = _mm256_max_pd(
            _mm256_sub_pd(
                _mm256_sub_pd(_mm256_sub_pd(lead_pos, lead_len), pos),
                min_gap,
            ),
            zero,
        );
        let vl2 = _mm256_mul_pd(lead_spd, lead_spd);
        let rad_lead = _mm256_add_pd(_mm256_add_pd(btsq, vl2), _mm256_mul_pd(twob, g));
        let safe_lead = _mm256_max_pd(_mm256_add_pd(neg_bt, _mm256_sqrt_pd(rad_lead)), zero);

        // safe_stop = max(-bt + sqrt(btsq + twob·max(stop_gap, 0)), 0)
        let gs = _mm256_max_pd(stop_gap, zero);
        let rad_stop = _mm256_add_pd(btsq, _mm256_mul_pd(twob, gs));
        let safe_stop = _mm256_max_pd(_mm256_add_pd(neg_bt, _mm256_sqrt_pd(rad_stop)), zero);

        let out = _mm256_max_pd(
            _mm256_min_pd(_mm256_min_pd(desired, safe_lead), safe_stop),
            zero,
        );
        _mm256_storeu_pd(next.as_mut_ptr().add(i), out);
    }

    /// One block of the integration pass: `pos += next · dt`, `vmulpd` +
    /// `vaddpd`, no FMA.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `i + BLOCK <= pos.len() == next.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn integrate_block(pos: &mut [f64], next: &[f64], dt: f64, i: usize) {
        debug_assert!(i + BLOCK <= pos.len());
        let vdt = _mm256_set1_pd(dt);
        let p = _mm256_loadu_pd(pos.as_ptr().add(i));
        let v = _mm256_loadu_pd(next.as_ptr().add(i));
        let out = _mm256_add_pd(p, _mm256_mul_pd(v, vdt));
        _mm256_storeu_pd(pos.as_mut_ptr().add(i), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KraussParams;
    use velopt_common::rng::SplitMix64;
    use velopt_common::units::{Meters, MetersPerSecond};

    /// Builds awkward but realistic lanes: mixed classes, tight and huge
    /// gaps, stopped and fast leaders, `+∞` stop sentinels and stop lines
    /// exactly at the bumper.
    struct Fixture {
        pos: Vec<f64>,
        spd: Vec<f64>,
        length: Vec<f64>,
        min_gap: Vec<f64>,
        accel_dt: Vec<f64>,
        bt: Vec<f64>,
        btsq: Vec<f64>,
        twob: Vec<f64>,
        free: Vec<f64>,
        stop_gap: Vec<f64>,
        params: Vec<KraussParams>,
    }

    fn fixture(n: usize, seed: u64) -> Fixture {
        let dt = 0.1;
        let classes = [
            KraussParams::passenger(),
            KraussParams::truck(),
            KraussParams::ego(),
        ];
        let mut rng = SplitMix64::new(seed);
        let mut f = Fixture {
            pos: Vec::new(),
            spd: Vec::new(),
            length: Vec::new(),
            min_gap: Vec::new(),
            accel_dt: Vec::new(),
            bt: Vec::new(),
            btsq: Vec::new(),
            twob: Vec::new(),
            free: Vec::new(),
            stop_gap: Vec::new(),
            params: Vec::new(),
        };
        let mut front = 5000.0;
        for i in 0..n {
            let p = classes[(rng.next_u64() % 3) as usize];
            front -= p.length.value() + rng.uniform(0.0, 60.0);
            let b = p.decel.value();
            let tau = p.reaction.value();
            f.pos.push(front);
            f.spd.push(rng.uniform(0.0, 20.0));
            f.length.push(p.length.value());
            f.min_gap.push(p.min_gap.value());
            f.accel_dt.push(p.accel.value() * dt);
            f.bt.push(b * tau);
            f.btsq.push(b * b * tau * tau);
            f.twob.push(2.0 * b);
            f.free.push(if i % 7 == 0 {
                0.0
            } else {
                rng.uniform(5.0, 22.0)
            });
            f.stop_gap.push(match i % 5 {
                0 => f64::INFINITY,
                1 => 0.0, // bumper exactly on the stop line
                _ => rng.uniform(0.5, 300.0),
            });
            f.params.push(p);
        }
        f
    }

    fn input(f: &Fixture) -> KraussIn<'_> {
        KraussIn {
            pos: &f.pos,
            spd: &f.spd,
            length: &f.length,
            min_gap: &f.min_gap,
            accel_dt: &f.accel_dt,
            bt: &f.bt,
            btsq: &f.btsq,
            twob: &f.twob,
            free: &f.free,
            stop_gap: &f.stop_gap,
        }
    }

    /// The scalar lane kernel must reproduce `KraussParams::safe_speed`
    /// bit-for-bit: the lane expression with derived parameters is the same
    /// IEEE operation sequence.
    #[test]
    fn lane_matches_safe_speed_bitwise() {
        let f = fixture(64, 0x5AFE);
        let inp = input(&f);
        for i in 0..f.pos.len() {
            let p = &f.params[i];
            // Reference: the historical per-vehicle fold.
            let vacc = f.spd[i] + p.accel.value() * 0.1;
            let mut want = f.free[i].min(vacc);
            if i > 0 {
                let lead_rear = f.pos[i - 1] - f.length[i - 1];
                let gap = Meters::new(lead_rear - f.pos[i] - f.min_gap[i]);
                want = want.min(
                    p.safe_speed(gap, MetersPerSecond::new(f.spd[i - 1]))
                        .value(),
                );
            }
            if f.stop_gap[i].is_finite() {
                want = want.min(
                    p.safe_speed(Meters::new(f.stop_gap[i]), MetersPerSecond::ZERO)
                        .value(),
                );
            }
            let want = want.max(0.0);
            let got = lane_speed_scalar(&inp, i);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "lane {i} diverged from safe_speed: {got} vs {want}"
            );
        }
    }

    /// The AVX2 kernel must agree with the scalar kernel bit-for-bit on
    /// every lane, across sizes that exercise lane 0, full blocks, and
    /// ragged tails.
    #[test]
    fn avx2_lanes_match_scalar_bitwise() {
        for n in [1usize, 2, 5, 6, 7, 8, 9, 31, 64, 129] {
            let f = fixture(n, 0xB17 ^ n as u64);
            let inp = input(&f);
            let mut scalar = vec![0.0; n];
            let (s0, s1) = lane_speeds(false, &inp, &mut scalar);
            assert_eq!(s0, 0);
            assert_eq!(s1, n as u64);
            let mut auto = vec![0.0; n];
            let (v0, v1) = lane_speeds(dispatch(true), &inp, &mut auto);
            assert_eq!(v0 + v1, n as u64, "every lane counted exactly once");
            for i in 0..n {
                assert_eq!(
                    auto[i].to_bits(),
                    scalar[i].to_bits(),
                    "lane {i}/{n} diverged (simd lanes: {v0})"
                );
            }
        }
    }

    /// Short populations can never enter the AVX2 kernel, even when
    /// dispatch allows it — the ragged edge takes the scalar path.
    #[test]
    fn ragged_edge_takes_the_scalar_path() {
        let f = fixture(BLOCK + 1, 3);
        let mut next = vec![0.0; BLOCK + 1];
        let (simd, scalar) = lane_speeds(true, &input(&f), &mut next);
        assert_eq!(simd, 0, "n <= 1 + BLOCK stays scalar");
        assert_eq!(scalar, (BLOCK + 1) as u64);
    }

    /// A `simd = false` config verdict forces the portable kernels
    /// regardless of host capability, and counts no SIMD lanes.
    #[test]
    fn forced_scalar_dispatch_never_reports_simd() {
        assert!(!dispatch(false));
        let f = fixture(40, 9);
        let mut next = vec![0.0; 40];
        let (simd, scalar) = lane_speeds(false, &input(&f), &mut next);
        assert_eq!(simd, 0);
        assert_eq!(scalar, 40);
    }

    /// The vectorized integration pass is bit-identical to `pos += v·dt`.
    #[test]
    fn integration_matches_scalar_bitwise() {
        for n in [1usize, 3, 4, 5, 16, 33] {
            let mut rng = SplitMix64::new(n as u64);
            let pos: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 4000.0)).collect();
            let next: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 25.0)).collect();
            let mut scalar = pos.clone();
            integrate(false, &mut scalar, &next, 0.1);
            let mut auto = pos.clone();
            integrate(dispatch(true), &mut auto, &next, 0.1);
            for i in 0..n {
                assert_eq!(auto[i].to_bits(), scalar[i].to_bits(), "pos {i}/{n}");
            }
        }
    }
}
