//! Structure-of-arrays vehicle state and pooled step scratch.
//!
//! The hot per-vehicle state of a [`Simulation`](crate::Simulation) lives in
//! [`Lanes`] — contiguous `f64` lanes kept in index lockstep with the cold
//! AoS `Vec<Vehicle>` (id, kind, turn decision, served-sign mask, command
//! metadata). The lane layout is what lets the step engine evaluate the
//! Krauss rule as AVX2 blocks ([`crate::kernel`]) and integrate positions
//! with one vectorized pass. Derived parameter lanes (`bt`, `btsq`, `twob`,
//! `accel_dt`, `sigma_accel_dt`) are computed once at insertion with the
//! exact associations of [`KraussParams::safe_speed`]
//! (crate::KraussParams::safe_speed), so the kernels never touch the AoS.
//!
//! [`StepArena`] pools the per-tick scratch (`free`, `stop_gap`, `next`,
//! signal `red` flags) that the historical step loop re-allocated every
//! tick; once warm, `Simulation::step` performs zero steady-state heap
//! allocations, which [`StepMetrics::arena_grows`] lets the bench suite pin.

use serde::{Deserialize, Serialize};

use crate::config::FollowingModel;
use crate::vehicle::{Vehicle, VehicleKind};

/// Scalar post-kernel pass: nothing to do (plain Krauss, no dawdle).
pub(crate) const PASS_PLAIN: u8 = 0;
/// Scalar post-kernel pass: Krauss dawdle draw (background, `σ > 0`).
pub(crate) const PASS_DAWDLE: u8 = 1;
/// Scalar post-kernel pass: full IDM evaluation replaces the Krauss lane.
pub(crate) const PASS_IDM: u8 = 2;

/// The hot vehicle state as parallel lanes, index-lockstep with the AoS
/// vehicle list (front-most first). Positions/speeds here are the source of
/// truth during a step; they are written back to the AoS before removal,
/// injection, and observability run.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lanes {
    /// Front-bumper positions.
    pub pos: Vec<f64>,
    /// Speeds.
    pub spd: Vec<f64>,
    /// Vehicle lengths.
    pub length: Vec<f64>,
    /// Standstill gaps.
    pub min_gap: Vec<f64>,
    /// `accel · dt`.
    pub accel_dt: Vec<f64>,
    /// `b · τ`.
    pub bt: Vec<f64>,
    /// `b · b · τ · τ` (left-associated, matching `safe_speed`).
    pub btsq: Vec<f64>,
    /// `2 · b`.
    pub twob: Vec<f64>,
    /// Desired free-flow speed.
    pub desired: Vec<f64>,
    /// Commanded-speed cap (`+∞` when no TraCI command is active).
    pub cmd: Vec<f64>,
    /// `σ · accel · dt` (left-associated dawdle magnitude).
    pub sigma_accel_dt: Vec<f64>,
    /// Which scalar post-kernel pass the vehicle needs ([`PASS_PLAIN`],
    /// [`PASS_DAWDLE`], [`PASS_IDM`]).
    pub pass: Vec<u8>,
}

impl Lanes {
    pub(crate) fn len(&self) -> usize {
        self.pos.len()
    }

    /// Inserts the lane image of `v` at `idx`, shifting later lanes.
    pub(crate) fn insert(&mut self, idx: usize, v: &Vehicle, dt: f64) {
        let p = &v.params;
        let b = p.decel.value();
        let tau = p.reaction.value();
        let pass = match p.model {
            FollowingModel::Idm => PASS_IDM,
            FollowingModel::Krauss if v.kind == VehicleKind::Background && p.sigma > 0.0 => {
                PASS_DAWDLE
            }
            FollowingModel::Krauss => PASS_PLAIN,
        };
        self.pos.insert(idx, v.position.value());
        self.spd.insert(idx, v.speed.value());
        self.length.insert(idx, p.length.value());
        self.min_gap.insert(idx, p.min_gap.value());
        self.accel_dt.insert(idx, p.accel.value() * dt);
        self.bt.insert(idx, b * tau);
        self.btsq.insert(idx, b * b * tau * tau);
        self.twob.insert(idx, 2.0 * b);
        self.desired.insert(idx, p.desired_speed.value());
        self.cmd
            .insert(idx, v.commanded.map_or(f64::INFINITY, |c| c.value()));
        self.sigma_accel_dt
            .insert(idx, p.sigma * p.accel.value() * dt);
        self.pass.insert(idx, pass);
    }

    /// Copies lane `src` over lane `dst` (the compaction move; `src > dst`).
    pub(crate) fn copy(&mut self, src: usize, dst: usize) {
        self.pos[dst] = self.pos[src];
        self.spd[dst] = self.spd[src];
        self.length[dst] = self.length[src];
        self.min_gap[dst] = self.min_gap[src];
        self.accel_dt[dst] = self.accel_dt[src];
        self.bt[dst] = self.bt[src];
        self.btsq[dst] = self.btsq[src];
        self.twob[dst] = self.twob[src];
        self.desired[dst] = self.desired[src];
        self.cmd[dst] = self.cmd[src];
        self.sigma_accel_dt[dst] = self.sigma_accel_dt[src];
        self.pass[dst] = self.pass[src];
    }

    /// Truncates every lane to `len` (the compaction tail drop).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.pos.truncate(len);
        self.spd.truncate(len);
        self.length.truncate(len);
        self.min_gap.truncate(len);
        self.accel_dt.truncate(len);
        self.bt.truncate(len);
        self.btsq.truncate(len);
        self.twob.truncate(len);
        self.desired.truncate(len);
        self.cmd.truncate(len);
        self.sigma_accel_dt.truncate(len);
        self.pass.truncate(len);
    }
}

/// Pooled per-tick scratch. Grows to the high-water vehicle/signal count
/// once, then every later tick reuses the capacity.
#[derive(Debug, Clone, Default)]
pub(crate) struct StepArena {
    /// Free-flow target per vehicle (desired ∧ limit ∧ command).
    pub free: Vec<f64>,
    /// Binding red-light/unserved-sign gap per vehicle (`+∞` = none).
    pub stop_gap: Vec<f64>,
    /// Next-step speed per vehicle (the kernel output).
    pub next: Vec<f64>,
    /// Per-light red flag for the current tick.
    pub red: Vec<bool>,
}

impl StepArena {
    /// Whether sizing for `vehicles`/`lights` would have to allocate.
    pub(crate) fn would_grow(&self, vehicles: usize, lights: usize) -> bool {
        self.free.capacity() < vehicles
            || self.stop_gap.capacity() < vehicles
            || self.next.capacity() < vehicles
            || self.red.capacity() < lights
    }
}

/// Cumulative step-engine work counters.
///
/// The SIMD/scalar lane split is *dispatch-dependent* (host features, the
/// `VELOPT_MICROSIM_SIMD` override, [`SimConfig::simd`](crate::SimConfig)),
/// so these counters are deliberately kept out of
/// [`NetworkStats`](crate::NetworkStats) and the network state hash — a
/// forced-scalar run must stay bit-identical to an auto-dispatch run on
/// every simulated observable. The *total* lane count
/// ([`StepMetrics::total_lanes`]) is dispatch-invariant and is what the
/// bench suite's work gate pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Vehicle lanes evaluated by the AVX2 Krauss kernel.
    pub simd_lanes: u64,
    /// Vehicle lanes evaluated by the portable Krauss kernel (forced-scalar
    /// runs, lane 0, ragged tails, sub-block populations).
    pub scalar_lanes: u64,
    /// Cursor advances across the position-sorted light/sign/detector
    /// sweeps (total sweep work; O(V + K) per tick by construction).
    pub sweep_advances: u64,
    /// Stop signs examined by the windowed serving scan (only near-stopped
    /// vehicles ever open a window).
    pub sign_window_checks: u64,
    /// Steps that had to grow the pooled scratch (capacity misses; ~0 in
    /// steady state — the bench suite's zero-allocation pin).
    pub arena_grows: u64,
    /// Steps served entirely from pooled capacity.
    pub arena_reuses: u64,
}

impl StepMetrics {
    /// Total vehicle lanes evaluated by either kernel flavor. Equals the
    /// number of vehicle-steps executed, regardless of dispatch.
    pub fn total_lanes(&self) -> u64 {
        self.simd_lanes + self.scalar_lanes
    }

    /// Folds another counter set into this one (corridor-order network
    /// aggregation).
    pub fn merge(&mut self, other: StepMetrics) {
        self.simd_lanes += other.simd_lanes;
        self.scalar_lanes += other.scalar_lanes;
        self.sweep_advances += other.sweep_advances;
        self.sign_window_checks += other.sign_window_checks;
        self.arena_grows += other.arena_grows;
        self.arena_reuses += other.arena_reuses;
    }
}
