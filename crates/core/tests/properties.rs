//! Property-based tests: every DP output satisfies the Eq. 7 constraints.

use proptest::prelude::*;
use velopt_common::units::{KilometersPerHour, Meters, Seconds};
use velopt_core::dp::{DpConfig, DpOptimizer, SignalConstraint};
use velopt_core::profiles::{DriverProfile, DrivingStyle};
use velopt_ev_energy::{EnergyModel, VehicleParams};
use velopt_queue::TimeWindow;
use velopt_road::{Road, RoadBuilder};

fn optimizer() -> DpOptimizer {
    DpOptimizer::new(
        EnergyModel::new(VehicleParams::spark_ev()),
        DpConfig::default(),
    )
    .unwrap()
}

fn road_with(length: f64, sign_at: Option<f64>) -> Road {
    let mut b = RoadBuilder::new(Meters::new(length));
    b.default_limits(
        KilometersPerHour::new(40.0).to_meters_per_second(),
        KilometersPerHour::new(70.0).to_meters_per_second(),
    );
    if let Some(p) = sign_at {
        b.stop_sign(Meters::new(p));
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Eq. 7 invariants on arbitrary road lengths with an optional stop
    /// sign: endpoint stops, acceleration bounds, speed limits, monotone
    /// time.
    #[test]
    fn dp_profile_satisfies_eq7(
        length in 600.0f64..2500.0,
        sign_frac in prop::option::of(0.25f64..0.75),
    ) {
        let road = road_with(length, sign_frac.map(|f| (f * length).round()));
        let profile = optimizer().optimize(&road, &[]).unwrap();
        prop_assert_eq!(profile.window_violations, 0);
        // 7c/7d: rest at source, destination (and the sign's station).
        prop_assert_eq!(profile.speeds[0].value(), 0.0);
        prop_assert_eq!(profile.speeds.last().unwrap().value(), 0.0);
        // 7a: never above the posted limit.
        for (i, v) in profile.speeds.iter().enumerate() {
            let (_, hi) = road.speed_limits_at(profile.stations[i]);
            prop_assert!(v.value() <= hi.value() + 1e-9);
        }
        // 7b: acceleration within [-1.5, 2.5] on every segment.
        for i in 1..profile.stations.len() {
            let ds = (profile.stations[i] - profile.stations[i - 1]).value();
            let a = (profile.speeds[i].value().powi(2)
                - profile.speeds[i - 1].value().powi(2)) / (2.0 * ds);
            prop_assert!((-1.5 - 1e-6..=2.5 + 1e-6).contains(&a), "a = {a}");
        }
        // Eq. 10: arrival times strictly increase.
        for w in profile.times.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// Reachable windows are always hit exactly (violations = 0) and the
    /// reported arrival admits the constraint.
    #[test]
    fn reachable_windows_are_hit(
        length in 800.0f64..2000.0,
        frac in 0.3f64..0.7,
        delay in 0.0f64..10.0,
        width in 6.0f64..20.0,
    ) {
        let road = road_with(length, None);
        let opt = optimizer();
        let pos = Meters::new((frac * length / 20.0).round() * 20.0);
        let free = opt.optimize(&road, &[]).unwrap();
        let t0 = free.arrival_time_at(pos) + Seconds::new(delay);
        let constraint = SignalConstraint {
            position: pos,
            windows: vec![TimeWindow { start: t0, end: t0 + Seconds::new(width) }],
        };
        let profile = opt.optimize(&road, std::slice::from_ref(&constraint)).unwrap();
        prop_assert_eq!(profile.window_violations, 0);
        prop_assert!(constraint.admits(profile.arrival_time_at(pos)));
    }

    /// The exported time series always reproduces the road length and ends
    /// at rest.
    #[test]
    fn time_series_export_consistent(length in 600.0f64..1800.0) {
        let road = road_with(length, None);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let series = profile.to_time_series(Seconds::new(0.2)).unwrap();
        let dist = series.integrate();
        prop_assert!((dist - length).abs() < 0.05 * length + 25.0,
            "distance {dist} vs {length}");
        prop_assert!(series.samples().last().unwrap() < &1.0);
        prop_assert!(series.min_value() >= 0.0);
    }

    /// Driver profiles never exceed limits and always finish, for arbitrary
    /// corridor lengths.
    #[test]
    fn driver_profiles_always_finish(
        length in 500.0f64..2000.0,
        style_fast in any::<bool>(),
    ) {
        let road = road_with(length, Some((length / 2.0).round()));
        let style = if style_fast { DrivingStyle::Fast } else { DrivingStyle::Mild };
        let p = DriverProfile::generate(&road, style, Seconds::new(0.2)).unwrap();
        prop_assert!(p.speed.max_value() <= road.max_speed_limit().value() + 0.5);
        let end = *p.position.samples().last().unwrap();
        prop_assert!((end - length).abs() < 1.0);
        prop_assert!(p.trip_time.value() > 0.0);
    }
}

/// A corridor with a random piecewise-linear grade profile, so the
/// transition memo sees many distinct `(length, grade)` classes as well
/// as repeats.
fn graded_road(length: f64, grades: &[f64], sign_frac: Option<f64>) -> Road {
    let mut b = RoadBuilder::new(Meters::new(length));
    b.default_limits(
        KilometersPerHour::new(40.0).to_meters_per_second(),
        KilometersPerHour::new(70.0).to_meters_per_second(),
    );
    let n = grades.len();
    for (i, &g) in grades.iter().enumerate() {
        b.grade_knot(Meters::new(length * i as f64 / (n - 1) as f64), g);
    }
    if let Some(f) = sign_frac {
        b.stop_sign(Meters::new((f * length / 20.0).round() * 20.0));
    }
    b.build().unwrap()
}

mod memo_equivalence {
    use super::*;
    use velopt_core::dp::{SolverArena, StartState, TimeHandling};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole's exactness contract: the memoized solver is
        /// **bit-identical** to the direct (per-solve table) solver on
        /// random graded corridors, for 1, 2, and 4 threads, in both time
        /// handlings — same trajectory bits, same work counters.
        #[test]
        fn memoized_dp_is_bit_identical_to_direct(
            length in 700.0f64..1600.0,
            g1 in -6.0f64..6.0,
            g2 in -6.0f64..6.0,
            g3 in -6.0f64..6.0,
            sign_frac in prop::option::of(0.3f64..0.7),
            delay in 0.0f64..8.0,
            greedy in any::<bool>(),
        ) {
            let road = graded_road(length, &[0.0, g1, g2, g3], sign_frac);
            let time_handling = if greedy {
                TimeHandling::Greedy
            } else {
                TimeHandling::Exact
            };
            let solve = |memo: bool, threads: usize, signals: &[SignalConstraint]| {
                let opt = DpOptimizer::new(
                    EnergyModel::new(VehicleParams::spark_ev()),
                    DpConfig { memo, threads, time_handling, ..DpConfig::default() },
                )
                .unwrap();
                let mut arena = SolverArena::new();
                opt.optimize_from_with(&road, signals, StartState::default(), &mut arena)
                    .unwrap()
            };
            // A reachable window mid-corridor keeps the time machinery in
            // play without making the problem infeasible.
            let free = solve(false, 1, &[]);
            let pos = Meters::new((0.5 * length / 20.0).round() * 20.0);
            let t0 = free.arrival_time_at(pos) + Seconds::new(delay);
            let constraint = SignalConstraint {
                position: pos,
                windows: vec![TimeWindow { start: t0, end: t0 + Seconds::new(10.0) }],
            };
            let signals = std::slice::from_ref(&constraint);

            let reference = solve(false, 1, signals);
            for threads in [1usize, 2, 4] {
                for memo in [true, false] {
                    let got = solve(memo, threads, signals);
                    // Trajectory: bit-for-bit, not approximately.
                    prop_assert_eq!(&got, &reference);
                    for i in 0..got.speeds.len() {
                        prop_assert_eq!(
                            got.speeds[i].value().to_bits(),
                            reference.speeds[i].value().to_bits()
                        );
                        prop_assert_eq!(
                            got.times[i].value().to_bits(),
                            reference.times[i].value().to_bits()
                        );
                    }
                    prop_assert_eq!(
                        got.total_energy.value().to_bits(),
                        reference.total_energy.value().to_bits()
                    );
                    // Work counters: thread- and memo-invariant.
                    prop_assert_eq!(
                        got.metrics.states_expanded,
                        reference.metrics.states_expanded
                    );
                    prop_assert_eq!(
                        got.metrics.states_pruned,
                        reference.metrics.states_pruned
                    );
                    prop_assert_eq!(
                        got.metrics.rows_skipped,
                        reference.metrics.rows_skipped
                    );
                    // The memo knob changes only where tables come from.
                    if memo {
                        prop_assert!(got.metrics.memo_misses > 0);
                    } else {
                        prop_assert_eq!(got.metrics.memo_hits, 0);
                    }
                }
            }
        }
    }
}

mod simd_and_repair_equivalence {
    use super::*;
    use velopt_core::dp::{SolverArena, StartState, TimeHandling};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Tentpole #1 contract: the AVX2 relax microkernels never move a
        /// bit relative to the portable scalar kernel — random graded
        /// corridors, a random reachable window, 1/2/4 threads, both time
        /// handlings — and the search-space counters are
        /// dispatch-invariant.
        #[test]
        fn simd_dp_is_bit_identical_to_scalar(
            length in 700.0f64..1500.0,
            g1 in -6.0f64..6.0,
            g2 in -6.0f64..6.0,
            sign_frac in prop::option::of(0.3f64..0.7),
            delay in 0.0f64..8.0,
            greedy in any::<bool>(),
        ) {
            let road = graded_road(length, &[0.0, g1, g2], sign_frac);
            let time_handling = if greedy {
                TimeHandling::Greedy
            } else {
                TimeHandling::Exact
            };
            let solve = |simd: bool, threads: usize, signals: &[SignalConstraint]| {
                DpOptimizer::new(
                    EnergyModel::new(VehicleParams::spark_ev()),
                    DpConfig { simd, threads, time_handling, ..DpConfig::default() },
                )
                .unwrap()
                .optimize(&road, signals)
                .unwrap()
            };
            let free = solve(false, 1, &[]);
            let pos = Meters::new((0.5 * length / 20.0).round() * 20.0);
            let t0 = free.arrival_time_at(pos) + Seconds::new(delay);
            let constraint = SignalConstraint {
                position: pos,
                windows: vec![TimeWindow { start: t0, end: t0 + Seconds::new(10.0) }],
            };
            let signals = std::slice::from_ref(&constraint);

            let reference = solve(false, 1, signals);
            for threads in [1usize, 2, 4] {
                let vectorized = solve(true, threads, signals);
                let scalar = solve(false, threads, signals);
                for got in [&vectorized, &scalar] {
                    prop_assert!(*got == reference, "profile differs from reference");
                    for i in 0..got.speeds.len() {
                        prop_assert_eq!(
                            got.speeds[i].value().to_bits(),
                            reference.speeds[i].value().to_bits()
                        );
                        prop_assert_eq!(
                            got.times[i].value().to_bits(),
                            reference.times[i].value().to_bits()
                        );
                        prop_assert_eq!(
                            got.stations[i].value().to_bits(),
                            reference.stations[i].value().to_bits()
                        );
                    }
                    prop_assert_eq!(
                        got.total_energy.value().to_bits(),
                        reference.total_energy.value().to_bits()
                    );
                    // Work counters never depend on dispatch or threads.
                    prop_assert_eq!(
                        got.metrics.states_expanded,
                        reference.metrics.states_expanded
                    );
                    prop_assert_eq!(got.metrics.states_pruned, reference.metrics.states_pruned);
                    prop_assert_eq!(got.metrics.rows_skipped, reference.metrics.rows_skipped);
                }
                // The scalar config truly ran the scalar path.
                prop_assert_eq!(scalar.metrics.simd_rows, 0);
            }
        }

        /// Sparse-reset contract: one arena reused across a *sequence* of
        /// vectorized solves — same corridor twice (dirty-log reuse),
        /// a different corridor (shape change → full refill), then the
        /// first corridor again — always matches fresh-arena scalar
        /// solves bit-for-bit. This is the cross-solve path the other
        /// tests never hit: every solve after the first resets the
        /// pooled layer stack from the previous solve's dirty log.
        #[test]
        fn arena_reuse_across_solves_is_bit_identical(
            length_a in 700.0f64..1200.0,
            length_b in 1250.0f64..1500.0,
            g1 in -6.0f64..6.0,
            g2 in -6.0f64..6.0,
            sign_frac in prop::option::of(0.3f64..0.7),
            delay in 0.0f64..8.0,
        ) {
            let road_a = graded_road(length_a, &[0.0, g1, g2], sign_frac);
            let road_b = graded_road(length_b, &[0.0, g2, g1], None);
            let opt = |simd: bool| {
                DpOptimizer::new(
                    EnergyModel::new(VehicleParams::spark_ev()),
                    DpConfig { simd, ..DpConfig::default() },
                )
                .unwrap()
            };
            let free = opt(false).optimize(&road_a, &[]).unwrap();
            let pos = Meters::new((0.5 * length_a / 20.0).round() * 20.0);
            let t0 = free.arrival_time_at(pos) + Seconds::new(delay);
            let constraint = SignalConstraint {
                position: pos,
                windows: vec![TimeWindow { start: t0, end: t0 + Seconds::new(10.0) }],
            };
            let trips: [(&Road, &[SignalConstraint]); 4] = [
                (&road_a, std::slice::from_ref(&constraint)),
                (&road_a, &[]),
                (&road_b, &[]),
                (&road_a, std::slice::from_ref(&constraint)),
            ];
            let vec_opt = opt(true);
            let scalar_opt = opt(false);
            let mut warm = SolverArena::new();
            for (road, signals) in trips {
                let got = vec_opt
                    .optimize_from_with(road, signals, StartState::default(), &mut warm)
                    .unwrap();
                // Reference: same trip through a cold arena, scalar kernels.
                let reference = scalar_opt.optimize(road, signals).unwrap();
                prop_assert!(got == reference, "warm vectorized solve differs");
                for i in 0..got.speeds.len() {
                    prop_assert_eq!(
                        got.speeds[i].value().to_bits(),
                        reference.speeds[i].value().to_bits()
                    );
                    prop_assert_eq!(
                        got.times[i].value().to_bits(),
                        reference.times[i].value().to_bits()
                    );
                }
                prop_assert_eq!(
                    got.total_energy.value().to_bits(),
                    reference.total_energy.value().to_bits()
                );
                prop_assert_eq!(got.metrics.states_expanded, reference.metrics.states_expanded);
                prop_assert_eq!(got.metrics.states_pruned, reference.metrics.states_pruned);
            }
        }

        /// Tentpole #2 contract: a warm-started window refresh (retention
        /// solve, then an incremental repair after a random window shift,
        /// then a zero-diff re-push) returns plans **bit-identical** to
        /// from-scratch solves at every step, for 1/2/4 threads.
        #[test]
        fn window_refresh_repair_matches_scratch(
            length in 700.0f64..1500.0,
            g1 in -6.0f64..6.0,
            g2 in -6.0f64..6.0,
            sign_frac in prop::option::of(0.3f64..0.7),
            frac in 0.35f64..0.75,
            delay in 0.0f64..8.0,
            width in 6.0f64..16.0,
            shift in -6.0f64..6.0,
        ) {
            let road = graded_road(length, &[0.0, g1, g2], sign_frac);
            for threads in [1usize, 2, 4] {
                let opt = DpOptimizer::new(
                    EnergyModel::new(VehicleParams::spark_ev()),
                    DpConfig { threads, ..DpConfig::default() },
                )
                .unwrap();
                let free = opt.optimize(&road, &[]).unwrap();
                let pos = Meters::new((frac * length / 20.0).round() * 20.0);
                let t0 = free.arrival_time_at(pos) + Seconds::new(delay);
                let window_at = |s: f64| SignalConstraint {
                    position: pos,
                    windows: vec![TimeWindow {
                        start: t0 + Seconds::new(s),
                        end: t0 + Seconds::new(s + width),
                    }],
                };
                let w0 = [window_at(0.0)];
                let w1 = [window_at(shift)];
                let mut arena = SolverArena::new();

                // First refresh has nothing retained: full retention solve.
                let first = opt
                    .optimize_windows_refresh(&road, &w0, StartState::default(), &mut arena)
                    .unwrap();
                prop_assert_eq!(first.metrics.repair_full_resolves, 1);
                let scratch0 = opt.optimize(&road, &w0).unwrap();
                prop_assert_eq!(&first, &scratch0);

                // Shifted windows: repaired (or re-solved) plan is
                // bit-identical to solving w1 from scratch.
                let repaired = opt
                    .optimize_windows_refresh(&road, &w1, StartState::default(), &mut arena)
                    .unwrap();
                let scratch1 = opt.optimize(&road, &w1).unwrap();
                prop_assert_eq!(&repaired, &scratch1);
                for i in 0..repaired.speeds.len() {
                    prop_assert_eq!(
                        repaired.speeds[i].value().to_bits(),
                        scratch1.speeds[i].value().to_bits()
                    );
                    prop_assert_eq!(
                        repaired.times[i].value().to_bits(),
                        scratch1.times[i].value().to_bits()
                    );
                }
                prop_assert_eq!(
                    repaired.total_energy.value().to_bits(),
                    scratch1.total_energy.value().to_bits()
                );
                // Exactly one of {repair hit, full re-solve} happened.
                prop_assert_eq!(
                    repaired.metrics.repair_hits + repaired.metrics.repair_full_resolves,
                    1
                );

                // Re-pushing identical windows is a zero-diff cache hit.
                let cached = opt
                    .optimize_windows_refresh(&road, &w1, StartState::default(), &mut arena)
                    .unwrap();
                prop_assert_eq!(cached.metrics.repair_hits, 1);
                prop_assert_eq!(cached.metrics.repair_full_resolves, 0);
                prop_assert_eq!(&cached, &scratch1);
            }
        }
    }
}

mod random_corridors {
    use super::*;
    use velopt_common::units::VehiclesPerHour;
    use velopt_core::windows::{green_only_constraints, queue_aware_constraints};
    use velopt_queue::QueueParams;
    use velopt_road::CorridorTemplate;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The optimizer produces hard-constraint-satisfying profiles on
        /// arbitrary generated corridors (grades, multiple uncoordinated
        /// lights, optional stop sign), and its reported violation count
        /// agrees with a recount from the arrival times. (Zero violations
        /// is NOT guaranteed on arbitrary geometry — a corridor can be
        /// genuinely un-threadable within the speed envelope, which is
        /// exactly why Eq. 11 is a soft penalty.)
        #[test]
        fn dp_is_robust_on_generated_corridors(seed in 0u64..500) {
            let road = CorridorTemplate::default().generate(seed).unwrap();
            let opt = optimizer();
            let constraints =
                green_only_constraints(&road, opt.config().horizon);
            let profile = opt.optimize(&road, &constraints).unwrap();
            // Hard constraints hold everywhere.
            prop_assert_eq!(profile.speeds[0].value(), 0.0);
            prop_assert_eq!(profile.speeds.last().unwrap().value(), 0.0);
            for i in 1..profile.stations.len() {
                let ds = (profile.stations[i] - profile.stations[i - 1]).value();
                let a = (profile.speeds[i].value().powi(2)
                    - profile.speeds[i - 1].value().powi(2)) / (2.0 * ds);
                prop_assert!((-1.5 - 1e-6..=2.5 + 1e-6).contains(&a));
            }
            // The reported violation count matches a recount from the
            // plan's own arrival times (up to t-bin rounding at window
            // edges, which can flip an arrival across a boundary by less
            // than one bin).
            let recount = constraints
                .iter()
                .filter(|c| !c.admits(profile.arrival_time_at(c.position)))
                .count();
            prop_assert!(
                recount.abs_diff(profile.window_violations) <= 1,
                "reported {} vs recounted {recount}",
                profile.window_violations
            );
        }

        /// Queue-aware windows on generated corridors: whenever the DP
        /// reports a violation-free plan, every arrival really lies inside
        /// its T_q window.
        #[test]
        fn queue_windows_report_is_sound(seed in 0u64..500) {
            let road = CorridorTemplate::default().generate(seed).unwrap();
            let opt = optimizer();
            let rates = vec![VehiclesPerHour::new(300.0); road.traffic_lights().len()];
            let constraints = queue_aware_constraints(
                &road,
                &rates,
                QueueParams::us25_probe(),
                opt.config().horizon,
            )
            .unwrap();
            let profile = opt.optimize(&road, &constraints).unwrap();
            if profile.window_violations == 0 {
                for c in &constraints {
                    prop_assert!(c.admits(profile.arrival_time_at(c.position)));
                }
            }
            // Queue-aware windows are subsets of greens, so the queue-aware
            // plan can never have fewer options than green-only: its
            // violation count is at least the green-only one.
            let greens = green_only_constraints(&road, opt.config().horizon);
            let green_plan = opt.optimize(&road, &greens).unwrap();
            prop_assert!(profile.window_violations >= green_plan.window_violations);
        }
    }
}
