//! Exactness of the energy-optimal router.
//!
//! The router's performance layers — admissible `emin` pruning, edge-plan
//! memoization, batched frontier evaluation, multi-threaded oracle — are
//! all claimed to be *work* optimizations only. These properties check the
//! claim the strong way: on randomized small graphs the routed answer must
//! be **bit-identical** (`f64::to_bits`, not approximate equality) to
//! exhaustive enumeration of every simple path, under every combination of
//! 1/2/4 oracle threads, lower bounds on/off, plan memo on/off, and
//! batched frontier on/off.
//!
//! The generated corridors are short (60–160 m), which makes them flat
//! (the generator only places rolling-grade knots every 500 m), so every
//! edge cost is strictly positive and the optimum is guaranteed to be a
//! simple path — enumeration is a complete reference.

use proptest::prelude::*;
use velopt_common::units::Seconds;
use velopt_core::dp::{DpConfig, DpOptimizer};
use velopt_core::route::{RouteConfig, RouteQuery, Router};
use velopt_ev_energy::{EnergyModel, VehicleParams};
use velopt_road::{CorridorTemplate, EdgeId, NodeId, RoadGraph};

fn short_template() -> CorridorTemplate {
    CorridorTemplate {
        length: (60.0, 160.0),
        lights: (0, 1),
        phase: (10.0, 20.0),
        stop_sign_probability: 0.3,
        max_grade_percent: 0.0,
        limits_kmh: (30.0, 50.0),
    }
}

fn router(threads: usize, heuristic: bool, memo: bool, batch: bool) -> Router {
    let optimizer = DpOptimizer::new(
        EnergyModel::new(VehicleParams::spark_ev()),
        DpConfig {
            horizon: Seconds::new(300.0),
            threads,
            ..DpConfig::default()
        },
    )
    .unwrap();
    Router::new(
        optimizer,
        RouteConfig {
            heuristic,
            memo,
            batch_frontier: batch,
            batch_width: 4,
            ..RouteConfig::default()
        },
    )
    .unwrap()
}

/// Builds a graph from `(from, hop, corridor-seed)` triples; `hop ≥ 1`
/// guarantees no self-loops. Corridor seeds collapse to a pool of four so
/// edges share classes and the memo layers actually engage.
fn build_graph(n: usize, edges: &[(usize, usize, u64)]) -> RoadGraph {
    let template = short_template();
    let mut g = RoadGraph::new(n).unwrap();
    for &(from, hop, seed) in edges {
        let to = (from + hop) % n;
        let road = template.generate(seed % 4).unwrap();
        g.add_edge(NodeId(from as u32), NodeId(to as u32), road)
            .unwrap();
    }
    g
}

/// Every simple (node-repetition-free) edge sequence from `origin` to
/// `dest`, by depth-first search. Parallel edges are enumerated
/// individually.
fn simple_paths(graph: &RoadGraph, origin: NodeId, dest: NodeId) -> Vec<Vec<EdgeId>> {
    fn dfs(
        graph: &RoadGraph,
        node: NodeId,
        dest: NodeId,
        visited: &mut Vec<bool>,
        path: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        if node == dest {
            out.push(path.clone());
            return;
        }
        for &eid in graph.out_edges(node) {
            let to = graph.edge(eid).to();
            if visited[to.index()] {
                continue;
            }
            visited[to.index()] = true;
            path.push(eid);
            dfs(graph, to, dest, visited, path, out);
            path.pop();
            visited[to.index()] = false;
        }
    }
    let mut visited = vec![false; graph.node_count()];
    visited[origin.index()] = true;
    let mut out = Vec::new();
    dfs(graph, origin, dest, &mut visited, &mut Vec::new(), &mut out);
    out
}

/// `(threads, heuristic, memo, batch_frontier)` — the full feature matrix
/// single-threaded, plus the defaults and an everything-off ablation at
/// higher thread counts.
const CONFIGS: &[(usize, bool, bool, bool)] = &[
    (1, true, true, true),
    (1, false, true, true),
    (1, true, false, true),
    (1, true, true, false),
    (1, false, false, true),
    (1, false, true, false),
    (1, true, false, false),
    (1, false, false, false),
    (2, true, true, true),
    (4, true, true, true),
    (2, false, false, false),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn router_is_bit_identical_to_exhaustive_enumeration(
        n in 3usize..=5,
        edges in prop::collection::vec((0usize..5, 1usize..5, any::<u64>()), 3..9),
        depart in 0.0f64..30.0,
    ) {
        let edges: Vec<_> = edges
            .into_iter()
            .map(|(f, h, s)| (f % n, 1 + h % (n - 1), s))
            .collect();
        let graph = build_graph(n, &edges);
        let origin = NodeId(0);
        let dest = NodeId(n as u32 - 1);
        let depart = Seconds::new(depart);

        // Reference: price every simple path through the same oracle and
        // route model, keep the cheapest (ties to the lexicographically
        // smallest edge sequence — the router's documented tie-break).
        let mut pricer = router(1, true, true, true);
        let mut best: Option<velopt_core::route::RoutePlan> = None;
        for path in simple_paths(&graph, origin, dest) {
            let Ok(priced) = pricer.price_path(&graph, &path, depart) else {
                continue; // infeasible at its departure bins
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    priced.cost < b.cost || (priced.cost == b.cost && priced.edges < b.edges)
                }
            };
            if better {
                best = Some(priced);
            }
        }

        let query = RouteQuery { origin, dest, depart };
        for &(threads, heuristic, memo, batch) in CONFIGS {
            let mut r = router(threads, heuristic, memo, batch);
            match (&best, r.plan(&graph, query)) {
                (Some(want), Ok(got)) => {
                    prop_assert_eq!(&got.edges, &want.edges,
                        "route mismatch under {:?}", (threads, heuristic, memo, batch));
                    prop_assert_eq!(got.cost.to_bits(), want.cost.to_bits());
                    prop_assert_eq!(
                        got.total_energy.value().to_bits(),
                        want.total_energy.value().to_bits()
                    );
                    prop_assert_eq!(got.depart, want.depart);
                    prop_assert_eq!(got.arrival.value().to_bits(), want.arrival.value().to_bits());
                    prop_assert_eq!(got.window_violations, want.window_violations);
                    prop_assert_eq!(got.stations.len(), want.stations.len());
                    for i in 0..got.stations.len() {
                        prop_assert_eq!(
                            got.stations[i].value().to_bits(),
                            want.stations[i].value().to_bits()
                        );
                        prop_assert_eq!(
                            got.speeds[i].value().to_bits(),
                            want.speeds[i].value().to_bits()
                        );
                        prop_assert_eq!(
                            got.times[i].value().to_bits(),
                            want.times[i].value().to_bits()
                        );
                    }
                }
                (None, Err(_)) => {} // agree: no feasible route
                (want, got) => prop_assert!(
                    false,
                    "feasibility disagreement under {:?}: reference {:?}, router {:?}",
                    (threads, heuristic, memo, batch),
                    want.as_ref().map(|b| &b.edges),
                    got.map(|p| p.edges)
                ),
            }
        }
    }

    #[test]
    fn repeat_queries_stay_bit_identical_as_caches_warm(
        edges in prop::collection::vec((0usize..4, 1usize..4, any::<u64>()), 4..9),
        depart in 0.0f64..20.0,
    ) {
        let graph = build_graph(4, &edges);
        let query = RouteQuery {
            origin: NodeId(0),
            dest: NodeId(3),
            depart: Seconds::new(depart),
        };
        let mut r = router(2, true, true, true);
        let first = r.plan(&graph, query);
        let second = r.plan(&graph, query);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b);
                // The warm pass must be served from the plan memo alone.
                prop_assert_eq!(b.metrics.oracle_calls, 0);
                prop_assert_eq!(b.metrics.lb_cache_misses, 0);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "feasibility changed between identical queries"),
        }
    }
}
