//! The end-to-end velocity-optimization system.
//!
//! Mirrors the paper's system design (§II): predict the per-light vehicle
//! arrival rates (fixed probe values or the SAE predictor), run the QL
//! model to obtain the queue-free windows `T_q`, and feed those windows to
//! the DP optimizer. The queue-oblivious prior DP \[2\] shares the same code
//! path with whole-green windows.

use crate::dp::{DpConfig, DpOptimizer, OptimizedProfile};
use crate::windows::{green_only_constraints, queue_aware_constraints};
use serde::{Deserialize, Serialize};
use velopt_common::units::VehiclesPerHour;
use velopt_common::{Error, Result};
use velopt_ev_energy::{EnergyModel, RegenPolicy, VehicleParams};
use velopt_queue::QueueParams;
use velopt_road::Road;
use velopt_traffic::{PredictScratch, SaePredictor};

/// Where the per-light arrival rates come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalRates {
    /// Fixed measured rates, one per traffic light (the paper's probe:
    /// 153 veh/h at the second light).
    Fixed(Vec<VehiclesPerHour>),
}

/// Configuration of the full system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The corridor to optimize over.
    pub road: Road,
    /// EV parameters for the energy model.
    pub vehicle: VehicleParams,
    /// Queue-model parameters shared by all lights (signal timing is taken
    /// from each light; the arrival rate from `rates`).
    pub queue: QueueParams,
    /// Arrival-rate source.
    pub rates: ArrivalRates,
    /// DP discretization.
    pub dp: DpConfig,
}

impl SystemConfig {
    /// The paper's US-25 experiment configuration: Spark EV, probe queue
    /// parameters, 153 veh/h at both lights (the 1 PM probe measurement).
    pub fn us25() -> Self {
        Self {
            road: Road::us25(),
            vehicle: VehicleParams::spark_ev(),
            queue: QueueParams::us25_probe(),
            rates: ArrivalRates::Fixed(vec![
                VehiclesPerHour::new(153.0),
                VehiclesPerHour::new(153.0),
            ]),
            dp: DpConfig::default(),
        }
    }

    /// The US-25 corridor under commuter-hour demand (≈800 veh/h reaching
    /// the first light; the second sees the `γ`-thinned 611 veh/h). This is
    /// the regime the Fig. 6–8 simulation comparisons run in: queues of
    /// 4–7 vehicles build each red and need 6–8 s of green to discharge, so
    /// the queue-oblivious DP visibly meets them (the Fig. 6a stop/hard
    /// deceleration) while the queue-aware plan glides through.
    pub fn us25_rush() -> Self {
        let base = Self::us25();
        Self {
            rates: ArrivalRates::Fixed(vec![
                VehiclesPerHour::new(800.0),
                VehiclesPerHour::new(800.0 * 0.7636),
            ]),
            ..base
        }
    }
}

/// Builds the physically-grounded energy model used for trips: limited
/// regeneration instead of the super-unity paper-literal form (Eq. 3
/// divides negative wheel power by `η₁·η₂`, *crediting* more charge than
/// the braking energy — fine for the Fig. 3 surface, wrong for trip
/// totals).
fn physical_model(vehicle: &VehicleParams) -> EnergyModel {
    EnergyModel::with_regen(
        vehicle.clone(),
        RegenPolicy::Limited {
            efficiency: 0.6,
            cutoff: velopt_common::units::MetersPerSecond::new(1.5),
        },
    )
}

/// The queue-aware velocity-optimization system (and its baseline).
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct VelocityOptimizationSystem {
    config: SystemConfig,
    optimizer: DpOptimizer,
    /// Reused across replans so repeated rate predictions allocate nothing.
    predict_scratch: PredictScratch,
}

impl VelocityOptimizationSystem {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the configuration is inconsistent
    /// (rate/light arity mismatch, invalid DP or queue parameters).
    pub fn new(config: SystemConfig) -> Result<Self> {
        let ArrivalRates::Fixed(rates) = &config.rates;
        if rates.len() != config.road.traffic_lights().len() {
            return Err(Error::invalid_input(format!(
                "{} arrival rates for {} lights",
                rates.len(),
                config.road.traffic_lights().len()
            )));
        }
        config.queue.validated()?;
        let optimizer = DpOptimizer::new(physical_model(&config.vehicle), config.dp)?;
        Ok(Self {
            config,
            optimizer,
            predict_scratch: PredictScratch::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The underlying DP optimizer (for mid-trip replanning and ablations).
    pub fn optimizer(&self) -> &DpOptimizer {
        &self.optimizer
    }

    /// The energy model used for planning costs and trip evaluation: the
    /// physical regeneration policy (60% recovery above 1.5 m/s) plus the
    /// vehicle's auxiliary load. The paper-literal Eq. 3 model (used for
    /// Fig. 3) is available directly via [`EnergyModel::new`].
    pub fn energy_model(&self) -> EnergyModel {
        physical_model(&self.config.vehicle)
    }

    /// The arrival rates currently in effect.
    pub fn arrival_rates(&self) -> &[VehiclesPerHour] {
        let ArrivalRates::Fixed(rates) = &self.config.rates;
        rates
    }

    /// Replaces the arrival rates with SAE predictions for the hour the
    /// trip departs: `history` holds the most recent `predictor.lags()`
    /// hourly volumes and `hour_index` the global hour of departure.
    ///
    /// # Errors
    ///
    /// Propagates predictor failures (wrong history length).
    pub fn predict_rates(
        &mut self,
        predictor: &SaePredictor,
        history: &[f64],
        hour_index: usize,
    ) -> Result<()> {
        let rate = predictor.predict_next_into(history, hour_index, &mut self.predict_scratch)?;
        let n = self.config.road.traffic_lights().len();
        self.config.rates = ArrivalRates::Fixed(vec![rate; n]);
        Ok(())
    }

    /// Runs the queue-aware optimization (the paper's method).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no kinematically-valid profile
    /// exists.
    pub fn optimize(&self) -> Result<OptimizedProfile> {
        let constraints = queue_aware_constraints(
            &self.config.road,
            self.arrival_rates(),
            self.config.queue,
            self.config.dp.horizon,
        )?;
        self.optimizer.optimize(&self.config.road, &constraints)
    }

    /// Runs the queue-oblivious baseline DP \[2\] (whole greens admissible).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no kinematically-valid profile
    /// exists.
    pub fn optimize_baseline(&self) -> Result<OptimizedProfile> {
        let constraints = green_only_constraints(&self.config.road, self.config.dp.horizon);
        self.optimizer.optimize(&self.config.road, &constraints)
    }

    /// Runs the DP with *no* signal awareness at all (pure eco-driving over
    /// distance — useful as a lower-bound ablation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no kinematically-valid profile
    /// exists.
    pub fn optimize_unconstrained(&self) -> Result<OptimizedProfile> {
        self.optimizer.optimize(&self.config.road, &[])
    }

    /// The queue-free windows `T_q` the optimizer would use, per light
    /// (exposed for diagnostics and the figure harnesses).
    ///
    /// # Errors
    ///
    /// Propagates queue-model failures.
    pub fn queue_windows(&self) -> Result<Vec<crate::dp::SignalConstraint>> {
        queue_aware_constraints(
            &self.config.road,
            self.arrival_rates(),
            self.config.queue,
            self.config.dp.horizon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::Meters;

    #[test]
    fn us25_system_builds_and_optimizes() {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        let ours = system.optimize().unwrap();
        assert_eq!(ours.window_violations, 0, "T_q windows must be hit");
        // Both light stations are passed at speed (no stop at a light).
        for light in system.config().road.traffic_lights() {
            let v = ours.speed_at_position(light.position());
            assert!(
                v.value() > 1.0,
                "ego should glide through the light at {} with v={}",
                light.position(),
                v
            );
        }
    }

    #[test]
    fn baseline_hits_greens_but_not_necessarily_queues() {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        let baseline = system.optimize_baseline().unwrap();
        assert_eq!(baseline.window_violations, 0);
        // Verify against the queue-aware windows: the baseline's arrival may
        // fall outside T_q (that is exactly the paper's criticism of it) —
        // we only require that our method's arrivals are inside.
        let ours = system.optimize().unwrap();
        let windows = system.queue_windows().unwrap();
        for w in &windows {
            let t = ours.arrival_time_at(w.position);
            assert!(w.admits(t), "ours must arrive inside T_q at {}", w.position);
        }
        // And ours costs no more than baseline evaluated on raw energy when
        // both are feasible for their own constraint sets... (their energies
        // are close; the big difference appears in simulation, Fig. 6).
        assert!(ours.total_energy.value() > 0.0);
        assert!(baseline.total_energy.value() > 0.0);
    }

    #[test]
    fn rate_arity_checked() {
        let cfg = SystemConfig {
            rates: ArrivalRates::Fixed(vec![VehiclesPerHour::new(100.0)]),
            ..SystemConfig::us25()
        };
        assert!(VelocityOptimizationSystem::new(cfg).is_err());
    }

    #[test]
    fn unconstrained_has_lowest_blended_cost() {
        // Signal constraints can only restrict the feasible set, so the
        // blended (energy + time) objective of the unconstrained run lower-
        // bounds the constrained ones. (Raw energy alone can go either way:
        // slowing down to hit a later window *saves* charge.)
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        let beta = system.config().dp.time_weight;
        let blended =
            |p: &crate::dp::OptimizedProfile| p.total_energy.value() + beta * p.trip_time.value();
        let free = system.optimize_unconstrained().unwrap();
        let ours = system.optimize().unwrap();
        let baseline = system.optimize_baseline().unwrap();
        assert_eq!(free.window_violations, 0);
        assert!(blended(&free) <= blended(&ours) + 1e-9);
        assert!(blended(&free) <= blended(&baseline) + 1e-9);
    }

    #[test]
    fn stop_sign_still_respected_with_windows() {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        let ours = system.optimize().unwrap();
        let v = ours.speed_at_position(Meters::new(480.0));
        // Nearest station to the 490 m stop sign is pinned to zero.
        let idx = ours
            .stations
            .iter()
            .position(|s| (s.value() - 480.0).abs() < 1e-6)
            .unwrap();
        assert_eq!(ours.speeds[idx].value(), 0.0);
        let _ = v;
    }
}
