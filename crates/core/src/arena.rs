//! Reusable DP layer storage.
//!
//! A replanning loop calls `optimize_from` every few simulated seconds, and
//! each call used to allocate a fresh `n_stations × n_speeds × n_bins`
//! layer stack — by far the solver's largest allocation. [`LayerPool`]
//! keeps those buffers alive between solves: a pooled buffer whose
//! capacity already covers the requested size is cleared and reused
//! instead of reallocated. The pool also counts reuse hits vs. fresh
//! allocations so [`SolverMetrics`](crate::metrics::SolverMetrics) can
//! report whether the arena is actually paying off.

/// Per-call accounting returned by [`LayerPool::take_layers`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Buffers served from existing capacity.
    pub reuse_hits: u64,
    /// Buffers that had to grow (or be created).
    pub allocations: u64,
}

/// A pool of equally-shaped scratch buffers (one per DP layer).
#[derive(Clone, Default)]
pub struct LayerPool<T> {
    buffers: Vec<Vec<T>>,
}

impl<T: Clone> LayerPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            buffers: Vec::new(),
        }
    }

    /// Returns `count` buffers of length `len`, every element reset to
    /// `fill`, reusing pooled capacity where possible.
    pub fn take_layers(
        &mut self,
        count: usize,
        len: usize,
        fill: T,
    ) -> (&mut [Vec<T>], LeaseStats) {
        let mut stats = LeaseStats::default();
        while self.buffers.len() < count {
            self.buffers.push(Vec::new());
        }
        for buf in &mut self.buffers[..count] {
            if buf.capacity() >= len {
                stats.reuse_hits += 1;
            } else {
                stats.allocations += 1;
            }
            buf.clear();
            buf.resize(len, fill.clone());
        }
        telemetry::add("arena.reuse_hits", stats.reuse_hits);
        telemetry::add("arena.allocations", stats.allocations);
        (&mut self.buffers[..count], stats)
    }

    /// Whether [`resume_layers`](Self::resume_layers) would succeed for
    /// this shape, without borrowing the buffers. Callers that choose
    /// between resuming and a full [`take_layers`](Self::take_layers)
    /// reset check this first so the decision does not hold the pool
    /// borrow.
    pub fn can_resume(&self, count: usize, len: usize) -> bool {
        self.buffers.len() >= count && self.buffers[..count].iter().all(|b| b.len() == len)
    }

    /// Returns the first `count` pooled buffers *without* resetting them,
    /// or `None` if the pool does not hold `count` buffers of exactly
    /// `len` elements. This is how incremental repair resumes the layer
    /// stack a previous solve left behind: the caller re-fills only the
    /// dirty suffix and keeps the retained prefix untouched.
    pub fn resume_layers(&mut self, count: usize, len: usize) -> Option<&mut [Vec<T>]> {
        if !self.can_resume(count, len) {
            return None;
        }
        Some(&mut self.buffers[..count])
    }
}

impl<T> std::fmt::Debug for LayerPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LayerPool({} buffers)", self.buffers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lease_allocates_second_reuses() {
        let mut pool: LayerPool<Option<u32>> = LayerPool::new();
        let (layers, stats) = pool.take_layers(3, 8, None);
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.len() == 8));
        assert_eq!(
            stats,
            LeaseStats {
                reuse_hits: 0,
                allocations: 3
            }
        );

        layers[0][0] = Some(7);
        let (layers, stats) = pool.take_layers(3, 8, None);
        assert_eq!(
            stats,
            LeaseStats {
                reuse_hits: 3,
                allocations: 0
            }
        );
        // Reused buffers come back reset.
        assert!(layers[0][0].is_none());
    }

    #[test]
    fn growth_counts_as_allocation() {
        let mut pool: LayerPool<u8> = LayerPool::new();
        let _ = pool.take_layers(2, 4, 0);
        let (_, stats) = pool.take_layers(4, 16, 0);
        assert_eq!(stats.reuse_hits, 0);
        assert_eq!(stats.allocations, 4);
        // And once grown, everything reuses.
        let (_, stats) = pool.take_layers(4, 16, 0);
        assert_eq!(stats.reuse_hits, 4);
    }

    #[test]
    fn resume_returns_unreset_buffers_only_on_shape_match() {
        let mut pool: LayerPool<Option<u32>> = LayerPool::new();
        assert!(pool.resume_layers(1, 8).is_none());
        let (layers, _) = pool.take_layers(3, 8, None);
        layers[2][5] = Some(42);
        // Matching shape: same contents, no reset.
        let resumed = pool.resume_layers(3, 8).unwrap();
        assert_eq!(resumed[2][5], Some(42));
        // Shape mismatches refuse rather than resize.
        assert!(pool.resume_layers(4, 8).is_none());
        assert!(pool.resume_layers(3, 9).is_none());
    }

    #[test]
    fn shrinking_lease_reuses_capacity() {
        let mut pool: LayerPool<u8> = LayerPool::new();
        let _ = pool.take_layers(2, 100, 0);
        let (layers, stats) = pool.take_layers(1, 10, 9);
        assert_eq!(stats.reuse_hits, 1);
        assert_eq!(layers[0].len(), 10);
        assert!(layers[0].iter().all(|&x| x == 9));
    }
}
