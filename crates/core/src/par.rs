//! Deterministic chunked parallelism for the DP relaxation.
//!
//! The solver parallelizes each layer by *target-speed row*: the layer
//! buffer is split into contiguous, disjoint `&mut` chunks (one or more
//! rows each) and every chunk is relaxed by exactly one thread. Chunk
//! boundaries depend only on the layer geometry — never on the thread
//! count or on scheduling — and within a chunk candidates are visited in
//! the same order as the sequential solver, so the layer contents (and
//! therefore the backtracked profile) are bit-identical whether the work
//! runs on one thread or sixteen. Per-chunk results (metric counters) are
//! returned in chunk order so any fold over them is deterministic too.

use std::num::NonZeroUsize;

/// Resolves a configured worker count: `0` means one worker per available
/// core, anything else is taken literally (minimum 1).
pub fn effective_threads(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// chunk may be shorter), applies `f` to each, and returns the per-chunk
/// results **in chunk order**. `f` receives the offset of its chunk's
/// first element within `data`.
///
/// With `threads > 1` chunks are spread round-robin over scoped worker
/// threads; each chunk is still a disjoint `&mut` slice processed by
/// exactly one thread, so the writes are race-free by construction and
/// the output is independent of the thread count.
///
/// # Panics
///
/// Panics if `chunk_len == 0` or a worker thread panics.
pub fn map_chunks<T, R, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| f(ci * chunk_len, chunk))
            .collect();
    }

    let workers = threads.min(n_chunks);
    // Static round-robin assignment: no runtime scheduling, so which thread
    // owns which chunk is fixed up front (only timing varies across runs).
    let mut buckets: Vec<Vec<(usize, usize, &mut [T])>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[ci % workers].push((ci, ci * chunk_len, chunk));
    }

    let mut results: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(ci, offset, chunk)| (ci, f(offset, chunk)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (ci, r) in handle.join().expect("DP worker thread panicked") {
                results[ci] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn chunk_results_are_ordered_and_complete() {
        for threads in [1, 2, 5, 16] {
            let mut data: Vec<u64> = (0..103).collect();
            let sums = map_chunks(&mut data, 10, threads, |offset, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
                (offset, chunk.iter().sum::<u64>())
            });
            assert_eq!(sums.len(), 11);
            // Offsets come back in chunk order regardless of thread count.
            assert!(sums.windows(2).all(|w| w[0].0 < w[1].0));
            let total: u64 = sums.iter().map(|(_, s)| s).sum();
            assert_eq!(total, (1..=103).sum::<u64>());
            assert_eq!(data[0], 1);
            assert_eq!(data[102], 103);
        }
    }

    #[test]
    fn identical_output_across_thread_counts() {
        let baseline = {
            let mut data = vec![0u64; 97];
            map_chunks(&mut data, 7, 1, |offset, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + k) as u64 * 3 + 1;
                }
                chunk.len()
            });
            data
        };
        for threads in [2, 3, 8] {
            let mut data = vec![0u64; 97];
            map_chunks(&mut data, 7, threads, |offset, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + k) as u64 * 3 + 1;
                }
                chunk.len()
            });
            assert_eq!(data, baseline);
        }
    }
}
