//! Lightweight solver instrumentation.
//!
//! Every [`OptimizedProfile`](crate::dp::OptimizedProfile) carries a
//! [`SolverMetrics`] describing the work the DP did to produce it: how many
//! states were relaxed, how many candidate transitions were pruned, where
//! the wall time went, and whether the layer arena was able to recycle
//! buffers from a previous solve. The cloud server forwards these over the
//! wire and the DP benchmarks print them, so a regression in pruning or
//! arena reuse is visible without a profiler.
//!
//! Metrics are *observability, not semantics*: two profiles that differ
//! only in metrics compare equal (see `OptimizedProfile`'s `PartialEq`),
//! because wall times vary run to run while the planned trajectory must
//! not.

use serde::{Deserialize, Serialize};

/// Counters and timings for one `optimize_from` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverMetrics {
    /// Candidate states written into a DP layer (relaxations that passed
    /// every feasibility filter).
    pub states_expanded: u64,
    /// Candidate transitions discarded before becoming states: outside the
    /// kinematic envelope, past the horizon, or beyond the last time bin.
    pub states_pruned: u64,
    /// Wall time building the station grid, speed masks, and windows.
    pub setup_seconds: f64,
    /// Wall time in the layer-relaxation loops (the DP itself).
    pub relax_seconds: f64,
    /// Wall time backtracking and assembling the profile.
    pub backtrack_seconds: f64,
    /// Layer buffers recycled from the arena without allocating.
    pub arena_reuse_hits: u64,
    /// Layer buffers that required a fresh allocation.
    pub arena_allocations: u64,
    /// Transition-cost tables served from the arena's memo cache.
    #[serde(default)]
    pub memo_hits: u64,
    /// Transition-cost tables that had to be built from the energy model.
    #[serde(default)]
    pub memo_misses: u64,
    /// Energy-model segment evaluations spent building cost tables. With a
    /// warm cache this is zero; without memoization it counts every
    /// per-layer lattice evaluation.
    #[serde(default)]
    pub energy_evals: u64,
    /// `(station, speed)` rows inside the speed-limit envelope that the
    /// reachability masks proved unreachable and skipped entirely.
    #[serde(default)]
    pub rows_skipped: u64,
    /// Source rows whose cost/arrival tiles went through the AVX2 relax
    /// microkernels. Unlike the state counters this depends on the host
    /// (AVX2 or not), the dispatch override and the chunk geometry, so it
    /// is observability only — never part of a bit-identity contract.
    #[serde(default)]
    pub simd_rows: u64,
    /// Source rows relaxed through the portable scalar kernel (non-AVX2
    /// hosts, forced-scalar dispatch, and bands narrower than one tile).
    #[serde(default)]
    pub scalar_rows: u64,
    /// Window refreshes answered by warm-started repair: the retained
    /// prefix layers were reused and only the dirty suffix was re-relaxed
    /// (or nothing at all, when the window diff was empty).
    #[serde(default)]
    pub repair_hits: u64,
    /// Window refreshes that fell back to a full retention sweep: no valid
    /// retained state, or the repaired terminal cost failed its
    /// certification limit.
    #[serde(default)]
    pub repair_full_resolves: u64,
    /// DP layers a successful repair did not have to re-relax.
    #[serde(default)]
    pub repair_layers_skipped: u64,
    /// Worker threads used for layer relaxation (1 = sequential).
    pub threads_used: usize,
}

impl SolverMetrics {
    /// Total wall time across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.setup_seconds + self.relax_seconds + self.backtrack_seconds
    }

    /// Fraction of considered transitions that survived into states, in
    /// `[0, 1]`; `1.0` for an empty solve.
    pub fn expansion_ratio(&self) -> f64 {
        let considered = self.states_expanded + self.states_pruned;
        if considered == 0 {
            return 1.0;
        }
        self.states_expanded as f64 / considered as f64
    }

    /// Publishes this solve's counters and phase timings to the global
    /// [`telemetry`] registry under the `dp.*` namespace. A no-op (and
    /// free) unless the crate's `telemetry` feature is enabled.
    pub fn publish(&self) {
        telemetry::add("dp.solves", 1);
        telemetry::add("dp.states_expanded", self.states_expanded);
        telemetry::add("dp.states_pruned", self.states_pruned);
        telemetry::add("dp.arena_reuse_hits", self.arena_reuse_hits);
        telemetry::add("dp.arena_allocations", self.arena_allocations);
        telemetry::add("dp.memo.hits", self.memo_hits);
        telemetry::add("dp.memo.misses", self.memo_misses);
        telemetry::add("dp.memo.energy_evals", self.energy_evals);
        telemetry::add("dp.rows_skipped", self.rows_skipped);
        telemetry::add("dp.simd.rows", self.simd_rows);
        telemetry::add("dp.simd.scalar_rows", self.scalar_rows);
        telemetry::add("dp.repair.hits", self.repair_hits);
        telemetry::add("dp.repair.full_resolves", self.repair_full_resolves);
        telemetry::add("dp.repair.layers_skipped", self.repair_layers_skipped);
        telemetry::observe("dp.setup_seconds", self.setup_seconds);
        telemetry::observe("dp.relax_seconds", self.relax_seconds);
        telemetry::observe("dp.backtrack_seconds", self.backtrack_seconds);
        telemetry::observe("dp.total_seconds", self.total_seconds());
    }

    /// Accumulates another solve's metrics into this one (counters add,
    /// times add, thread count takes the maximum). Used to aggregate a
    /// batch.
    pub fn absorb(&mut self, other: &SolverMetrics) {
        self.states_expanded += other.states_expanded;
        self.states_pruned += other.states_pruned;
        self.setup_seconds += other.setup_seconds;
        self.relax_seconds += other.relax_seconds;
        self.backtrack_seconds += other.backtrack_seconds;
        self.arena_reuse_hits += other.arena_reuse_hits;
        self.arena_allocations += other.arena_allocations;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.energy_evals += other.energy_evals;
        self.rows_skipped += other.rows_skipped;
        self.simd_rows += other.simd_rows;
        self.scalar_rows += other.scalar_rows;
        self.repair_hits += other.repair_hits;
        self.repair_full_resolves += other.repair_full_resolves;
        self.repair_layers_skipped += other.repair_layers_skipped;
        self.threads_used = self.threads_used.max(other.threads_used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = SolverMetrics {
            states_expanded: 10,
            states_pruned: 5,
            setup_seconds: 0.1,
            relax_seconds: 0.2,
            backtrack_seconds: 0.05,
            arena_reuse_hits: 1,
            arena_allocations: 2,
            memo_hits: 7,
            memo_misses: 2,
            energy_evals: 100,
            rows_skipped: 40,
            simd_rows: 8,
            scalar_rows: 3,
            repair_hits: 1,
            repair_full_resolves: 1,
            repair_layers_skipped: 50,
            threads_used: 1,
        };
        let b = SolverMetrics {
            states_expanded: 3,
            memo_hits: 5,
            rows_skipped: 2,
            simd_rows: 2,
            repair_hits: 1,
            repair_layers_skipped: 25,
            threads_used: 4,
            ..SolverMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.states_expanded, 13);
        assert_eq!(a.memo_hits, 12);
        assert_eq!(a.rows_skipped, 42);
        assert_eq!(a.simd_rows, 10);
        assert_eq!(a.scalar_rows, 3);
        assert_eq!(a.repair_hits, 2);
        assert_eq!(a.repair_full_resolves, 1);
        assert_eq!(a.repair_layers_skipped, 75);
        assert_eq!(a.threads_used, 4);
        assert!((a.total_seconds() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn expansion_ratio_bounds() {
        assert_eq!(SolverMetrics::default().expansion_ratio(), 1.0);
        let m = SolverMetrics {
            states_expanded: 1,
            states_pruned: 3,
            ..SolverMetrics::default()
        };
        assert!((m.expansion_ratio() - 0.25).abs() < 1e-12);
    }
}
