//! Synthetic human driving profiles (the Fig. 7a trace substitutes).
//!
//! The paper recorded two drives over the US-25 section: a **mild** profile
//! ("follow the minimum velocity limit and accelerate gradually") and a
//! **fast** profile ("drive fast without breaking traffic rules and
//! accelerate quickly"). The real traces are not available, so this module
//! generates their structural equivalents with a reactive driver model:
//! accelerate toward a style-dependent target speed, brake for stop signs
//! and red lights, queue at reds until green, and come to rest at the
//! destination. The substitution is documented in `DESIGN.md`.

use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Seconds};
use velopt_common::{Error, Result, TimeSeries};
use velopt_road::{Phase, Road};

/// The two recorded driving styles of §III-A-3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DrivingStyle {
    /// Gentle acceleration, tracks the minimum speed limit.
    Mild,
    /// Maximum comfortable acceleration, tracks the posted limit.
    Fast,
}

impl DrivingStyle {
    /// Acceleration used when speeding up.
    pub fn accel(self) -> MetersPerSecondSq {
        match self {
            DrivingStyle::Mild => MetersPerSecondSq::new(0.8),
            DrivingStyle::Fast => MetersPerSecondSq::new(2.5),
        }
    }

    /// Comfortable service braking.
    pub fn decel(self) -> MetersPerSecondSq {
        match self {
            DrivingStyle::Mild => MetersPerSecondSq::new(0.8),
            DrivingStyle::Fast => MetersPerSecondSq::new(1.5),
        }
    }

    /// Target cruising speed at a road position.
    ///
    /// The mild driver "follows the minimum velocity limit" loosely — real
    /// gentle drivers settle somewhat above the legal minimum (the paper's
    /// recorded mild trace, Fig. 7a, peaks well above 40 km/h); the fast
    /// driver tracks the posted limit.
    pub fn target_speed(self, road: &Road, x: Meters) -> MetersPerSecond {
        let (lo, hi) = road.speed_limits_at(x);
        match self {
            DrivingStyle::Mild => lo + (hi - lo) * 0.3,
            DrivingStyle::Fast => hi,
        }
    }

    /// Amplitude of the human speed oscillation around the target, in m/s.
    ///
    /// Real drivers cannot hold a constant speed; the recorded traces the
    /// paper shows (Fig. 7a) wobble by 1–2 m/s. Faster drivers wobble more.
    pub fn wobble_amplitude(self) -> f64 {
        match self {
            DrivingStyle::Mild => 1.0,
            DrivingStyle::Fast => 1.6,
        }
    }

    /// Period of the speed oscillation.
    pub fn wobble_period(self) -> Seconds {
        match self {
            DrivingStyle::Mild => Seconds::new(28.0),
            DrivingStyle::Fast => Seconds::new(18.0),
        }
    }
}

/// A generated human driving profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverProfile {
    /// The style that produced it.
    pub style: DrivingStyle,
    /// Speed vs time (uniform sampling).
    pub speed: TimeSeries,
    /// Position vs time (same grid).
    pub position: TimeSeries,
    /// Time to reach the destination.
    pub trip_time: Seconds,
}

impl DriverProfile {
    /// Simulates a drive over `road` departing at `t = 0`, sampled at `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for a non-positive `dt` and
    /// [`Error::Numeric`] if the drive does not finish within a generous
    /// time guard (which would indicate a deadlocked driver model).
    pub fn generate(road: &Road, style: DrivingStyle, dt: Seconds) -> Result<Self> {
        if dt.value() <= 0.0 {
            return Err(Error::invalid_input("sample step must be positive"));
        }
        let guard = Seconds::new(3600.0);
        let mut t = Seconds::ZERO;
        let mut x = Meters::ZERO;
        let mut v = MetersPerSecond::ZERO;
        let mut served_signs = vec![false; road.stop_signs().len()];
        let mut speeds = vec![0.0];
        let mut positions = vec![0.0];

        while x < road.length() {
            if t > guard {
                return Err(Error::numeric("driver model failed to finish the trip"));
            }
            // Nearest mandatory stop target ahead.
            let mut stop_at: Option<Meters> = Some(road.length());
            for (i, sign) in road.stop_signs().iter().enumerate() {
                if !served_signs[i] && sign.position > x - Meters::new(0.5) {
                    stop_at = Some(stop_at.map_or(sign.position, |s| s.min(sign.position)));
                    break;
                }
            }
            for light in road.traffic_lights() {
                if light.position() > x && light.phase_at(t) == Phase::Red {
                    stop_at = Some(stop_at.map_or(light.position(), |s| s.min(light.position())));
                    break;
                }
            }

            // Humans oscillate around their target speed; the wobble is a
            // deterministic sinusoid so profiles stay reproducible.
            let wobble = style.wobble_amplitude()
                * (std::f64::consts::TAU * t.value() / style.wobble_period().value()).sin();
            let target =
                MetersPerSecond::new((style.target_speed(road, x).value() + wobble).max(0.0))
                    .min(road.speed_limits_at(x).1);
            let b = style.decel().value();
            let mut a = if v < target {
                style.accel().value()
            } else if v.value() > target.value() + 0.2 {
                -b
            } else {
                0.0
            };

            if let Some(stop) = stop_at {
                let dist = (stop - x).value();
                if dist <= 3.0 && v.value() < 0.5 {
                    // At the stop line: hold, and serve any sign here.
                    a = 0.0;
                    v = MetersPerSecond::ZERO;
                    for (i, sign) in road.stop_signs().iter().enumerate() {
                        if !served_signs[i] && (sign.position - x).value().abs() < 3.5 {
                            served_signs[i] = true;
                        }
                    }
                } else {
                    // Brake when the comfortable stopping distance is
                    // reached, aiming to rest ~1 m before the line.
                    let stopping = v.value() * v.value() / (2.0 * b);
                    if dist <= stopping + v.value() * dt.value() + 2.0 {
                        let aim = (dist - 1.0).max(0.5);
                        a = -(v.value() * v.value() / (2.0 * aim)).min(4.5);
                    }
                }
            }

            // Arrived: resting within the terminal stop zone ends the trip.
            if (road.length() - x).value() <= 3.0 && v.value() < 0.5 {
                speeds.push(0.0);
                positions.push(road.length().value());
                t += dt;
                break;
            }

            v = MetersPerSecond::new((v.value() + a * dt.value()).max(0.0))
                // "Without breaking traffic rules": clamp to the posted
                // limit so integration overshoot never exceeds it.
                .min(road.speed_limits_at(x).1);
            x += v * dt;
            t += dt;
            speeds.push(v.value());
            positions.push(x.value().min(road.length().value()));
        }

        // Close the profile at rest on the destination.
        if let Some(last) = speeds.last_mut() {
            *last = 0.0;
        }
        let trip_time = t;
        Ok(Self {
            style,
            speed: TimeSeries::from_samples(Seconds::ZERO, dt, speeds)?,
            position: TimeSeries::from_samples(Seconds::ZERO, dt, positions)?,
            trip_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us25() -> Road {
        Road::us25()
    }

    #[test]
    fn rejects_bad_step() {
        assert!(DriverProfile::generate(&us25(), DrivingStyle::Fast, Seconds::ZERO).is_err());
    }

    #[test]
    fn fast_is_faster_than_mild() {
        let road = us25();
        let fast = DriverProfile::generate(&road, DrivingStyle::Fast, Seconds::new(0.2)).unwrap();
        let mild = DriverProfile::generate(&road, DrivingStyle::Mild, Seconds::new(0.2)).unwrap();
        assert!(
            fast.trip_time < mild.trip_time,
            "fast {} vs mild {}",
            fast.trip_time,
            mild.trip_time
        );
        assert!(fast.speed.max_value() > mild.speed.max_value());
    }

    #[test]
    fn profiles_respect_speed_limits() {
        let road = us25();
        for style in [DrivingStyle::Mild, DrivingStyle::Fast] {
            let p = DriverProfile::generate(&road, style, Seconds::new(0.2)).unwrap();
            let vmax = road.max_speed_limit().value();
            assert!(p.speed.max_value() <= vmax + 0.3, "{style:?}");
            assert!(p.speed.min_value() >= 0.0);
        }
    }

    #[test]
    fn both_styles_stop_at_the_stop_sign() {
        let road = us25();
        for style in [DrivingStyle::Mild, DrivingStyle::Fast] {
            let p = DriverProfile::generate(&road, style, Seconds::new(0.2)).unwrap();
            // Find the time interval where the driver is near the sign.
            let mut stopped_near_sign = false;
            for (i, &pos) in p.position.samples().iter().enumerate() {
                if (pos - 490.0).abs() < 6.0 && p.speed.samples()[i] < 0.3 {
                    stopped_near_sign = true;
                }
            }
            assert!(stopped_near_sign, "{style:?} must stop at the sign");
        }
    }

    #[test]
    fn profile_covers_whole_road_and_ends_at_rest() {
        let road = us25();
        let p = DriverProfile::generate(&road, DrivingStyle::Fast, Seconds::new(0.2)).unwrap();
        let end = *p.position.samples().last().unwrap();
        assert!((end - 4200.0).abs() < 1.0);
        assert_eq!(*p.speed.samples().last().unwrap(), 0.0);
        // Distance from integrating speed matches the recorded positions.
        let dist = p.speed.integrate();
        assert!((dist - 4200.0).abs() < 25.0, "integrated {dist}");
    }

    #[test]
    fn drivers_wait_for_red_lights() {
        let road = us25();
        // Both lights are red during [0, 30): a fast driver reaching the
        // first light during a red phase must hold there.
        let p = DriverProfile::generate(&road, DrivingStyle::Fast, Seconds::new(0.2)).unwrap();
        let light0 = road.traffic_lights()[0];
        let mut held = false;
        for (i, &pos) in p.position.samples().iter().enumerate() {
            let t = Seconds::new(i as f64 * 0.2);
            if (pos - light0.position().value()).abs() < 8.0
                && p.speed.samples()[i] < 0.3
                && light0.phase_at(t) == Phase::Red
            {
                held = true;
            }
        }
        // The fast driver reaches ~1800 m in roughly 100 s, which falls in
        // a red phase of the 60 s cycle (60–90 is red? 90–120 green; 100s is
        // green)... rather than assert a specific phase hit, assert that the
        // profile contains at least one full stop after the stop sign.
        let after_sign: Vec<usize> = p
            .position
            .samples()
            .iter()
            .enumerate()
            .filter(|(_, &pos)| pos > 600.0 && pos < 4100.0)
            .map(|(i, _)| i)
            .collect();
        let stops = after_sign
            .iter()
            .filter(|&&i| p.speed.samples()[i] < 0.2)
            .count();
        assert!(
            held || stops > 0,
            "the driver should encounter at least one red somewhere"
        );
    }
}
