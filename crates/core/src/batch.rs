//! Batch planning: many independent trips through one optimizer.
//!
//! The vehicular cloud receives bursts of uploads (every EV entering the
//! corridor asks for a plan), and each plan is independent of the others —
//! an embarrassingly parallel workload. [`DpOptimizer::optimize_batch`]
//! fans the requests out over scoped worker threads, one
//! [`SolverArena`] per worker so consecutive plans on the same worker
//! recycle layer buffers *and* the transition-cost memo (plans after the
//! first on a worker typically build zero cost tables — see
//! [`crate::memo`]), and returns results **in request order**.
//!
//! Per-plan layer parallelism is disabled inside a batch (each plan runs
//! the sequential relaxation) so a batch of N on C cores uses exactly
//! `min(N, C)` threads instead of oversubscribing with N×C workers. The
//! solved profiles are bit-identical either way — see the determinism
//! notes in [`crate::dp`] — so a batch of N equals N sequential
//! [`optimize_from`](DpOptimizer::optimize_from) calls profile-for-profile.

use crate::dp::{DpOptimizer, OptimizedProfile, SignalConstraint, SolverArena, StartState};
use crate::par;
use velopt_common::Result;
use velopt_road::Road;

/// One trip in a batch: the corridor, its per-signal arrival windows, and
/// the EV's start state.
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest<'a> {
    /// The corridor to drive.
    pub road: &'a Road,
    /// Arrival windows for the signals still ahead.
    pub signals: &'a [SignalConstraint],
    /// Where the plan starts (origin-at-rest for a fresh trip).
    pub start: StartState,
}

impl<'a> PlanRequest<'a> {
    /// A fresh-trip request: from the corridor origin, at rest, at `t = 0`.
    pub fn fresh(road: &'a Road, signals: &'a [SignalConstraint]) -> Self {
        Self {
            road,
            signals,
            start: StartState::default(),
        }
    }
}

impl DpOptimizer {
    /// Plans every request concurrently; results come back in request
    /// order. Individual infeasible trips surface as `Err` entries without
    /// failing the rest of the batch.
    pub fn optimize_batch(&self, requests: &[PlanRequest<'_>]) -> Vec<Result<OptimizedProfile>> {
        let threads = par::effective_threads(self.config().threads).min(requests.len().max(1));
        let mut arenas: Vec<SolverArena> = (0..threads).map(|_| SolverArena::new()).collect();
        self.optimize_batch_with(requests, &mut arenas)
    }

    /// Like [`DpOptimizer::optimize_batch`], but reusing caller-owned
    /// arenas so warm layer buffers and transition-cost memos survive
    /// *across* batches — the router's batched frontier flushes many small
    /// batches and would otherwise rebuild every cost table each flush.
    ///
    /// Up to `arenas.len()` workers run; worker `w` owns `arenas[w]` and
    /// plans requests `w, w + workers, …`, so with a fixed arena count the
    /// request → arena assignment (and therefore every profile) is
    /// deterministic.
    pub fn optimize_batch_with(
        &self,
        requests: &[PlanRequest<'_>],
        arenas: &mut [SolverArena],
    ) -> Vec<Result<OptimizedProfile>> {
        let _batch_span = telemetry::span("dp.batch_seconds");
        telemetry::add("dp.batch.calls", 1);
        telemetry::add("dp.batch.trips", requests.len() as u64);
        let threads = par::effective_threads(self.config().threads)
            .min(requests.len().max(1))
            .min(arenas.len().max(1));
        let solo = self.single_threaded();
        if threads <= 1 || requests.len() <= 1 {
            let mut fallback;
            let arena = match arenas.first_mut() {
                Some(a) => a,
                None => {
                    fallback = SolverArena::new();
                    &mut fallback
                }
            };
            return requests
                .iter()
                .map(|r| solo.optimize_from_with(r.road, r.signals, r.start, arena))
                .collect();
        }

        // Round-robin the requests over the workers; each worker keeps one
        // arena across its share of the batch.
        let mut results: Vec<Option<Result<OptimizedProfile>>> =
            (0..requests.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let solo = &solo;
            let handles: Vec<_> = arenas[..threads]
                .iter_mut()
                .enumerate()
                .map(|(w, arena)| {
                    scope.spawn(move || {
                        requests
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(threads)
                            .map(|(i, r)| {
                                (
                                    i,
                                    solo.optimize_from_with(r.road, r.signals, r.start, arena),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, res) in handle.join().expect("batch worker thread panicked") {
                    results[i] = Some(res);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every request planned"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{DpConfig, TimeHandling};
    use velopt_common::units::{KilometersPerHour, Meters, MetersPerSecond, Seconds};
    use velopt_ev_energy::{EnergyModel, VehicleParams};
    use velopt_queue::TimeWindow;
    use velopt_road::RoadBuilder;

    fn optimizer(threads: usize) -> DpOptimizer {
        DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                threads,
                ..DpConfig::default()
            },
        )
        .unwrap()
    }

    fn simple_road(length: f64) -> velopt_road::Road {
        RoadBuilder::new(Meters::new(length))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn batch_matches_sequential_calls_profile_for_profile() {
        let roads: Vec<_> = [600.0, 800.0, 1000.0, 1200.0]
            .iter()
            .map(|&l| simple_road(l))
            .collect();
        let constraint = SignalConstraint {
            position: Meters::new(400.0),
            windows: vec![TimeWindow {
                start: Seconds::new(40.0),
                end: Seconds::new(55.0),
            }],
        };
        let signals = [constraint];
        let requests: Vec<PlanRequest<'_>> = roads
            .iter()
            .enumerate()
            .map(|(i, road)| PlanRequest {
                road,
                signals: if i % 2 == 0 { &signals } else { &[] },
                start: StartState {
                    time: Seconds::new(i as f64 * 5.0),
                    ..StartState::default()
                },
            })
            .collect();

        let opt = optimizer(4);
        let batched = opt.optimize_batch(&requests);
        for (req, got) in requests.iter().zip(&batched) {
            let solo = opt.optimize_from(req.road, req.signals, req.start).unwrap();
            assert_eq!(got.as_ref().unwrap(), &solo);
        }
    }

    #[test]
    fn batch_preserves_order_and_isolates_failures() {
        let good = simple_road(800.0);
        // Far too long for a 2-minute horizon: infeasible.
        let bad = simple_road(30_000.0);
        let opt = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                horizon: Seconds::new(120.0),
                threads: 2,
                ..DpConfig::default()
            },
        )
        .unwrap();
        let requests = [
            PlanRequest::fresh(&good, &[]),
            PlanRequest::fresh(&bad, &[]),
            PlanRequest::fresh(&good, &[]),
        ];
        let results = opt.optimize_batch(&requests);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        // The two good plans are for the same trip — identical.
        assert_eq!(results[0].as_ref().unwrap(), results[2].as_ref().unwrap());
    }

    #[test]
    fn batch_arena_reuse_shows_in_metrics() {
        let road = simple_road(700.0);
        // Single worker (threads = 1): one arena across the whole batch, so
        // every plan after the first must reuse its layers.
        let opt = optimizer(1);
        let requests: Vec<PlanRequest<'_>> = (0..3)
            .map(|i| PlanRequest {
                road: &road,
                signals: &[],
                start: StartState {
                    time: Seconds::new(i as f64),
                    ..StartState::default()
                },
            })
            .collect();
        let results = opt.optimize_batch(&requests);
        let later = results[2].as_ref().unwrap();
        assert_eq!(later.metrics.arena_allocations, 0);
        assert!(later.metrics.arena_reuse_hits > 0);
        // Same corridor, same segment classes: the transition memo is warm,
        // so the later plans build no cost tables and run no energy evals.
        assert_eq!(later.metrics.memo_misses, 0);
        assert_eq!(later.metrics.energy_evals, 0);
        assert!(later.metrics.memo_hits > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(optimizer(0).optimize_batch(&[]).is_empty());
        assert!(optimizer(0).optimize_batch_with(&[], &mut []).is_empty());
    }

    #[test]
    fn batch_with_keeps_arenas_warm_across_calls() {
        let road = simple_road(700.0);
        let opt = optimizer(1);
        let requests = [PlanRequest::fresh(&road, &[])];
        let mut arenas = vec![SolverArena::new()];
        let first = opt.optimize_batch_with(&requests, &mut arenas);
        let second = opt.optimize_batch_with(&requests, &mut arenas);
        let p = second[0].as_ref().unwrap();
        // The second call reuses the first call's layers and memo tables.
        assert_eq!(p.metrics.arena_allocations, 0);
        assert_eq!(p.metrics.memo_misses, 0);
        assert_eq!(p.metrics.energy_evals, 0);
        // ...and stays bit-identical to the cold-arena plan.
        assert_eq!(p, first[0].as_ref().unwrap());
    }

    #[test]
    fn batch_with_matches_batch() {
        let roads: Vec<_> = [600.0, 900.0, 1100.0]
            .iter()
            .map(|&l| simple_road(l))
            .collect();
        let requests: Vec<PlanRequest<'_>> = roads
            .iter()
            .map(|road| PlanRequest::fresh(road, &[]))
            .collect();
        let opt = optimizer(2);
        let plain = opt.optimize_batch(&requests);
        let mut arenas = vec![SolverArena::new(), SolverArena::new()];
        let with = opt.optimize_batch_with(&requests, &mut arenas);
        for (a, b) in plain.iter().zip(&with) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn greedy_batch_works_too() {
        let road = simple_road(900.0);
        let opt = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                time_handling: TimeHandling::Greedy,
                threads: 2,
                ..DpConfig::default()
            },
        )
        .unwrap();
        let requests = [
            PlanRequest::fresh(&road, &[]),
            PlanRequest::fresh(&road, &[]),
        ];
        let results = opt.optimize_batch(&requests);
        let a = results[0].as_ref().unwrap();
        assert_eq!(a.speeds[0], MetersPerSecond::ZERO);
        assert_eq!(a, results[1].as_ref().unwrap());
    }
}
