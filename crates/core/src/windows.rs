//! Builds per-signal arrival windows for the DP.
//!
//! * [`queue_aware_constraints`] — our method: each light's windows are the
//!   queue-free portions of its greens (`T_q`, Eq. 11), predicted by the QL
//!   model from the arrival rate.
//! * [`green_only_constraints`] — the prior DP of Ozatay et al. \[2\]: any
//!   instant of green is considered passable (queues ignored).

use crate::dp::SignalConstraint;
use velopt_common::units::{Seconds, VehiclesPerHour};
use velopt_common::Result;
use velopt_queue::{QueueModel, QueueParams, TimeWindow};
use velopt_road::Road;

/// Queue-aware `T_q` windows for every light on `road`.
///
/// `arrival_rates` gives the predicted `V_in` per light (e.g. from the SAE
/// predictor); `base` supplies the remaining queue parameters (spacing,
/// straight ratio, `v_min`, `a_max` — the signal timing is taken from each
/// light).
///
/// # Errors
///
/// Returns an error if `arrival_rates` does not match the number of lights
/// or the queue parameters are invalid.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{Seconds, VehiclesPerHour};
/// use velopt_core::windows::queue_aware_constraints;
/// use velopt_queue::QueueParams;
/// use velopt_road::Road;
///
/// let road = Road::us25();
/// let constraints = queue_aware_constraints(
///     &road,
///     &[VehiclesPerHour::new(153.0), VehiclesPerHour::new(153.0)],
///     QueueParams::us25_probe(),
///     Seconds::new(600.0),
/// )?;
/// assert_eq!(constraints.len(), 2);
/// // The first US-25 light turns green at t = 12 s (offset 42 s); the
/// // queue needs a few seconds to discharge before the window opens.
/// assert!(constraints[0].windows[0].start > Seconds::new(12.0));
/// # Ok(())
/// # }
/// ```
pub fn queue_aware_constraints(
    road: &Road,
    arrival_rates: &[VehiclesPerHour],
    base: QueueParams,
    horizon: Seconds,
) -> Result<Vec<SignalConstraint>> {
    let lights = road.traffic_lights();
    if arrival_rates.len() != lights.len() {
        return Err(velopt_common::Error::invalid_input(format!(
            "{} arrival rates for {} lights",
            arrival_rates.len(),
            lights.len()
        )));
    }
    let mut constraints = Vec::with_capacity(lights.len());
    for (light, &rate) in lights.iter().zip(arrival_rates) {
        let params = QueueParams {
            arrival_rate: rate,
            red: light.red(),
            green: light.green(),
            ..base
        };
        let model = QueueModel::new(params)?;
        let windows = model.empty_windows(light, Seconds::ZERO, horizon)?;
        constraints.push(SignalConstraint {
            position: light.position(),
            windows,
        });
    }
    Ok(constraints)
}

/// Whole-green windows for every light (the queue-oblivious baseline \[2\]).
///
/// # Examples
///
/// ```
/// use velopt_common::units::Seconds;
/// use velopt_core::windows::green_only_constraints;
/// use velopt_road::Road;
///
/// let constraints = green_only_constraints(&Road::us25(), Seconds::new(300.0));
/// // Baseline windows start exactly at the green (no discharge delay):
/// // the first light (offset 42 s) turns green at t = 12 s.
/// assert_eq!(constraints[0].windows[0].start, Seconds::new(12.0));
/// ```
pub fn green_only_constraints(road: &Road, horizon: Seconds) -> Vec<SignalConstraint> {
    // One scratch buffer shared across lights: `green_windows_into` keeps
    // the steady-state replanning path free of per-light allocations.
    let mut scratch = Vec::new();
    road.traffic_lights()
        .iter()
        .map(|light| {
            light.green_windows_into(Seconds::ZERO, horizon, &mut scratch);
            SignalConstraint {
                position: light.position(),
                windows: scratch
                    .iter()
                    .map(|&(start, end)| TimeWindow { start, end })
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_queue::QueueParams;

    #[test]
    fn queue_windows_are_subsets_of_greens() {
        let road = Road::us25();
        let rates = [VehiclesPerHour::new(153.0), VehiclesPerHour::new(300.0)];
        let ours = queue_aware_constraints(
            &road,
            &rates,
            QueueParams::us25_probe(),
            Seconds::new(600.0),
        )
        .unwrap();
        let greens = green_only_constraints(&road, Seconds::new(600.0));
        for (q, g) in ours.iter().zip(&greens) {
            assert_eq!(q.position, g.position);
            for w in &q.windows {
                assert!(
                    g.windows
                        .iter()
                        .any(|gw| gw.start <= w.start && w.end <= gw.end),
                    "T_q window {w:?} must lie inside a green window"
                );
            }
        }
    }

    #[test]
    fn heavier_arrivals_shrink_windows() {
        let road = Road::us25();
        let light_traffic = queue_aware_constraints(
            &road,
            &[VehiclesPerHour::new(50.0), VehiclesPerHour::new(50.0)],
            QueueParams::us25_probe(),
            Seconds::new(300.0),
        )
        .unwrap();
        let heavy_traffic = queue_aware_constraints(
            &road,
            &[VehiclesPerHour::new(900.0), VehiclesPerHour::new(900.0)],
            QueueParams::us25_probe(),
            Seconds::new(300.0),
        )
        .unwrap();
        let total = |cs: &[SignalConstraint]| -> f64 {
            cs.iter()
                .flat_map(|c| &c.windows)
                .map(|w| w.duration().value())
                .sum()
        };
        assert!(total(&heavy_traffic) < total(&light_traffic));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let road = Road::us25();
        assert!(queue_aware_constraints(
            &road,
            &[VehiclesPerHour::new(153.0)],
            QueueParams::us25_probe(),
            Seconds::new(300.0),
        )
        .is_err());
    }

    #[test]
    fn admits_matches_window_membership() {
        // Check membership against the light's own phase function rather
        // than hard-coded instants, so offset tuning cannot break this.
        let road = Road::us25();
        let greens = green_only_constraints(&road, Seconds::new(120.0));
        let light = &road.traffic_lights()[0];
        for t in 0..119 {
            let t = Seconds::new(t as f64 + 0.5);
            assert_eq!(
                greens[0].admits(t),
                light.phase_at(t).is_green(),
                "mismatch at {t}"
            );
        }
    }
}
