//! Queue-aware dynamic-programming velocity optimization for pure EVs — the
//! paper's primary contribution (§II-C).
//!
//! Given a road corridor, an EV energy model, and a prediction of when the
//! waiting queue in front of each traffic light is empty, the optimizer
//! finds the velocity profile from source to destination that minimizes
//! battery charge consumption subject to (Eq. 7):
//!
//! * speed limits `v_min(s) ≤ v(s) ≤ v_max(s)`,
//! * comfort acceleration bounds `a_min ≤ a ≤ a_max`,
//! * mandatory stops (`v = 0`) at the source, every stop sign, and the
//!   destination,
//!
//! and — the novelty — a penalty (Eq. 11–12) that forces the EV's arrival
//! time at each signal into the **queue-free windows `T_q`** predicted by
//! the QL model, so the EV glides through greens without meeting a single
//! waiting vehicle.
//!
//! # Modules
//!
//! * [`dp`] — the space–velocity(–time) dynamic program, with both the
//!   exact time-expanded state space and the paper-literal greedy time
//!   handling as an ablation.
//! * [`windows`] — builds per-light arrival windows: queue-aware `T_q`
//!   (ours) or raw green phases (the prior DP of Ozatay et al. \[2\]).
//! * [`profiles`] — synthetic **mild** and **fast** human driving profiles,
//!   substituting for the traces the authors collected on US-25 (Fig. 7a).
//! * [`pipeline`] — the end-to-end system: SAE arrival prediction → QL
//!   model → `T_q` windows → DP (Fig. 6–8 are produced from this).
//! * [`analysis`] — energy/trip-time/stop metrics and profile comparison.
//!
//! # Examples
//!
//! ```
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
//! use velopt_road::Road;
//!
//! let system = VelocityOptimizationSystem::new(SystemConfig::us25())?;
//! let ours = system.optimize()?;
//! let prior = system.optimize_baseline()?;
//! // The queue-aware profile never violates a queue window...
//! assert_eq!(ours.window_violations, 0);
//! // ...and consumes no more energy than the queue-oblivious one evaluated
//! // against the real queue dynamics (see the integration tests for the
//! // full SUMO-style comparison).
//! assert!(ours.total_energy.value().is_finite());
//! # drop(prior);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod arena;
pub mod batch;
pub mod dp;
pub mod memo;
pub mod metrics;
pub mod pipeline;
pub mod profiles;
pub mod replan;
pub mod route;
pub(crate) mod simd;
pub mod windows;

/// Deterministic chunked parallelism, re-exported from
/// [`velopt_common::par`] (it moved there so the traffic predictor can
/// share the same worker-team machinery without a dependency cycle).
pub use velopt_common::par;

pub use analysis::{ProfileMetrics, TripComparison};
pub use arena::{LayerPool, LeaseStats};
pub use batch::PlanRequest;
pub use dp::{
    DpConfig, DpOptimizer, EdgeBound, OptimizedProfile, SignalConstraint, SolverArena, StartState,
    TimeHandling,
};
pub use memo::{ClassKey, CostTable, MemoStats, TransitionTable};
pub use metrics::SolverMetrics;
pub use pipeline::{SystemConfig, VelocityOptimizationSystem};
pub use profiles::{DriverProfile, DrivingStyle};
pub use replan::{ReplanConfig, Replanner};
pub use route::{RouteConfig, RouteMetrics, RoutePlan, RouteQuery, Router};
