//! The space–velocity(–time) dynamic program (Eq. 7–12).
//!
//! The road is discretized into equal-distance stations `s_i` (Eq. 7's
//! setup). A profile is a speed per station; between stations the vehicle
//! holds the constant acceleration implied by the kinematic relation
//! `v_{i+1}² = v_i² + 2·a·Δs`. The DP searches over discrete speeds at each
//! station for the assignment minimizing total charge consumption.
//!
//! ## Time handling
//!
//! Eq. 10 makes the penalty of Eq. 11 depend on the *arrival time* at a
//! signal station, which depends on the entire path prefix — so a pure
//! (station × speed) DP is not Markovian. The paper glosses over this; we
//! implement both resolutions:
//!
//! * [`TimeHandling::Exact`] *(default)* — the state space is expanded with
//!   a discretized arrival time `(station, v, t-bin)`. This restores the
//!   Markov property at the cost of a larger (still tractable) state space
//!   and is what the headline results use.
//! * [`TimeHandling::Greedy`] — paper-literal: a `(station, v)` DP where
//!   each state remembers the arrival time of its current-best path and the
//!   penalty is evaluated against that single estimate. Cheaper, but the
//!   kept path can be window-infeasible when a slightly costlier prefix
//!   would have hit the window. Offered as an ablation (`bench dp`).
//!
//! ## Penalty form
//!
//! Eq. 12 multiplies the transition cost by a large constant `M` outside
//! `T_q`. With regenerative braking the transition cost can be *negative*,
//! and multiplying a negative cost by `M` would reward violations; we apply
//! the penalty additively (`cost + M`) instead, which preserves Eq. 12's
//! intent for all cost signs. (Documented deviation; see DESIGN.md.)
//!
//! ## Parallelism and determinism
//!
//! Layer relaxation is parallelized across the target-speed rows of the
//! speed×time-bin grid ([`DpConfig::threads`]). Each worker owns a
//! disjoint contiguous slice of the layer and visits candidates in the
//! same order as the sequential loop (source speed ascending, then time
//! bin ascending), with ties broken by the same strict `<`, so the solved
//! profile is **bit-identical** for every thread count. See
//! [`crate::par`] for the scheduling contract.

use crate::arena::LayerPool;
use crate::metrics::SolverMetrics;
use crate::par;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use velopt_common::units::{AmpereHours, Meters, MetersPerSecond, MetersPerSecondSq, Seconds};
use velopt_common::{Error, Result, TimeSeries};
use velopt_ev_energy::EnergyModel;
use velopt_queue::TimeWindow;
use velopt_road::Road;

/// How arrival times are tracked for the queue-window penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeHandling {
    /// Time-expanded state space `(station, v, t-bin)` — exact.
    Exact,
    /// Paper-literal `(station, v)` with greedy per-state arrival times.
    Greedy,
}

/// Discretization and penalty settings for the DP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Station spacing Δs.
    pub ds: Meters,
    /// Speed grid resolution.
    pub dv: MetersPerSecond,
    /// Arrival-time bin width (Exact mode only).
    pub dt_bin: Seconds,
    /// Planning horizon: arrival times beyond this are pruned.
    pub horizon: Seconds,
    /// Comfort deceleration bound (negative).
    pub a_min: MetersPerSecondSq,
    /// Comfort acceleration bound (positive).
    pub a_max: MetersPerSecondSq,
    /// The additive window penalty `M` (must dominate any trip energy).
    pub penalty_m: f64,
    /// Time spent serving an interior stop sign (come to rest, check,
    /// launch), added to the arrival clock at every stop-sign station. The
    /// DP's kinematic profile touches `v = 0` only instantaneously; real
    /// sign service (and the microscopic simulator's) costs several
    /// seconds, and arrival-time accuracy at downstream lights depends on
    /// accounting for it.
    pub stop_dwell: Seconds,
    /// Value of time in the blended objective, in Ah per second.
    ///
    /// With a pure-physics energy model the slowest legal speed is always
    /// the cheapest, which would (a) weld the optimum to `v_min` leaving no
    /// slack to *delay* an arrival into a queue-free window and (b)
    /// contradict the paper's own profiles (Fig. 6 cruises around 60 km/h,
    /// and §III-B-3 reports the optimized trip matching the fast driver's
    /// time). The default of 3 mAh/s places the free-cruise optimum near
    /// 60 km/h for the Spark EV. Reported energies are always the raw
    /// charge, never the blended cost.
    pub time_weight: f64,
    /// Time-tracking mode.
    pub time_handling: TimeHandling,
    /// Worker threads for layer relaxation: `0` = one per available core,
    /// `1` = sequential. The solved profile is bit-identical for every
    /// value (see the module docs), so this is purely a throughput knob.
    pub threads: usize,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            ds: Meters::new(20.0),
            dv: MetersPerSecond::new(1.0),
            dt_bin: Seconds::new(1.0),
            horizon: Seconds::new(900.0),
            a_min: MetersPerSecondSq::new(-1.5),
            a_max: MetersPerSecondSq::new(2.5),
            penalty_m: 1.0e6,
            stop_dwell: Seconds::new(5.5),
            time_weight: 0.003,
            time_handling: TimeHandling::Exact,
            threads: 0,
        }
    }
}

impl DpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any resolution is non-positive,
    /// the acceleration interval is empty or mis-signed, or the penalty is
    /// not positive.
    pub fn validated(self) -> Result<Self> {
        if self.ds.value() <= 0.0 || self.dv.value() <= 0.0 || self.dt_bin.value() <= 0.0 {
            return Err(Error::invalid_input("DP resolutions must be positive"));
        }
        if self.horizon.value() <= 0.0 {
            return Err(Error::invalid_input("horizon must be positive"));
        }
        if self.a_min.value() >= 0.0 || self.a_max.value() <= 0.0 {
            return Err(Error::invalid_input(
                "need a_min < 0 < a_max for a drivable profile",
            ));
        }
        if self.penalty_m <= 0.0 {
            return Err(Error::invalid_input("penalty M must be positive"));
        }
        if self.time_weight < 0.0 {
            return Err(Error::invalid_input("time weight must be non-negative"));
        }
        if self.stop_dwell.value() < 0.0 {
            return Err(Error::invalid_input("stop dwell must be non-negative"));
        }
        Ok(self)
    }
}

/// Arrival-time windows attached to a position on the road (a traffic
/// light's stop line). The DP penalizes arriving at the nearest station
/// outside every window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalConstraint {
    /// Stop-line position.
    pub position: Meters,
    /// Allowed arrival windows (queue-free greens for our method, whole
    /// greens for the baseline DP).
    pub windows: Vec<TimeWindow>,
}

impl SignalConstraint {
    /// Whether an arrival at `t` satisfies the constraint.
    pub fn admits(&self, t: Seconds) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }
}

/// Where (and how fast, and when) the optimization starts.
///
/// The default is the paper's setting: at the corridor origin, at rest, at
/// `t = 0`. A mid-trip state enables **closed-loop replanning**: after the
/// EV has been perturbed (a slow platoon, an unexpected queue), re-run the
/// DP from its live state against the same absolute-time windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartState {
    /// Current position along the corridor.
    pub position: Meters,
    /// Current speed.
    pub speed: MetersPerSecond,
    /// Current absolute time (the windows' clock).
    pub time: Seconds,
}

impl Default for StartState {
    fn default() -> Self {
        Self {
            position: Meters::ZERO,
            speed: MetersPerSecond::ZERO,
            time: Seconds::ZERO,
        }
    }
}

/// The optimizer output: a station-indexed speed/time profile plus summary
/// metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizedProfile {
    /// Station positions (first = 0, last = road length).
    pub stations: Vec<Meters>,
    /// Speed at each station.
    pub speeds: Vec<MetersPerSecond>,
    /// Arrival time at each station.
    pub times: Vec<Seconds>,
    /// Net charge drawn over the whole trip.
    pub total_energy: AmpereHours,
    /// Trip duration (arrival time at the last station).
    pub trip_time: Seconds,
    /// Number of signal stations whose arrival fell outside every window
    /// (0 = fully feasible plan).
    pub window_violations: usize,
    /// How the solver got here: state counts, phase timings, arena reuse.
    /// Excluded from equality — see the `PartialEq` impl below.
    pub metrics: SolverMetrics,
}

/// Equality is over the *plan*, not the solve: two profiles describing the
/// same trajectory compare equal even if one came from the cache (or a
/// different thread count) and has different timings in `metrics`.
impl PartialEq for OptimizedProfile {
    fn eq(&self, other: &Self) -> bool {
        self.stations == other.stations
            && self.speeds == other.speeds
            && self.times == other.times
            && self.total_energy == other.total_energy
            && self.trip_time == other.trip_time
            && self.window_violations == other.window_violations
    }
}

impl OptimizedProfile {
    /// Speed as a function of position (linear interpolation of `v²`, which
    /// is exact for constant-acceleration segments).
    ///
    /// Positions outside the road clamp to the endpoint speeds.
    pub fn speed_at_position(&self, x: Meters) -> MetersPerSecond {
        let xs = &self.stations;
        if x <= xs[0] {
            return self.speeds[0];
        }
        if x >= xs[xs.len() - 1] {
            return self.speeds[self.speeds.len() - 1];
        }
        let idx = xs.partition_point(|&s| s <= x);
        let (x0, x1) = (xs[idx - 1].value(), xs[idx].value());
        let (v0, v1) = (self.speeds[idx - 1].value(), self.speeds[idx].value());
        let f = ((x.value() - x0) / (x1 - x0)).clamp(0.0, 1.0);
        MetersPerSecond::new((v0 * v0 + f * (v1 * v1 - v0 * v0)).max(0.0).sqrt())
    }

    /// The profile as a uniform speed-vs-time series (speed is linear in
    /// time on constant-acceleration segments).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `dt` is non-positive.
    pub fn to_time_series(&self, dt: Seconds) -> Result<TimeSeries> {
        if dt.value() <= 0.0 {
            return Err(Error::invalid_input("sample step must be positive"));
        }
        let n = (self.trip_time.value() / dt.value()).ceil() as usize;
        TimeSeries::sample_fn(Seconds::ZERO, dt, n, |t| {
            let t = t.min(self.trip_time);
            // Find the segment containing t.
            let idx = self.times.partition_point(|&u| u <= t);
            if idx == 0 {
                return self.speeds[0].value();
            }
            if idx >= self.times.len() {
                return self.speeds[self.speeds.len() - 1].value();
            }
            let (t0, t1) = (self.times[idx - 1], self.times[idx]);
            let (v0, v1) = (self.speeds[idx - 1].value(), self.speeds[idx].value());
            let span = (t1 - t0).value();
            if span <= 0.0 {
                return v1;
            }
            let f = ((t - t0).value() / span).clamp(0.0, 1.0);
            v0 + f * (v1 - v0)
        })
    }

    /// Arrival time at the station nearest to `x`.
    pub fn arrival_time_at(&self, x: Meters) -> Seconds {
        let idx = nearest_index(&self.stations, x);
        self.times[idx]
    }
}

/// Index of the station nearest to `x` by binary search (stations are
/// sorted ascending). Exact midpoints resolve to the lower station — the
/// same winner the old linear scan's strict `<` produced.
fn nearest_index(stations: &[Meters], x: Meters) -> usize {
    debug_assert!(!stations.is_empty());
    let hi = stations.partition_point(|&s| s < x);
    if hi == 0 {
        return 0;
    }
    if hi == stations.len() {
        return stations.len() - 1;
    }
    let lo = hi - 1;
    let d_lo = (x - stations[lo]).abs().value();
    let d_hi = (stations[hi] - x).abs().value();
    if d_hi < d_lo {
        hi
    } else {
        lo
    }
}

/// The DP optimizer.
///
/// See the crate-level example; the full pipeline that builds the
/// [`SignalConstraint`]s lives in [`crate::pipeline`].
#[derive(Debug, Clone)]
pub struct DpOptimizer {
    energy: EnergyModel,
    config: DpConfig,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    cost: f64,
    /// Continuous arrival time carried alongside the bin to avoid drift.
    time: f64,
    prev_v: u32,
    prev_t: u32,
    violations: u32,
}

/// Greedy-mode state: like [`Node`] without the time-bin dimension.
#[derive(Debug, Clone, Copy)]
struct GNode {
    cost: f64,
    time: f64,
    prev_v: u32,
    violations: u32,
}

/// Reusable solver scratch: the DP layer stacks and backtrack buffers.
///
/// `optimize_from` allocates these afresh on every call; a caller that
/// solves repeatedly (the [`Replanner`](crate::replan::Replanner) tick
/// loop, [batch planning](crate::batch)) should hold one arena and use
/// [`DpOptimizer::optimize_from_with`] so the second and later solves
/// reuse the first solve's buffers. The resulting profile is identical
/// either way; only [`SolverMetrics::arena_reuse_hits`] differs.
#[derive(Debug, Clone, Default)]
pub struct SolverArena {
    exact: LayerPool<Option<Node>>,
    greedy: LayerPool<Option<GNode>>,
    speeds_idx: Vec<usize>,
    times: Vec<f64>,
}

impl SolverArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DpOptimizer {
    /// Creates an optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the configuration is invalid.
    pub fn new(energy: EnergyModel, config: DpConfig) -> Result<Self> {
        Ok(Self {
            energy,
            config: config.validated()?,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Runs the optimization over `road` with the given per-signal arrival
    /// windows, from the corridor origin at rest at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no profile satisfies the hard
    /// kinematic constraints (window violations are soft: they surface as
    /// `window_violations > 0`, not an error).
    pub fn optimize(&self, road: &Road, signals: &[SignalConstraint]) -> Result<OptimizedProfile> {
        self.optimize_from(road, signals, StartState::default())
    }

    /// Runs the optimization from an arbitrary mid-trip state (closed-loop
    /// replanning). Window times stay on the absolute clock `start.time`
    /// lives on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the start state lies outside the
    /// corridor or the planning horizon, and [`Error::Infeasible`] if no
    /// profile satisfies the hard kinematic constraints from that state.
    pub fn optimize_from(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
        start: StartState,
    ) -> Result<OptimizedProfile> {
        let mut arena = SolverArena::new();
        self.optimize_from_with(road, signals, start, &mut arena)
    }

    /// [`optimize_from`](Self::optimize_from) with caller-owned scratch
    /// storage, for hot loops that solve repeatedly: layer buffers are
    /// recycled across calls instead of reallocated. The profile is
    /// identical to the arena-less call; only the arena counters in its
    /// [`metrics`](OptimizedProfile::metrics) differ.
    ///
    /// # Errors
    ///
    /// Same contract as [`optimize_from`](Self::optimize_from).
    pub fn optimize_from_with(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
        start: StartState,
        arena: &mut SolverArena,
    ) -> Result<OptimizedProfile> {
        let _solve_span = telemetry::span("dp.optimize_seconds");
        let setup_started = Instant::now();
        if !road.contains(start.position) || start.position >= road.length() {
            return Err(Error::invalid_input(
                "start position must lie strictly inside the corridor",
            ));
        }
        if start.speed.value() < 0.0 {
            return Err(Error::invalid_input("start speed must be non-negative"));
        }
        if start.time.value() < 0.0 || start.time >= self.config.horizon {
            return Err(Error::invalid_input(
                "start time must be within [0, horizon)",
            ));
        }
        let stations = build_stations_from(road, start.position, self.config.ds);
        let n_stations = stations.len();
        let v_max_global = road.max_speed_limit();
        let n_speeds = (v_max_global.value() / self.config.dv.value()).floor() as usize + 1;
        let start_vi =
            ((start.speed.value() / self.config.dv.value()).round() as usize).min(n_speeds - 1);

        // Mandatory stop stations: stop signs still ahead, the destination,
        // and — only when departing from rest at the origin — the source.
        let mut must_stop = vec![false; n_stations];
        for stop in road.mandatory_stops() {
            if stop > start.position {
                must_stop[nearest_index(&stations, stop)] = true;
            }
        }
        if start.position == Meters::ZERO && start_vi == 0 {
            must_stop[0] = true;
        }

        // Signal windows snapped to stations (only lights still ahead).
        let mut station_windows: Vec<Option<&SignalConstraint>> = vec![None; n_stations];
        for sc in signals {
            if sc.position > start.position {
                station_windows[nearest_index(&stations, sc.position)] = Some(sc);
            }
        }

        // Minimum-speed lower bound (Eq. 7a). Near a mandatory stop the hard
        // bound `v >= v_min(s)` is physically impossible (the EV must launch
        // from and brake to rest), so the bound tapers with the distance δ
        // to the nearest stop as `min(v_min, sqrt(2·a_floor·δ))`: the EV must
        // make at least gentle (0.5 m/s²) average progress away from stops.
        // Without this taper-floor the energy objective degenerates into
        // crawling (slower is always cheaper when time is unpriced).
        const LAUNCH_FLOOR: f64 = 0.5;
        let mut stop_positions: Vec<f64> = (0..n_stations)
            .filter(|&i| must_stop[i])
            .map(|i| stations[i].value())
            .collect();
        // The start is a taper anchor too: a replanning call may begin at
        // any speed, and the profile must be allowed to recover from it.
        stop_positions.push(start.position.value());

        let allowed: Vec<Vec<bool>> = (0..n_stations)
            .map(|i| {
                let x = stations[i];
                let (lim_min, lim_max) = road.speed_limits_at(x);
                let delta = stop_positions
                    .iter()
                    .map(|&p| (p - x.value()).abs())
                    .fold(f64::INFINITY, f64::min);
                let floor = lim_min.value().min((2.0 * LAUNCH_FLOOR * delta).sqrt());
                (0..n_speeds)
                    .map(|vi| {
                        let v = self.config.dv.value() * vi as f64;
                        if must_stop[i] {
                            return vi == 0;
                        }
                        if v > lim_max.value() + 1e-9 {
                            return false;
                        }
                        // One grid cell of tolerance below the taper floor so
                        // a coarse grid cannot render the corridor infeasible.
                        if v + self.config.dv.value() + 1e-9 < floor {
                            return false;
                        }
                        true
                    })
                    .collect()
            })
            .collect();

        // Interior mandatory stops (stop signs) cost service time; the
        // source and destination do not.
        let dwell: Vec<f64> = (0..n_stations)
            .map(|i| {
                if must_stop[i] && i != 0 && i != n_stations - 1 {
                    self.config.stop_dwell.value()
                } else {
                    0.0
                }
            })
            .collect();

        let mut metrics = SolverMetrics {
            setup_seconds: setup_started.elapsed().as_secs_f64(),
            ..SolverMetrics::default()
        };
        let result = match self.config.time_handling {
            TimeHandling::Exact => self.solve_exact(
                road,
                &stations,
                &allowed,
                &station_windows,
                &dwell,
                n_speeds,
                start_vi,
                start.time.value(),
                arena,
                &mut metrics,
            ),
            TimeHandling::Greedy => self.solve_greedy(
                road,
                &stations,
                &allowed,
                &station_windows,
                &dwell,
                n_speeds,
                start_vi,
                start.time.value(),
                arena,
                &mut metrics,
            ),
        };
        match &result {
            Ok(profile) => profile.metrics.publish(),
            Err(_) => telemetry::add("dp.failed_solves", 1),
        }
        result
    }

    /// Energy and duration of one transition, or `None` if kinematically
    /// infeasible.
    fn transition(
        &self,
        road: &Road,
        x0: Meters,
        ds: Meters,
        v0: f64,
        v1: f64,
    ) -> Option<(f64, f64)> {
        let d = ds.value();
        let a = (v1 * v1 - v0 * v0) / (2.0 * d);
        if a < self.config.a_min.value() - 1e-9 || a > self.config.a_max.value() + 1e-9 {
            return None;
        }
        if v0 <= 0.0 && v1 <= 0.0 {
            return None; // cannot cross a segment without moving
        }
        let grade = road.grade_at(x0 + ds * 0.5);
        let seg = self
            .energy
            .segment_energy(
                MetersPerSecond::new(v0),
                MetersPerSecondSq::new(a),
                ds,
                grade,
            )
            .ok()?;
        Some((seg.charge.value(), seg.duration.value()))
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_exact(
        &self,
        road: &Road,
        stations: &[Meters],
        allowed: &[Vec<bool>],
        station_windows: &[Option<&SignalConstraint>],
        dwell: &[f64],
        n_speeds: usize,
        start_vi: usize,
        start_time: f64,
        arena: &mut SolverArena,
        metrics: &mut SolverMetrics,
    ) -> Result<OptimizedProfile> {
        let relax_started = Instant::now();
        let n_stations = stations.len();
        let n_bins = (self.config.horizon.value() / self.config.dt_bin.value()).ceil() as usize + 1;
        let idx = |vi: usize, ti: usize| vi * n_bins + ti;
        let threads = par::effective_threads(self.config.threads);
        metrics.threads_used = threads;

        let (layers, lease) = arena.exact.take_layers(n_stations, n_speeds * n_bins, None);
        metrics.arena_reuse_hits += lease.reuse_hits;
        metrics.arena_allocations += lease.allocations;

        let start_ti = ((start_time / self.config.dt_bin.value()).round() as usize).min(n_bins - 1);
        layers[0][idx(start_vi, start_ti)] = Some(Node {
            cost: 0.0,
            time: start_time,
            prev_v: start_vi as u32,
            prev_t: start_ti as u32,
            violations: 0,
        });

        for i in 1..n_stations {
            let ds = stations[i] - stations[i - 1];
            let (done, rest) = layers.split_at_mut(i);
            let prev_layer: &[Option<Node>] = &done[i - 1];
            let layer: &mut Vec<Option<Node>> = &mut rest[0];

            // Per-source-speed data shared read-only by every worker: the
            // feasible target band from the acceleration bounds (the exact
            // float expressions of the sequential formulation) and whether
            // the source row holds any state at all.
            let bands: Vec<(usize, usize, bool, f64)> = (0..n_speeds)
                .map(|vi| {
                    let v0 = self.config.dv.value() * vi as f64;
                    // The start layer is pinned by occupancy, not `allowed`.
                    let active = (i <= 1 || allowed[i - 1][vi])
                        && prev_layer[idx(vi, 0)..idx(vi + 1, 0)]
                            .iter()
                            .any(Option::is_some);
                    let lo_sq = v0 * v0 + 2.0 * self.config.a_min.value() * ds.value();
                    let hi_sq = v0 * v0 + 2.0 * self.config.a_max.value() * ds.value();
                    let vj_lo = (lo_sq.max(0.0).sqrt() / self.config.dv.value()).floor() as usize;
                    let vj_hi = ((hi_sq.max(0.0).sqrt() / self.config.dv.value()).ceil() as usize)
                        .min(n_speeds - 1);
                    (vj_lo, vj_hi, active, v0)
                })
                .collect();

            // Relax the layer one target-speed row per chunk. For a fixed
            // slot (vj, tj) candidates still arrive in (vi asc, ti asc)
            // order exactly as in the sequential loop, so the strict `<`
            // keeps the same winner regardless of the thread count.
            let counters = par::map_chunks(layer.as_mut_slice(), n_bins, threads, |offset, row| {
                let vj = offset / n_bins;
                let mut expanded = 0u64;
                let mut pruned = 0u64;
                if !allowed[i][vj] {
                    return (expanded, pruned);
                }
                let v1 = self.config.dv.value() * vj as f64;
                for vi in 0..n_speeds {
                    let (vj_lo, vj_hi, active, v0) = bands[vi];
                    if !active || vj < vj_lo || vj > vj_hi {
                        continue;
                    }
                    let Some((charge, dur)) = self.transition(road, stations[i - 1], ds, v0, v1)
                    else {
                        pruned += 1;
                        continue;
                    };
                    for ti in 0..n_bins {
                        let Some(node) = prev_layer[idx(vi, ti)] else {
                            continue;
                        };
                        let t1 = node.time + dur + dwell[i];
                        if t1 > self.config.horizon.value() {
                            pruned += 1;
                            continue;
                        }
                        let tj = (t1 / self.config.dt_bin.value()).round() as usize;
                        if tj >= n_bins {
                            pruned += 1;
                            continue;
                        }
                        let (penalty, violation) = match station_windows[i] {
                            Some(sc) if !sc.admits(Seconds::new(t1)) => (self.config.penalty_m, 1),
                            _ => (0.0, 0),
                        };
                        let cand = Node {
                            cost: node.cost + charge + self.config.time_weight * dur + penalty,
                            time: t1,
                            prev_v: vi as u32,
                            prev_t: ti as u32,
                            violations: node.violations + violation,
                        };
                        expanded += 1;
                        let slot = &mut row[tj];
                        if slot.is_none_or(|s| cand.cost < s.cost) {
                            *slot = Some(cand);
                        }
                    }
                }
                (expanded, pruned)
            });
            for (expanded, pruned) in counters {
                metrics.states_expanded += expanded;
                metrics.states_pruned += pruned;
            }
        }
        metrics.relax_seconds = relax_started.elapsed().as_secs_f64();

        // Pick the cheapest terminal state at v = 0.
        let backtrack_started = Instant::now();
        let last = &layers[n_stations - 1];
        let mut best: Option<(usize, Node)> = None;
        for ti in 0..n_bins {
            if let Some(node) = last[idx(0, ti)] {
                if best.is_none_or(|(_, b)| node.cost < b.cost) {
                    best = Some((ti, node));
                }
            }
        }
        let (mut ti, terminal) =
            best.ok_or_else(|| Error::infeasible("no kinematically feasible profile"))?;

        // Backtrack.
        let speeds_idx = &mut arena.speeds_idx;
        let times = &mut arena.times;
        speeds_idx.clear();
        speeds_idx.resize(n_stations, 0);
        times.clear();
        times.resize(n_stations, 0.0);
        let mut vi = 0usize;
        times[n_stations - 1] = terminal.time;
        for i in (1..n_stations).rev() {
            let node = layers[i][idx(vi, ti)].ok_or_else(|| {
                Error::infeasible("backtrack lost its parent state (inconsistent DP layers)")
            })?;
            times[i] = node.time;
            let pv = node.prev_v as usize;
            let pt = node.prev_t as usize;
            speeds_idx[i] = vi;
            vi = pv;
            ti = pt;
        }
        speeds_idx[0] = start_vi;
        times[0] = start_time;
        metrics.backtrack_seconds = backtrack_started.elapsed().as_secs_f64();

        self.assemble(
            road,
            stations,
            &arena.speeds_idx,
            &arena.times,
            terminal.violations as usize,
            *metrics,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_greedy(
        &self,
        road: &Road,
        stations: &[Meters],
        allowed: &[Vec<bool>],
        station_windows: &[Option<&SignalConstraint>],
        dwell: &[f64],
        n_speeds: usize,
        start_vi: usize,
        start_time: f64,
        arena: &mut SolverArena,
        metrics: &mut SolverMetrics,
    ) -> Result<OptimizedProfile> {
        let relax_started = Instant::now();
        let n_stations = stations.len();
        let threads = par::effective_threads(self.config.threads);
        metrics.threads_used = threads;

        let (layers, lease) = arena.greedy.take_layers(n_stations, n_speeds, None);
        metrics.arena_reuse_hits += lease.reuse_hits;
        metrics.arena_allocations += lease.allocations;

        layers[0][start_vi] = Some(GNode {
            cost: 0.0,
            time: start_time,
            prev_v: start_vi as u32,
            violations: 0,
        });

        for i in 1..n_stations {
            let ds = stations[i] - stations[i - 1];
            let (done, rest) = layers.split_at_mut(i);
            let prev_layer: &[Option<GNode>] = &done[i - 1];
            let layer: &mut Vec<Option<GNode>> = &mut rest[0];

            // One target speed per chunk; for a fixed slot vj candidates
            // arrive in source-speed-ascending order exactly as in the
            // sequential loop (same winners under the strict `<`).
            let counters = par::map_chunks(layer.as_mut_slice(), 1, threads, |vj, slot| {
                let mut expanded = 0u64;
                let mut pruned = 0u64;
                if !allowed[i][vj] {
                    return (expanded, pruned);
                }
                let v1 = self.config.dv.value() * vj as f64;
                for vi in 0..n_speeds {
                    if i > 1 && !allowed[i - 1][vi] {
                        continue;
                    }
                    let Some(node) = prev_layer[vi] else {
                        continue;
                    };
                    let v0 = self.config.dv.value() * vi as f64;
                    let Some((charge, dur)) = self.transition(road, stations[i - 1], ds, v0, v1)
                    else {
                        pruned += 1;
                        continue;
                    };
                    let t1 = node.time + dur + dwell[i];
                    if t1 > self.config.horizon.value() {
                        pruned += 1;
                        continue;
                    }
                    let (penalty, violation) = match station_windows[i] {
                        Some(sc) if !sc.admits(Seconds::new(t1)) => (self.config.penalty_m, 1),
                        _ => (0.0, 0),
                    };
                    let cand = GNode {
                        cost: node.cost + charge + self.config.time_weight * dur + penalty,
                        time: t1,
                        prev_v: vi as u32,
                        violations: node.violations + violation,
                    };
                    expanded += 1;
                    if slot[0].is_none_or(|s| cand.cost < s.cost) {
                        slot[0] = Some(cand);
                    }
                }
                (expanded, pruned)
            });
            for (expanded, pruned) in counters {
                metrics.states_expanded += expanded;
                metrics.states_pruned += pruned;
            }
        }
        metrics.relax_seconds = relax_started.elapsed().as_secs_f64();

        let backtrack_started = Instant::now();
        let terminal = layers[n_stations - 1][0]
            .ok_or_else(|| Error::infeasible("no kinematically feasible profile"))?;
        let speeds_idx = &mut arena.speeds_idx;
        let times = &mut arena.times;
        speeds_idx.clear();
        speeds_idx.resize(n_stations, 0);
        times.clear();
        times.resize(n_stations, 0.0);
        let mut vi = 0usize;
        times[n_stations - 1] = terminal.time;
        for i in (1..n_stations).rev() {
            let node = layers[i][vi].ok_or_else(|| {
                Error::infeasible("backtrack lost its parent state (inconsistent DP layers)")
            })?;
            times[i] = node.time;
            speeds_idx[i] = vi;
            vi = node.prev_v as usize;
        }
        speeds_idx[0] = start_vi;
        times[0] = start_time;
        metrics.backtrack_seconds = backtrack_started.elapsed().as_secs_f64();

        self.assemble(
            road,
            stations,
            &arena.speeds_idx,
            &arena.times,
            terminal.violations as usize,
            *metrics,
        )
    }

    /// A clone forced to sequential relaxation. Batch planning parallelizes
    /// across plans and must not oversubscribe the cores with per-plan
    /// workers on top.
    pub(crate) fn single_threaded(&self) -> Self {
        let mut solo = self.clone();
        solo.config.threads = 1;
        solo
    }

    fn assemble(
        &self,
        road: &Road,
        stations: &[Meters],
        speeds_idx: &[usize],
        times: &[f64],
        window_violations: usize,
        metrics: SolverMetrics,
    ) -> Result<OptimizedProfile> {
        let speeds: Vec<MetersPerSecond> = speeds_idx
            .iter()
            .map(|&vi| MetersPerSecond::new(self.config.dv.value() * vi as f64))
            .collect();
        // Recompute energy cleanly (without penalties) along the chosen path.
        let mut total = 0.0;
        for i in 1..stations.len() {
            let ds = stations[i] - stations[i - 1];
            let (charge, _) = self
                .transition(
                    road,
                    stations[i - 1],
                    ds,
                    speeds[i - 1].value(),
                    speeds[i].value(),
                )
                .ok_or_else(|| Error::numeric("assembled profile has an infeasible segment"))?;
            total += charge;
        }
        Ok(OptimizedProfile {
            stations: stations.to_vec(),
            speeds,
            times: times.iter().map(|&t| Seconds::new(t)).collect(),
            total_energy: AmpereHours::new(total),
            trip_time: Seconds::new(times[times.len() - 1] - times[0]),
            window_violations,
            metrics,
        })
    }
}

/// Builds the station grid from `from` in steps of Δs plus the exact road
/// end. A regular station closer than Δs/2 to the end is dropped so the
/// final segment is never degenerately short (a near-zero segment makes any
/// speed change there kinematically impossible).
fn build_stations_from(road: &Road, from: Meters, ds: Meters) -> Vec<Meters> {
    let mut stations = Vec::new();
    let mut x = from.value();
    while x < road.length().value() - 1e-9 {
        stations.push(Meters::new(x));
        x += ds.value();
    }
    if stations.len() > 1
        && (road.length() - stations[stations.len() - 1]).value() < ds.value() / 2.0
    {
        stations.pop();
    }
    stations.push(road.length());
    stations
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::KilometersPerHour;
    use velopt_ev_energy::VehicleParams;
    use velopt_road::RoadBuilder;

    fn optimizer() -> DpOptimizer {
        DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig::default(),
        )
        .unwrap()
    }

    fn simple_road(length: f64) -> Road {
        RoadBuilder::new(Meters::new(length))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(DpConfig {
            ds: Meters::ZERO,
            ..DpConfig::default()
        }
        .validated()
        .is_err());
        assert!(DpConfig {
            a_min: MetersPerSecondSq::new(0.5),
            ..DpConfig::default()
        }
        .validated()
        .is_err());
        assert!(DpConfig {
            penalty_m: 0.0,
            ..DpConfig::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn free_road_profile_is_feasible_and_smooth() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        assert_eq!(profile.window_violations, 0);
        assert_eq!(profile.speeds[0], MetersPerSecond::ZERO);
        assert_eq!(*profile.speeds.last().unwrap(), MetersPerSecond::ZERO);
        // Accelerations stay within comfort bounds.
        for i in 1..profile.stations.len() {
            let ds = (profile.stations[i] - profile.stations[i - 1]).value();
            let a = (profile.speeds[i].value().powi(2) - profile.speeds[i - 1].value().powi(2))
                / (2.0 * ds);
            assert!((-1.5 - 1e-6..=2.5 + 1e-6).contains(&a), "a = {a}");
        }
        // Times are strictly increasing.
        for w in profile.times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(profile.total_energy.value() > 0.0);
    }

    #[test]
    fn respects_max_speed_limit() {
        let road = simple_road(2000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let vmax = road.max_speed_limit().value();
        for v in &profile.speeds {
            assert!(v.value() <= vmax + 1e-9);
        }
    }

    #[test]
    fn stop_sign_forces_zero_speed() {
        let road = RoadBuilder::new(Meters::new(1500.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(700.0))
            .build()
            .unwrap();
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // Station nearest the sign is at 700 (multiple of 20) — speed 0.
        let idx = profile
            .stations
            .iter()
            .position(|&s| (s.value() - 700.0).abs() < 1e-9)
            .unwrap();
        assert_eq!(profile.speeds[idx], MetersPerSecond::ZERO);
    }

    #[test]
    fn window_constraint_shifts_arrival() {
        let road = simple_road(1000.0);
        // Free-run arrival at 500 m.
        let free = optimizer().optimize(&road, &[]).unwrap();
        let t_free = free.arrival_time_at(Meters::new(500.0));
        // Constrain arrival at 500 m to a window well after the free time.
        let w0 = t_free + Seconds::new(15.0);
        let constraint = SignalConstraint {
            position: Meters::new(500.0),
            windows: vec![TimeWindow {
                start: w0,
                end: w0 + Seconds::new(10.0),
            }],
        };
        let constrained = optimizer()
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
        assert_eq!(constrained.window_violations, 0);
        let t_c = constrained.arrival_time_at(Meters::new(500.0));
        assert!(
            constraint.admits(t_c),
            "arrival {t_c} must fall in [{w0}, +10s)"
        );
    }

    #[test]
    fn impossible_window_reports_violation_not_panic() {
        let road = simple_road(600.0);
        // A window that is long past: the EV cannot be that slow within the
        // horizon... use a window before any feasible arrival instead.
        let constraint = SignalConstraint {
            position: Meters::new(400.0),
            windows: vec![TimeWindow {
                start: Seconds::ZERO,
                end: Seconds::new(1.0),
            }],
        };
        let profile = optimizer().optimize(&road, &[constraint]).unwrap();
        assert!(profile.window_violations > 0);
    }

    #[test]
    fn greedy_mode_also_produces_profiles() {
        let road = simple_road(1000.0);
        let opt = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                time_handling: TimeHandling::Greedy,
                ..DpConfig::default()
            },
        )
        .unwrap();
        let profile = opt.optimize(&road, &[]).unwrap();
        assert_eq!(profile.speeds[0], MetersPerSecond::ZERO);
        assert!(profile.trip_time.value() > 0.0);
    }

    #[test]
    fn exact_beats_or_matches_greedy_under_windows() {
        let road = simple_road(1000.0);
        let mk = |th| {
            DpOptimizer::new(
                EnergyModel::new(VehicleParams::spark_ev()),
                DpConfig {
                    time_handling: th,
                    ..DpConfig::default()
                },
            )
            .unwrap()
        };
        let free = mk(TimeHandling::Exact).optimize(&road, &[]).unwrap();
        let t_free = free.arrival_time_at(Meters::new(600.0));
        let constraint = SignalConstraint {
            position: Meters::new(600.0),
            windows: vec![TimeWindow {
                start: t_free + Seconds::new(20.0),
                end: t_free + Seconds::new(28.0),
            }],
        };
        let exact = mk(TimeHandling::Exact)
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
        let greedy = mk(TimeHandling::Greedy)
            .optimize(&road, &[constraint])
            .unwrap();
        assert!(exact.window_violations <= greedy.window_violations);
    }

    #[test]
    fn profile_sampling_helpers() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // Position sampling.
        assert_eq!(
            profile.speed_at_position(Meters::new(-5.0)),
            profile.speeds[0]
        );
        let mid = profile.speed_at_position(Meters::new(500.0));
        assert!(mid.value() > 0.0);
        // Time series export covers the trip and ends at rest.
        let series = profile.to_time_series(Seconds::new(0.5)).unwrap();
        assert!(series.duration() >= profile.trip_time - Seconds::new(0.5));
        assert!(series.samples().last().unwrap() < &0.5);
        assert!(profile.to_time_series(Seconds::ZERO).is_err());
        // Distance covered by the series matches the road length.
        let dist = series.integrate();
        assert!(
            (dist - 1000.0).abs() < 30.0,
            "time-series distance {dist} should be ~1000 m"
        );
    }

    #[test]
    fn energy_is_less_than_naive_fast_profile() {
        // The DP should never do worse than a crude bang-bang profile's
        // energy on the same road (it could pick that profile itself).
        let road = simple_road(1500.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // A crude comparison: max accel to vmax, cruise, max brake.
        let e = EnergyModel::new(VehicleParams::spark_ev());
        let vmax = road.max_speed_limit();
        let d_up = vmax.value().powi(2) / (2.0 * 2.5);
        let d_down = vmax.value().powi(2) / (2.0 * 1.5);
        let up = e
            .segment_energy(
                MetersPerSecond::ZERO,
                MetersPerSecondSq::new(2.5),
                Meters::new(d_up),
                road.grade_at(Meters::ZERO),
            )
            .unwrap();
        let cruise = e
            .segment_energy(
                vmax,
                MetersPerSecondSq::ZERO,
                Meters::new(1500.0 - d_up - d_down),
                road.grade_at(Meters::new(750.0)),
            )
            .unwrap();
        let down = e
            .segment_energy(
                vmax,
                MetersPerSecondSq::new(-1.5),
                Meters::new(d_down),
                road.grade_at(Meters::new(1400.0)),
            )
            .unwrap();
        let naive = up.charge.value() + cruise.charge.value() + down.charge.value();
        assert!(
            profile.total_energy.value() <= naive + 1e-6,
            "DP {} vs naive {naive}",
            profile.total_energy.value()
        );
    }

    fn optimizer_with(config: DpConfig) -> DpOptimizer {
        DpOptimizer::new(EnergyModel::new(VehicleParams::spark_ev()), config).unwrap()
    }

    fn bitwise_equal(a: &OptimizedProfile, b: &OptimizedProfile) -> bool {
        a.stations.len() == b.stations.len()
            && a.stations
                .iter()
                .zip(&b.stations)
                .all(|(x, y)| x.value().to_bits() == y.value().to_bits())
            && a.speeds
                .iter()
                .zip(&b.speeds)
                .all(|(x, y)| x.value().to_bits() == y.value().to_bits())
            && a.times
                .iter()
                .zip(&b.times)
                .all(|(x, y)| x.value().to_bits() == y.value().to_bits())
            && a.total_energy.value().to_bits() == b.total_energy.value().to_bits()
            && a.trip_time.value().to_bits() == b.trip_time.value().to_bits()
            && a.window_violations == b.window_violations
    }

    #[test]
    fn parallel_exact_is_bit_identical_to_sequential() {
        let road = simple_road(1200.0);
        let t_free = optimizer().optimize(&road, &[]).unwrap();
        let constraint = SignalConstraint {
            position: Meters::new(600.0),
            windows: vec![TimeWindow {
                start: t_free.arrival_time_at(Meters::new(600.0)) + Seconds::new(12.0),
                end: t_free.arrival_time_at(Meters::new(600.0)) + Seconds::new(20.0),
            }],
        };
        let sequential = optimizer_with(DpConfig {
            threads: 1,
            ..DpConfig::default()
        })
        .optimize(&road, std::slice::from_ref(&constraint))
        .unwrap();
        for threads in [2, 3, 7] {
            let parallel = optimizer_with(DpConfig {
                threads,
                ..DpConfig::default()
            })
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
            assert!(
                bitwise_equal(&sequential, &parallel),
                "profile diverged at {threads} threads"
            );
            assert_eq!(parallel.metrics.threads_used, threads);
            // Same search space, same pruning decisions.
            assert_eq!(
                parallel.metrics.states_expanded,
                sequential.metrics.states_expanded
            );
            assert_eq!(
                parallel.metrics.states_pruned,
                sequential.metrics.states_pruned
            );
        }
    }

    #[test]
    fn parallel_greedy_is_bit_identical_to_sequential() {
        let road = simple_road(1000.0);
        let mk = |threads| {
            optimizer_with(DpConfig {
                time_handling: TimeHandling::Greedy,
                threads,
                ..DpConfig::default()
            })
        };
        let sequential = mk(1).optimize(&road, &[]).unwrap();
        for threads in [2, 5] {
            let parallel = mk(threads).optimize(&road, &[]).unwrap();
            assert!(
                bitwise_equal(&sequential, &parallel),
                "greedy profile diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn arena_reuse_kicks_in_on_second_solve() {
        let road = simple_road(800.0);
        let opt = optimizer();
        let mut arena = SolverArena::new();
        let first = opt
            .optimize_from_with(&road, &[], StartState::default(), &mut arena)
            .unwrap();
        assert_eq!(first.metrics.arena_reuse_hits, 0);
        assert!(first.metrics.arena_allocations > 0);
        let second = opt
            .optimize_from_with(&road, &[], StartState::default(), &mut arena)
            .unwrap();
        assert_eq!(second.metrics.arena_allocations, 0);
        assert!(second.metrics.arena_reuse_hits > 0);
        // Scratch reuse must not change the plan.
        assert_eq!(first, second);
    }

    #[test]
    fn metrics_are_populated() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let m = profile.metrics;
        assert!(m.states_expanded > 0);
        assert!(m.threads_used >= 1);
        assert!(m.relax_seconds >= 0.0 && m.total_seconds() >= m.relax_seconds);
        assert!(m.expansion_ratio() > 0.0 && m.expansion_ratio() <= 1.0);
    }

    /// With the `telemetry` feature on, every solve publishes its metrics
    /// to the global registry (counters are monotonic and the registry is
    /// process-wide, so the assertions are deltas, not absolutes).
    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_records_solves() {
        let road = simple_road(600.0);
        let before = telemetry::snapshot().counter("dp.solves").unwrap_or(0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let snap = telemetry::snapshot();
        assert!(snap.counter("dp.solves").unwrap() > before);
        assert!(snap.counter("dp.states_expanded").unwrap() >= profile.metrics.states_expanded);
        assert!(snap.histogram("dp.relax_seconds").unwrap().count >= 1);
        // The whole-solve span wraps every phase: its histogram fills too.
        assert!(snap.histogram("dp.optimize_seconds").unwrap().count >= 1);
        // Arena lease accounting reaches the registry as well.
        assert!(snap.counter("arena.allocations").unwrap() > 0);
    }

    #[test]
    fn profiles_with_different_metrics_compare_equal() {
        let road = simple_road(800.0);
        let a = optimizer().optimize(&road, &[]).unwrap();
        let mut b = a.clone();
        b.metrics.relax_seconds += 100.0;
        b.metrics.states_expanded += 1;
        assert_eq!(a, b);
        b.window_violations += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn nearest_index_boundary_behavior() {
        let stations: Vec<Meters> = [0.0, 20.0, 40.0, 60.0]
            .iter()
            .map(|&x| Meters::new(x))
            .collect();
        // Below the first and past the last station clamp.
        assert_eq!(nearest_index(&stations, Meters::new(-5.0)), 0);
        assert_eq!(nearest_index(&stations, Meters::new(1000.0)), 3);
        // Exact hits.
        for (i, &s) in stations.iter().enumerate() {
            assert_eq!(nearest_index(&stations, s), i);
        }
        // Interior points round to the closer neighbor; exact midpoints
        // resolve to the lower station (the linear scan's tie rule).
        assert_eq!(nearest_index(&stations, Meters::new(24.0)), 1);
        assert_eq!(nearest_index(&stations, Meters::new(36.0)), 2);
        assert_eq!(nearest_index(&stations, Meters::new(30.0)), 1);
        // Single-station degenerate case.
        assert_eq!(nearest_index(&[Meters::new(7.0)], Meters::new(99.0)), 0);
    }

    #[test]
    fn nearest_index_matches_linear_scan() {
        let stations = build_stations_from(&simple_road(1000.0), Meters::ZERO, Meters::new(20.0));
        for k in 0..200 {
            let x = Meters::new(-10.0 + k as f64 * 5.3);
            let linear = stations
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (**a - x)
                        .abs()
                        .value()
                        .partial_cmp(&(**b - x).abs().value())
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(nearest_index(&stations, x), linear, "x = {x}");
        }
    }

    #[test]
    fn greedy_infeasible_backtrack_is_an_error_not_a_panic() {
        // A corridor far too long for the horizon: no terminal state exists
        // and the solver must report infeasibility.
        let road = simple_road(30_000.0);
        let opt = optimizer_with(DpConfig {
            time_handling: TimeHandling::Greedy,
            horizon: Seconds::new(120.0),
            ..DpConfig::default()
        });
        assert!(matches!(
            opt.optimize(&road, &[]),
            Err(Error::Infeasible(_))
        ));
        let opt = optimizer_with(DpConfig {
            horizon: Seconds::new(120.0),
            ..DpConfig::default()
        });
        assert!(matches!(
            opt.optimize(&road, &[]),
            Err(Error::Infeasible(_))
        ));
    }
}
