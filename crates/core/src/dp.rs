//! The space–velocity(–time) dynamic program (Eq. 7–12).
//!
//! The road is discretized into equal-distance stations `s_i` (Eq. 7's
//! setup). A profile is a speed per station; between stations the vehicle
//! holds the constant acceleration implied by the kinematic relation
//! `v_{i+1}² = v_i² + 2·a·Δs`. The DP searches over discrete speeds at each
//! station for the assignment minimizing total charge consumption.
//!
//! ## Time handling
//!
//! Eq. 10 makes the penalty of Eq. 11 depend on the *arrival time* at a
//! signal station, which depends on the entire path prefix — so a pure
//! (station × speed) DP is not Markovian. The paper glosses over this; we
//! implement both resolutions:
//!
//! * [`TimeHandling::Exact`] *(default)* — the state space is expanded with
//!   a discretized arrival time `(station, v, t-bin)`. This restores the
//!   Markov property at the cost of a larger (still tractable) state space
//!   and is what the headline results use.
//! * [`TimeHandling::Greedy`] — paper-literal: a `(station, v)` DP where
//!   each state remembers the arrival time of its current-best path and the
//!   penalty is evaluated against that single estimate. Cheaper, but the
//!   kept path can be window-infeasible when a slightly costlier prefix
//!   would have hit the window. Offered as an ablation (`bench dp`).
//!
//! ## Penalty form
//!
//! Eq. 12 multiplies the transition cost by a large constant `M` outside
//! `T_q`. With regenerative braking the transition cost can be *negative*,
//! and multiplying a negative cost by `M` would reward violations; we apply
//! the penalty additively (`cost + M`) instead, which preserves Eq. 12's
//! intent for all cost signs. (Documented deviation; see DESIGN.md.)

use serde::{Deserialize, Serialize};
use velopt_common::units::{
    AmpereHours, Meters, MetersPerSecond, MetersPerSecondSq, Seconds,
};
use velopt_common::{Error, Result, TimeSeries};
use velopt_ev_energy::EnergyModel;
use velopt_queue::TimeWindow;
use velopt_road::Road;

/// How arrival times are tracked for the queue-window penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeHandling {
    /// Time-expanded state space `(station, v, t-bin)` — exact.
    Exact,
    /// Paper-literal `(station, v)` with greedy per-state arrival times.
    Greedy,
}

/// Discretization and penalty settings for the DP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Station spacing Δs.
    pub ds: Meters,
    /// Speed grid resolution.
    pub dv: MetersPerSecond,
    /// Arrival-time bin width (Exact mode only).
    pub dt_bin: Seconds,
    /// Planning horizon: arrival times beyond this are pruned.
    pub horizon: Seconds,
    /// Comfort deceleration bound (negative).
    pub a_min: MetersPerSecondSq,
    /// Comfort acceleration bound (positive).
    pub a_max: MetersPerSecondSq,
    /// The additive window penalty `M` (must dominate any trip energy).
    pub penalty_m: f64,
    /// Time spent serving an interior stop sign (come to rest, check,
    /// launch), added to the arrival clock at every stop-sign station. The
    /// DP's kinematic profile touches `v = 0` only instantaneously; real
    /// sign service (and the microscopic simulator's) costs several
    /// seconds, and arrival-time accuracy at downstream lights depends on
    /// accounting for it.
    pub stop_dwell: Seconds,
    /// Value of time in the blended objective, in Ah per second.
    ///
    /// With a pure-physics energy model the slowest legal speed is always
    /// the cheapest, which would (a) weld the optimum to `v_min` leaving no
    /// slack to *delay* an arrival into a queue-free window and (b)
    /// contradict the paper's own profiles (Fig. 6 cruises around 60 km/h,
    /// and §III-B-3 reports the optimized trip matching the fast driver's
    /// time). The default of 3 mAh/s places the free-cruise optimum near
    /// 60 km/h for the Spark EV. Reported energies are always the raw
    /// charge, never the blended cost.
    pub time_weight: f64,
    /// Time-tracking mode.
    pub time_handling: TimeHandling,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            ds: Meters::new(20.0),
            dv: MetersPerSecond::new(1.0),
            dt_bin: Seconds::new(1.0),
            horizon: Seconds::new(900.0),
            a_min: MetersPerSecondSq::new(-1.5),
            a_max: MetersPerSecondSq::new(2.5),
            penalty_m: 1.0e6,
            stop_dwell: Seconds::new(5.5),
            time_weight: 0.003,
            time_handling: TimeHandling::Exact,
        }
    }
}

impl DpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any resolution is non-positive,
    /// the acceleration interval is empty or mis-signed, or the penalty is
    /// not positive.
    pub fn validated(self) -> Result<Self> {
        if self.ds.value() <= 0.0 || self.dv.value() <= 0.0 || self.dt_bin.value() <= 0.0 {
            return Err(Error::invalid_input("DP resolutions must be positive"));
        }
        if self.horizon.value() <= 0.0 {
            return Err(Error::invalid_input("horizon must be positive"));
        }
        if self.a_min.value() >= 0.0 || self.a_max.value() <= 0.0 {
            return Err(Error::invalid_input(
                "need a_min < 0 < a_max for a drivable profile",
            ));
        }
        if self.penalty_m <= 0.0 {
            return Err(Error::invalid_input("penalty M must be positive"));
        }
        if self.time_weight < 0.0 {
            return Err(Error::invalid_input("time weight must be non-negative"));
        }
        if self.stop_dwell.value() < 0.0 {
            return Err(Error::invalid_input("stop dwell must be non-negative"));
        }
        Ok(self)
    }
}

/// Arrival-time windows attached to a position on the road (a traffic
/// light's stop line). The DP penalizes arriving at the nearest station
/// outside every window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalConstraint {
    /// Stop-line position.
    pub position: Meters,
    /// Allowed arrival windows (queue-free greens for our method, whole
    /// greens for the baseline DP).
    pub windows: Vec<TimeWindow>,
}

impl SignalConstraint {
    /// Whether an arrival at `t` satisfies the constraint.
    pub fn admits(&self, t: Seconds) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }
}

/// Where (and how fast, and when) the optimization starts.
///
/// The default is the paper's setting: at the corridor origin, at rest, at
/// `t = 0`. A mid-trip state enables **closed-loop replanning**: after the
/// EV has been perturbed (a slow platoon, an unexpected queue), re-run the
/// DP from its live state against the same absolute-time windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartState {
    /// Current position along the corridor.
    pub position: Meters,
    /// Current speed.
    pub speed: MetersPerSecond,
    /// Current absolute time (the windows' clock).
    pub time: Seconds,
}

impl Default for StartState {
    fn default() -> Self {
        Self {
            position: Meters::ZERO,
            speed: MetersPerSecond::ZERO,
            time: Seconds::ZERO,
        }
    }
}

/// The optimizer output: a station-indexed speed/time profile plus summary
/// metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedProfile {
    /// Station positions (first = 0, last = road length).
    pub stations: Vec<Meters>,
    /// Speed at each station.
    pub speeds: Vec<MetersPerSecond>,
    /// Arrival time at each station.
    pub times: Vec<Seconds>,
    /// Net charge drawn over the whole trip.
    pub total_energy: AmpereHours,
    /// Trip duration (arrival time at the last station).
    pub trip_time: Seconds,
    /// Number of signal stations whose arrival fell outside every window
    /// (0 = fully feasible plan).
    pub window_violations: usize,
}

impl OptimizedProfile {
    /// Speed as a function of position (linear interpolation of `v²`, which
    /// is exact for constant-acceleration segments).
    ///
    /// Positions outside the road clamp to the endpoint speeds.
    pub fn speed_at_position(&self, x: Meters) -> MetersPerSecond {
        let xs = &self.stations;
        if x <= xs[0] {
            return self.speeds[0];
        }
        if x >= xs[xs.len() - 1] {
            return self.speeds[self.speeds.len() - 1];
        }
        let idx = xs.partition_point(|&s| s <= x);
        let (x0, x1) = (xs[idx - 1].value(), xs[idx].value());
        let (v0, v1) = (self.speeds[idx - 1].value(), self.speeds[idx].value());
        let f = ((x.value() - x0) / (x1 - x0)).clamp(0.0, 1.0);
        MetersPerSecond::new((v0 * v0 + f * (v1 * v1 - v0 * v0)).max(0.0).sqrt())
    }

    /// The profile as a uniform speed-vs-time series (speed is linear in
    /// time on constant-acceleration segments).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `dt` is non-positive.
    pub fn to_time_series(&self, dt: Seconds) -> Result<TimeSeries> {
        if dt.value() <= 0.0 {
            return Err(Error::invalid_input("sample step must be positive"));
        }
        let n = (self.trip_time.value() / dt.value()).ceil() as usize;
        TimeSeries::sample_fn(Seconds::ZERO, dt, n, |t| {
            let t = t.min(self.trip_time);
            // Find the segment containing t.
            let idx = self.times.partition_point(|&u| u <= t);
            if idx == 0 {
                return self.speeds[0].value();
            }
            if idx >= self.times.len() {
                return self.speeds[self.speeds.len() - 1].value();
            }
            let (t0, t1) = (self.times[idx - 1], self.times[idx]);
            let (v0, v1) = (self.speeds[idx - 1].value(), self.speeds[idx].value());
            let span = (t1 - t0).value();
            if span <= 0.0 {
                return v1;
            }
            let f = ((t - t0).value() / span).clamp(0.0, 1.0);
            v0 + f * (v1 - v0)
        })
    }

    /// Arrival time at the station nearest to `x`.
    pub fn arrival_time_at(&self, x: Meters) -> Seconds {
        let idx = nearest_index(&self.stations, x);
        self.times[idx]
    }
}

fn nearest_index(stations: &[Meters], x: Meters) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, s) in stations.iter().enumerate() {
        let d = (*s - x).abs().value();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// The DP optimizer.
///
/// See the crate-level example; the full pipeline that builds the
/// [`SignalConstraint`]s lives in [`crate::pipeline`].
#[derive(Debug, Clone)]
pub struct DpOptimizer {
    energy: EnergyModel,
    config: DpConfig,
}

#[derive(Clone, Copy)]
struct Node {
    cost: f64,
    /// Continuous arrival time carried alongside the bin to avoid drift.
    time: f64,
    prev_v: u32,
    prev_t: u32,
    violations: u32,
}

impl DpOptimizer {
    /// Creates an optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the configuration is invalid.
    pub fn new(energy: EnergyModel, config: DpConfig) -> Result<Self> {
        Ok(Self {
            energy,
            config: config.validated()?,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Runs the optimization over `road` with the given per-signal arrival
    /// windows, from the corridor origin at rest at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no profile satisfies the hard
    /// kinematic constraints (window violations are soft: they surface as
    /// `window_violations > 0`, not an error).
    pub fn optimize(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
    ) -> Result<OptimizedProfile> {
        self.optimize_from(road, signals, StartState::default())
    }

    /// Runs the optimization from an arbitrary mid-trip state (closed-loop
    /// replanning). Window times stay on the absolute clock `start.time`
    /// lives on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the start state lies outside the
    /// corridor or the planning horizon, and [`Error::Infeasible`] if no
    /// profile satisfies the hard kinematic constraints from that state.
    pub fn optimize_from(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
        start: StartState,
    ) -> Result<OptimizedProfile> {
        if !road.contains(start.position) || start.position >= road.length() {
            return Err(Error::invalid_input(
                "start position must lie strictly inside the corridor",
            ));
        }
        if start.speed.value() < 0.0 {
            return Err(Error::invalid_input("start speed must be non-negative"));
        }
        if start.time.value() < 0.0 || start.time >= self.config.horizon {
            return Err(Error::invalid_input(
                "start time must be within [0, horizon)",
            ));
        }
        let stations = build_stations_from(road, start.position, self.config.ds);
        let n_stations = stations.len();
        let v_max_global = road.max_speed_limit();
        let n_speeds = (v_max_global.value() / self.config.dv.value()).floor() as usize + 1;
        let start_vi = ((start.speed.value() / self.config.dv.value()).round() as usize)
            .min(n_speeds - 1);

        // Mandatory stop stations: stop signs still ahead, the destination,
        // and — only when departing from rest at the origin — the source.
        let mut must_stop = vec![false; n_stations];
        for stop in road.mandatory_stops() {
            if stop > start.position {
                must_stop[nearest_index(&stations, stop)] = true;
            }
        }
        if start.position == Meters::ZERO && start_vi == 0 {
            must_stop[0] = true;
        }

        // Signal windows snapped to stations (only lights still ahead).
        let mut station_windows: Vec<Option<&SignalConstraint>> = vec![None; n_stations];
        for sc in signals {
            if sc.position > start.position {
                station_windows[nearest_index(&stations, sc.position)] = Some(sc);
            }
        }

        // Minimum-speed lower bound (Eq. 7a). Near a mandatory stop the hard
        // bound `v >= v_min(s)` is physically impossible (the EV must launch
        // from and brake to rest), so the bound tapers with the distance δ
        // to the nearest stop as `min(v_min, sqrt(2·a_floor·δ))`: the EV must
        // make at least gentle (0.5 m/s²) average progress away from stops.
        // Without this taper-floor the energy objective degenerates into
        // crawling (slower is always cheaper when time is unpriced).
        const LAUNCH_FLOOR: f64 = 0.5;
        let mut stop_positions: Vec<f64> = (0..n_stations)
            .filter(|&i| must_stop[i])
            .map(|i| stations[i].value())
            .collect();
        // The start is a taper anchor too: a replanning call may begin at
        // any speed, and the profile must be allowed to recover from it.
        stop_positions.push(start.position.value());

        let allowed: Vec<Vec<bool>> = (0..n_stations)
            .map(|i| {
                let x = stations[i];
                let (lim_min, lim_max) = road.speed_limits_at(x);
                let delta = stop_positions
                    .iter()
                    .map(|&p| (p - x.value()).abs())
                    .fold(f64::INFINITY, f64::min);
                let floor = lim_min
                    .value()
                    .min((2.0 * LAUNCH_FLOOR * delta).sqrt());
                (0..n_speeds)
                    .map(|vi| {
                        let v = self.config.dv.value() * vi as f64;
                        if must_stop[i] {
                            return vi == 0;
                        }
                        if v > lim_max.value() + 1e-9 {
                            return false;
                        }
                        // One grid cell of tolerance below the taper floor so
                        // a coarse grid cannot render the corridor infeasible.
                        if v + self.config.dv.value() + 1e-9 < floor {
                            return false;
                        }
                        true
                    })
                    .collect()
            })
            .collect();

        // Interior mandatory stops (stop signs) cost service time; the
        // source and destination do not.
        let dwell: Vec<f64> = (0..n_stations)
            .map(|i| {
                if must_stop[i] && i != 0 && i != n_stations - 1 {
                    self.config.stop_dwell.value()
                } else {
                    0.0
                }
            })
            .collect();

        match self.config.time_handling {
            TimeHandling::Exact => self.solve_exact(
                road,
                &stations,
                &allowed,
                &station_windows,
                &dwell,
                n_speeds,
                start_vi,
                start.time.value(),
            ),
            TimeHandling::Greedy => self.solve_greedy(
                road,
                &stations,
                &allowed,
                &station_windows,
                &dwell,
                n_speeds,
                start_vi,
                start.time.value(),
            ),
        }
    }

    /// Energy and duration of one transition, or `None` if kinematically
    /// infeasible.
    fn transition(
        &self,
        road: &Road,
        x0: Meters,
        ds: Meters,
        v0: f64,
        v1: f64,
    ) -> Option<(f64, f64)> {
        let d = ds.value();
        let a = (v1 * v1 - v0 * v0) / (2.0 * d);
        if a < self.config.a_min.value() - 1e-9 || a > self.config.a_max.value() + 1e-9 {
            return None;
        }
        if v0 <= 0.0 && v1 <= 0.0 {
            return None; // cannot cross a segment without moving
        }
        let grade = road.grade_at(x0 + ds * 0.5);
        let seg = self
            .energy
            .segment_energy(
                MetersPerSecond::new(v0),
                MetersPerSecondSq::new(a),
                ds,
                grade,
            )
            .ok()?;
        Some((seg.charge.value(), seg.duration.value()))
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_exact(
        &self,
        road: &Road,
        stations: &[Meters],
        allowed: &[Vec<bool>],
        station_windows: &[Option<&SignalConstraint>],
        dwell: &[f64],
        n_speeds: usize,
        start_vi: usize,
        start_time: f64,
    ) -> Result<OptimizedProfile> {
        let n_stations = stations.len();
        let n_bins = (self.config.horizon.value() / self.config.dt_bin.value()).ceil() as usize + 1;
        let idx = |vi: usize, ti: usize| vi * n_bins + ti;

        let mut layers: Vec<Vec<Option<Node>>> = Vec::with_capacity(n_stations);
        let mut first = vec![None; n_speeds * n_bins];
        let start_ti = ((start_time / self.config.dt_bin.value()).round() as usize).min(n_bins - 1);
        first[idx(start_vi, start_ti)] = Some(Node {
            cost: 0.0,
            time: start_time,
            prev_v: start_vi as u32,
            prev_t: start_ti as u32,
            violations: 0,
        });
        layers.push(first);

        for i in 1..n_stations {
            let ds = stations[i] - stations[i - 1];
            let mut layer: Vec<Option<Node>> = vec![None; n_speeds * n_bins];
            let prev_layer = &layers[i - 1];
            for vi in 0..n_speeds {
                let v0 = self.config.dv.value() * vi as f64;
                // The start layer is pinned by occupancy, not by `allowed`.
                if i > 1 && !allowed[i - 1][vi] {
                    continue;
                }
                // Feasible target-speed band from the acceleration bounds.
                let lo_sq = v0 * v0 + 2.0 * self.config.a_min.value() * ds.value();
                let hi_sq = v0 * v0 + 2.0 * self.config.a_max.value() * ds.value();
                let vj_lo =
                    (lo_sq.max(0.0).sqrt() / self.config.dv.value()).floor() as usize;
                let vj_hi = ((hi_sq.max(0.0).sqrt() / self.config.dv.value()).ceil() as usize)
                    .min(n_speeds - 1);
                for vj in vj_lo..=vj_hi {
                    if !allowed[i][vj] {
                        continue;
                    }
                    let v1 = self.config.dv.value() * vj as f64;
                    let Some((charge, dur)) = self.transition(road, stations[i - 1], ds, v0, v1)
                    else {
                        continue;
                    };
                    for ti in 0..n_bins {
                        let Some(node) = prev_layer[idx(vi, ti)] else {
                            continue;
                        };
                        let t1 = node.time + dur + dwell[i];
                        if t1 > self.config.horizon.value() {
                            continue;
                        }
                        let tj = (t1 / self.config.dt_bin.value()).round() as usize;
                        if tj >= n_bins {
                            continue;
                        }
                        let (penalty, violation) = match station_windows[i] {
                            Some(sc) if !sc.admits(Seconds::new(t1)) => {
                                (self.config.penalty_m, 1)
                            }
                            _ => (0.0, 0),
                        };
                        let cand = Node {
                            cost: node.cost + charge + self.config.time_weight * dur + penalty,
                            time: t1,
                            prev_v: vi as u32,
                            prev_t: ti as u32,
                            violations: node.violations + violation,
                        };
                        let slot = &mut layer[idx(vj, tj)];
                        if slot.map_or(true, |s| cand.cost < s.cost) {
                            *slot = Some(cand);
                        }
                    }
                }
            }
            layers.push(layer);
        }

        // Pick the cheapest terminal state at v = 0.
        let last = &layers[n_stations - 1];
        let mut best: Option<(usize, Node)> = None;
        for ti in 0..n_bins {
            if let Some(node) = last[idx(0, ti)] {
                if best.map_or(true, |(_, b)| node.cost < b.cost) {
                    best = Some((ti, node));
                }
            }
        }
        let (mut ti, terminal) =
            best.ok_or_else(|| Error::infeasible("no kinematically feasible profile"))?;

        // Backtrack.
        let mut speeds_idx = vec![0usize; n_stations];
        let mut times = vec![0.0f64; n_stations];
        let mut vi = 0usize;
        times[n_stations - 1] = terminal.time;
        for i in (1..n_stations).rev() {
            let node = layers[i][idx(vi, ti)].expect("backtrack follows stored parents");
            times[i] = node.time;
            let pv = node.prev_v as usize;
            let pt = node.prev_t as usize;
            speeds_idx[i] = vi;
            vi = pv;
            ti = pt;
        }
        speeds_idx[0] = start_vi;
        times[0] = start_time;

        self.assemble(road, stations, &speeds_idx, &times, terminal.violations as usize)
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_greedy(
        &self,
        road: &Road,
        stations: &[Meters],
        allowed: &[Vec<bool>],
        station_windows: &[Option<&SignalConstraint>],
        dwell: &[f64],
        n_speeds: usize,
        start_vi: usize,
        start_time: f64,
    ) -> Result<OptimizedProfile> {
        let n_stations = stations.len();
        #[derive(Clone, Copy)]
        struct GNode {
            cost: f64,
            time: f64,
            prev_v: u32,
            violations: u32,
        }
        let mut layers: Vec<Vec<Option<GNode>>> = Vec::with_capacity(n_stations);
        let mut first = vec![None; n_speeds];
        first[start_vi] = Some(GNode {
            cost: 0.0,
            time: start_time,
            prev_v: start_vi as u32,
            violations: 0,
        });
        layers.push(first);

        for i in 1..n_stations {
            let ds = stations[i] - stations[i - 1];
            let mut layer: Vec<Option<GNode>> = vec![None; n_speeds];
            for vi in 0..n_speeds {
                if i > 1 && !allowed[i - 1][vi] {
                    continue;
                }
                let Some(node) = layers[i - 1][vi] else {
                    continue;
                };
                let v0 = self.config.dv.value() * vi as f64;
                for (vj, a) in allowed[i].iter().enumerate() {
                    if !a {
                        continue;
                    }
                    let v1 = self.config.dv.value() * vj as f64;
                    let Some((charge, dur)) = self.transition(road, stations[i - 1], ds, v0, v1)
                    else {
                        continue;
                    };
                    let t1 = node.time + dur + dwell[i];
                    if t1 > self.config.horizon.value() {
                        continue;
                    }
                    let (penalty, violation) = match station_windows[i] {
                        Some(sc) if !sc.admits(Seconds::new(t1)) => (self.config.penalty_m, 1),
                        _ => (0.0, 0),
                    };
                    let cand = GNode {
                        cost: node.cost + charge + self.config.time_weight * dur + penalty,
                        time: t1,
                        prev_v: vi as u32,
                        violations: node.violations + violation,
                    };
                    if layer[vj].map_or(true, |s| cand.cost < s.cost) {
                        layer[vj] = Some(cand);
                    }
                }
            }
            layers.push(layer);
        }

        let terminal = layers[n_stations - 1][0]
            .ok_or_else(|| Error::infeasible("no kinematically feasible profile"))?;
        let mut speeds_idx = vec![0usize; n_stations];
        let mut times = vec![0.0f64; n_stations];
        let mut vi = 0usize;
        times[n_stations - 1] = terminal.time;
        for i in (1..n_stations).rev() {
            let node = layers[i][vi].expect("backtrack follows stored parents");
            times[i] = node.time;
            speeds_idx[i] = vi;
            vi = node.prev_v as usize;
        }
        speeds_idx[0] = start_vi;
        times[0] = start_time;
        self.assemble(road, stations, &speeds_idx, &times, terminal.violations as usize)
    }

    fn assemble(
        &self,
        road: &Road,
        stations: &[Meters],
        speeds_idx: &[usize],
        times: &[f64],
        window_violations: usize,
    ) -> Result<OptimizedProfile> {
        let speeds: Vec<MetersPerSecond> = speeds_idx
            .iter()
            .map(|&vi| MetersPerSecond::new(self.config.dv.value() * vi as f64))
            .collect();
        // Recompute energy cleanly (without penalties) along the chosen path.
        let mut total = 0.0;
        for i in 1..stations.len() {
            let ds = stations[i] - stations[i - 1];
            let (charge, _) = self
                .transition(
                    road,
                    stations[i - 1],
                    ds,
                    speeds[i - 1].value(),
                    speeds[i].value(),
                )
                .ok_or_else(|| Error::numeric("assembled profile has an infeasible segment"))?;
            total += charge;
        }
        Ok(OptimizedProfile {
            stations: stations.to_vec(),
            speeds,
            times: times.iter().map(|&t| Seconds::new(t)).collect(),
            total_energy: AmpereHours::new(total),
            trip_time: Seconds::new(times[times.len() - 1] - times[0]),
            window_violations,
        })
    }
}

/// Builds the station grid from `from` in steps of Δs plus the exact road
/// end. A regular station closer than Δs/2 to the end is dropped so the
/// final segment is never degenerately short (a near-zero segment makes any
/// speed change there kinematically impossible).
fn build_stations_from(road: &Road, from: Meters, ds: Meters) -> Vec<Meters> {
    let mut stations = Vec::new();
    let mut x = from.value();
    while x < road.length().value() - 1e-9 {
        stations.push(Meters::new(x));
        x += ds.value();
    }
    if stations.len() > 1
        && (road.length() - stations[stations.len() - 1]).value() < ds.value() / 2.0
    {
        stations.pop();
    }
    stations.push(road.length());
    stations
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::KilometersPerHour;
    use velopt_ev_energy::VehicleParams;
    use velopt_road::RoadBuilder;

    fn optimizer() -> DpOptimizer {
        DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig::default(),
        )
        .unwrap()
    }

    fn simple_road(length: f64) -> Road {
        RoadBuilder::new(Meters::new(length))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(DpConfig {
            ds: Meters::ZERO,
            ..DpConfig::default()
        }
        .validated()
        .is_err());
        assert!(DpConfig {
            a_min: MetersPerSecondSq::new(0.5),
            ..DpConfig::default()
        }
        .validated()
        .is_err());
        assert!(DpConfig {
            penalty_m: 0.0,
            ..DpConfig::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn free_road_profile_is_feasible_and_smooth() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        assert_eq!(profile.window_violations, 0);
        assert_eq!(profile.speeds[0], MetersPerSecond::ZERO);
        assert_eq!(*profile.speeds.last().unwrap(), MetersPerSecond::ZERO);
        // Accelerations stay within comfort bounds.
        for i in 1..profile.stations.len() {
            let ds = (profile.stations[i] - profile.stations[i - 1]).value();
            let a = (profile.speeds[i].value().powi(2)
                - profile.speeds[i - 1].value().powi(2))
                / (2.0 * ds);
            assert!(a <= 2.5 + 1e-6 && a >= -1.5 - 1e-6, "a = {a}");
        }
        // Times are strictly increasing.
        for w in profile.times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(profile.total_energy.value() > 0.0);
    }

    #[test]
    fn respects_max_speed_limit() {
        let road = simple_road(2000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let vmax = road.max_speed_limit().value();
        for v in &profile.speeds {
            assert!(v.value() <= vmax + 1e-9);
        }
    }

    #[test]
    fn stop_sign_forces_zero_speed() {
        let road = RoadBuilder::new(Meters::new(1500.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(700.0))
            .build()
            .unwrap();
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // Station nearest the sign is at 700 (multiple of 20) — speed 0.
        let idx = profile
            .stations
            .iter()
            .position(|&s| (s.value() - 700.0).abs() < 1e-9)
            .unwrap();
        assert_eq!(profile.speeds[idx], MetersPerSecond::ZERO);
    }

    #[test]
    fn window_constraint_shifts_arrival() {
        let road = simple_road(1000.0);
        // Free-run arrival at 500 m.
        let free = optimizer().optimize(&road, &[]).unwrap();
        let t_free = free.arrival_time_at(Meters::new(500.0));
        // Constrain arrival at 500 m to a window well after the free time.
        let w0 = t_free + Seconds::new(15.0);
        let constraint = SignalConstraint {
            position: Meters::new(500.0),
            windows: vec![TimeWindow {
                start: w0,
                end: w0 + Seconds::new(10.0),
            }],
        };
        let constrained = optimizer().optimize(&road, &[constraint.clone()]).unwrap();
        assert_eq!(constrained.window_violations, 0);
        let t_c = constrained.arrival_time_at(Meters::new(500.0));
        assert!(
            constraint.admits(t_c),
            "arrival {t_c} must fall in [{w0}, +10s)"
        );
    }

    #[test]
    fn impossible_window_reports_violation_not_panic() {
        let road = simple_road(600.0);
        // A window that is long past: the EV cannot be that slow within the
        // horizon... use a window before any feasible arrival instead.
        let constraint = SignalConstraint {
            position: Meters::new(400.0),
            windows: vec![TimeWindow {
                start: Seconds::ZERO,
                end: Seconds::new(1.0),
            }],
        };
        let profile = optimizer().optimize(&road, &[constraint]).unwrap();
        assert!(profile.window_violations > 0);
    }

    #[test]
    fn greedy_mode_also_produces_profiles() {
        let road = simple_road(1000.0);
        let opt = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                time_handling: TimeHandling::Greedy,
                ..DpConfig::default()
            },
        )
        .unwrap();
        let profile = opt.optimize(&road, &[]).unwrap();
        assert_eq!(profile.speeds[0], MetersPerSecond::ZERO);
        assert!(profile.trip_time.value() > 0.0);
    }

    #[test]
    fn exact_beats_or_matches_greedy_under_windows() {
        let road = simple_road(1000.0);
        let mk = |th| {
            DpOptimizer::new(
                EnergyModel::new(VehicleParams::spark_ev()),
                DpConfig {
                    time_handling: th,
                    ..DpConfig::default()
                },
            )
            .unwrap()
        };
        let free = mk(TimeHandling::Exact).optimize(&road, &[]).unwrap();
        let t_free = free.arrival_time_at(Meters::new(600.0));
        let constraint = SignalConstraint {
            position: Meters::new(600.0),
            windows: vec![TimeWindow {
                start: t_free + Seconds::new(20.0),
                end: t_free + Seconds::new(28.0),
            }],
        };
        let exact = mk(TimeHandling::Exact)
            .optimize(&road, &[constraint.clone()])
            .unwrap();
        let greedy = mk(TimeHandling::Greedy)
            .optimize(&road, &[constraint])
            .unwrap();
        assert!(exact.window_violations <= greedy.window_violations);
    }

    #[test]
    fn profile_sampling_helpers() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // Position sampling.
        assert_eq!(profile.speed_at_position(Meters::new(-5.0)), profile.speeds[0]);
        let mid = profile.speed_at_position(Meters::new(500.0));
        assert!(mid.value() > 0.0);
        // Time series export covers the trip and ends at rest.
        let series = profile.to_time_series(Seconds::new(0.5)).unwrap();
        assert!(series.duration() >= profile.trip_time - Seconds::new(0.5));
        assert!(series.samples().last().unwrap() < &0.5);
        assert!(profile.to_time_series(Seconds::ZERO).is_err());
        // Distance covered by the series matches the road length.
        let dist = series.integrate();
        assert!(
            (dist - 1000.0).abs() < 30.0,
            "time-series distance {dist} should be ~1000 m"
        );
    }

    #[test]
    fn energy_is_less_than_naive_fast_profile() {
        // The DP should never do worse than a crude bang-bang profile's
        // energy on the same road (it could pick that profile itself).
        let road = simple_road(1500.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // A crude comparison: max accel to vmax, cruise, max brake.
        let e = EnergyModel::new(VehicleParams::spark_ev());
        let vmax = road.max_speed_limit();
        let d_up = vmax.value().powi(2) / (2.0 * 2.5);
        let d_down = vmax.value().powi(2) / (2.0 * 1.5);
        let up = e
            .segment_energy(
                MetersPerSecond::ZERO,
                MetersPerSecondSq::new(2.5),
                Meters::new(d_up),
                road.grade_at(Meters::ZERO),
            )
            .unwrap();
        let cruise = e
            .segment_energy(
                vmax,
                MetersPerSecondSq::ZERO,
                Meters::new(1500.0 - d_up - d_down),
                road.grade_at(Meters::new(750.0)),
            )
            .unwrap();
        let down = e
            .segment_energy(
                vmax,
                MetersPerSecondSq::new(-1.5),
                Meters::new(d_down),
                road.grade_at(Meters::new(1400.0)),
            )
            .unwrap();
        let naive = up.charge.value() + cruise.charge.value() + down.charge.value();
        assert!(
            profile.total_energy.value() <= naive + 1e-6,
            "DP {} vs naive {naive}",
            profile.total_energy.value()
        );
    }
}
