//! The space–velocity(–time) dynamic program (Eq. 7–12).
//!
//! The road is discretized into equal-distance stations `s_i` (Eq. 7's
//! setup). A profile is a speed per station; between stations the vehicle
//! holds the constant acceleration implied by the kinematic relation
//! `v_{i+1}² = v_i² + 2·a·Δs`. The DP searches over discrete speeds at each
//! station for the assignment minimizing total charge consumption.
//!
//! ## Time handling
//!
//! Eq. 10 makes the penalty of Eq. 11 depend on the *arrival time* at a
//! signal station, which depends on the entire path prefix — so a pure
//! (station × speed) DP is not Markovian. The paper glosses over this; we
//! implement both resolutions:
//!
//! * [`TimeHandling::Exact`] *(default)* — the state space is expanded with
//!   a discretized arrival time `(station, v, t-bin)`. This restores the
//!   Markov property at the cost of a larger (still tractable) state space
//!   and is what the headline results use.
//! * [`TimeHandling::Greedy`] — paper-literal: a `(station, v)` DP where
//!   each state remembers the arrival time of its current-best path and the
//!   penalty is evaluated against that single estimate. Cheaper, but the
//!   kept path can be window-infeasible when a slightly costlier prefix
//!   would have hit the window. Offered as an ablation (`bench dp`).
//!
//! ## Penalty form
//!
//! Eq. 12 multiplies the transition cost by a large constant `M` outside
//! `T_q`. With regenerative braking the transition cost can be *negative*,
//! and multiplying a negative cost by `M` would reward violations; we apply
//! the penalty additively (`cost + M`) instead, which preserves Eq. 12's
//! intent for all cost signs. (Documented deviation; see DESIGN.md.)
//!
//! ## Transition memoization
//!
//! Segment energy depends only on `(v_from, v_to, segment length, grade)`,
//! so per solve there are only as many distinct transition structures as
//! there are distinct (quantized) `(length, grade)` segment classes — one
//! on a uniform flat corridor. [`crate::memo`] caches one V×V cost table
//! per class in the [`SolverArena`]; the relaxation loops read the table
//! instead of calling the energy model per candidate, and the cache
//! persists across layers, batch trips and replanning ticks. Costs are
//! evaluated at the snapped class values whether memoization is on or off
//! ([`DpConfig::memo`]), so the two paths are bit-identical; see the
//! [`crate::memo`] docs for the exactness argument.
//!
//! ## Reachability pruning and the cost-to-go bound
//!
//! Before relaxing, the solver intersects a forward acceleration cone from
//! the start state with a backward cone from the terminal (both restricted
//! to `allowed` rows and table-feasible transitions) and skips every
//! `(station, v)` row outside the intersection
//! ([`SolverMetrics::rows_skipped`]). A row outside the cone can neither
//! hold a state nor feed one into a live row, so skipping it leaves the
//! live rows' contents — and the backtracked profile — bit-identical.
//!
//! On top of the masks, Exact mode prunes candidates against a lower bound
//! on their completion cost: an admissible per-row cost-to-go `B(i, v)`
//! from a backward Bellman sweep (folding in the unavoidable penalty `M`
//! at signal stations whose windows the earliest possible arrival already
//! misses), combined with a window-aware arrival-time bound
//! (`window_bounds`) that prices window penalties the cost-to-go cannot
//! see. Every bound term is a pure function of a candidate's DP slot
//! `(station, v, t-bin)`, so within one slot prunability is monotone in
//! cost: if any candidate survives, the slot's winner survives, and
//! pruning can never change a surviving slot's contents.
//!
//! The pruning limit comes from an *aspiration ladder* rather than a
//! single upper bound. The first rungs are optimistic
//! `B(0, v_start) + time_weight·Δ` guesses (Δ = 6 s, 24 s, …, capped by
//! the Greedy presolve's achievable-path cost); the ladder ends with the
//! greedy bound and finally `None` (unbounded). Each rung is *verified*:
//! the sweep's terminal cost must not exceed the rung, otherwise the rung
//! undercut the optimum (or time-bin merging legitimately pushed the DP
//! value past the greedy path cost) and the solver retries with the next,
//! looser rung. A failing rung costs one heavily pruned — therefore cheap
//! — sweep; a passing rung certifies that every slot that can reach a
//! terminal within the limit was relaxed identically to the unbounded
//! sweep, so the returned profile is bit-identical to the unpruned one
//! (see DESIGN.md for the full argument). The rung schedule is fixed and
//! data-independent, so the work counters remain deterministic across
//! thread counts and memoization settings.
//!
//! ## Parallelism and determinism
//!
//! Layer relaxation is parallelized across contiguous blocks of
//! target-speed rows of the speed×time-bin grid ([`DpConfig::threads`]),
//! executed by a persistent worker team ([`crate::par::team_scope`]) that
//! is spawned once per solve rather than once per layer. Each block is a
//! disjoint `&mut` slice relaxed by exactly one thread, and within a row
//! candidates are visited in the same order as the sequential loop (source
//! speed ascending, then time bin ascending) with ties broken by the same
//! strict `<`, so the solved profile is **bit-identical** for every thread
//! count. All pruning decisions (masks, bounds, spans) are computed before
//! the fan-out and are independent of the chunk geometry, so the state
//! counters in [`SolverMetrics`] are thread-count-invariant too.

use crate::arena::{LayerPool, LeaseStats};
use crate::memo::{ClassKey, CostTable, MemoStats, TransitionTable};
use crate::metrics::SolverMetrics;
use crate::par;
use crate::simd;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use velopt_common::units::{AmpereHours, Meters, MetersPerSecond, MetersPerSecondSq, Seconds};
use velopt_common::{Error, Result, TimeSeries};
use velopt_ev_energy::{EnergyModel, GridSpec};
use velopt_queue::TimeWindow;
use velopt_road::Road;

/// How arrival times are tracked for the queue-window penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeHandling {
    /// Time-expanded state space `(station, v, t-bin)` — exact.
    Exact,
    /// Paper-literal `(station, v)` with greedy per-state arrival times.
    Greedy,
}

/// Discretization and penalty settings for the DP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Station spacing Δs.
    pub ds: Meters,
    /// Speed grid resolution.
    pub dv: MetersPerSecond,
    /// Arrival-time bin width (Exact mode only).
    pub dt_bin: Seconds,
    /// Planning horizon: arrival times beyond this are pruned.
    pub horizon: Seconds,
    /// Comfort deceleration bound (negative).
    pub a_min: MetersPerSecondSq,
    /// Comfort acceleration bound (positive).
    pub a_max: MetersPerSecondSq,
    /// The additive window penalty `M` (must dominate any trip energy).
    pub penalty_m: f64,
    /// Time spent serving an interior stop sign (come to rest, check,
    /// launch), added to the arrival clock at every stop-sign station. The
    /// DP's kinematic profile touches `v = 0` only instantaneously; real
    /// sign service (and the microscopic simulator's) costs several
    /// seconds, and arrival-time accuracy at downstream lights depends on
    /// accounting for it.
    pub stop_dwell: Seconds,
    /// Value of time in the blended objective, in Ah per second.
    ///
    /// With a pure-physics energy model the slowest legal speed is always
    /// the cheapest, which would (a) weld the optimum to `v_min` leaving no
    /// slack to *delay* an arrival into a queue-free window and (b)
    /// contradict the paper's own profiles (Fig. 6 cruises around 60 km/h,
    /// and §III-B-3 reports the optimized trip matching the fast driver's
    /// time). The default of 3 mAh/s places the free-cruise optimum near
    /// 60 km/h for the Spark EV. Reported energies are always the raw
    /// charge, never the blended cost.
    pub time_weight: f64,
    /// Time-tracking mode.
    pub time_handling: TimeHandling,
    /// Worker threads for layer relaxation: `0` = one per available core,
    /// `1` = sequential. The solved profile is bit-identical for every
    /// value (see the module docs), so this is purely a throughput knob.
    pub threads: usize,
    /// Whether to reuse transition-cost tables from the arena cache
    /// (default `true`). With `false` every solve rebuilds its tables from
    /// the energy model — same results bit-for-bit, no sharing; kept as an
    /// ablation/verification knob (`SolverMetrics::memo_misses` then counts
    /// every per-layer build).
    pub memo: bool,
    /// Whether the relax loops may use the AVX2 microkernels when the host
    /// supports them (default `true`). The portable fallback is
    /// bit-identical (see the crate-private `simd` module), so this — like the
    /// `VELOPT_DP_SIMD` env override that also forces the portable path —
    /// is purely an A/B benchmarking and CI-coverage knob.
    #[serde(default = "default_simd")]
    pub simd: bool,
}

/// Serde default for [`DpConfig::simd`]: configs serialized before the
/// knob existed deserialize with SIMD enabled.
fn default_simd() -> bool {
    true
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            ds: Meters::new(20.0),
            dv: MetersPerSecond::new(1.0),
            dt_bin: Seconds::new(1.0),
            horizon: Seconds::new(900.0),
            a_min: MetersPerSecondSq::new(-1.5),
            a_max: MetersPerSecondSq::new(2.5),
            penalty_m: 1.0e6,
            stop_dwell: Seconds::new(5.5),
            time_weight: 0.003,
            time_handling: TimeHandling::Exact,
            threads: 0,
            memo: true,
            simd: default_simd(),
        }
    }
}

impl DpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any resolution is non-positive,
    /// the acceleration interval is empty or mis-signed, or the penalty is
    /// not positive.
    pub fn validated(self) -> Result<Self> {
        if self.ds.value() <= 0.0 || self.dv.value() <= 0.0 || self.dt_bin.value() <= 0.0 {
            return Err(Error::invalid_input("DP resolutions must be positive"));
        }
        if self.horizon.value() <= 0.0 {
            return Err(Error::invalid_input("horizon must be positive"));
        }
        if self.a_min.value() >= 0.0 || self.a_max.value() <= 0.0 {
            return Err(Error::invalid_input(
                "need a_min < 0 < a_max for a drivable profile",
            ));
        }
        if self.penalty_m <= 0.0 {
            return Err(Error::invalid_input("penalty M must be positive"));
        }
        if self.time_weight < 0.0 {
            return Err(Error::invalid_input("time weight must be non-negative"));
        }
        if self.stop_dwell.value() < 0.0 {
            return Err(Error::invalid_input("stop dwell must be non-negative"));
        }
        Ok(self)
    }
}

/// Arrival-time windows attached to a position on the road (a traffic
/// light's stop line). The DP penalizes arriving at the nearest station
/// outside every window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalConstraint {
    /// Stop-line position.
    pub position: Meters,
    /// Allowed arrival windows (queue-free greens for our method, whole
    /// greens for the baseline DP).
    pub windows: Vec<TimeWindow>,
}

impl SignalConstraint {
    /// Whether an arrival at `t` satisfies the constraint.
    pub fn admits(&self, t: Seconds) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }
}

/// Where (and how fast, and when) the optimization starts.
///
/// The default is the paper's setting: at the corridor origin, at rest, at
/// `t = 0`. A mid-trip state enables **closed-loop replanning**: after the
/// EV has been perturbed (a slow platoon, an unexpected queue), re-run the
/// DP from its live state against the same absolute-time windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartState {
    /// Current position along the corridor.
    pub position: Meters,
    /// Current speed.
    pub speed: MetersPerSecond,
    /// Current absolute time (the windows' clock).
    pub time: Seconds,
}

impl Default for StartState {
    fn default() -> Self {
        Self {
            position: Meters::ZERO,
            speed: MetersPerSecond::ZERO,
            time: Seconds::ZERO,
        }
    }
}

/// The optimizer output: a station-indexed speed/time profile plus summary
/// metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizedProfile {
    /// Station positions (first = 0, last = road length).
    pub stations: Vec<Meters>,
    /// Speed at each station.
    pub speeds: Vec<MetersPerSecond>,
    /// Arrival time at each station.
    pub times: Vec<Seconds>,
    /// Net charge drawn over the whole trip.
    pub total_energy: AmpereHours,
    /// Trip duration (arrival time at the last station).
    pub trip_time: Seconds,
    /// Number of signal stations whose arrival fell outside every window
    /// (0 = fully feasible plan).
    pub window_violations: usize,
    /// How the solver got here: state counts, phase timings, arena reuse.
    /// Excluded from equality — see the `PartialEq` impl below.
    pub metrics: SolverMetrics,
}

/// Equality is over the *plan*, not the solve: two profiles describing the
/// same trajectory compare equal even if one came from the cache (or a
/// different thread count) and has different timings in `metrics`.
impl PartialEq for OptimizedProfile {
    fn eq(&self, other: &Self) -> bool {
        self.stations == other.stations
            && self.speeds == other.speeds
            && self.times == other.times
            && self.total_energy == other.total_energy
            && self.trip_time == other.trip_time
            && self.window_violations == other.window_violations
    }
}

impl OptimizedProfile {
    /// Speed as a function of position (linear interpolation of `v²`, which
    /// is exact for constant-acceleration segments).
    ///
    /// Positions outside the road clamp to the endpoint speeds.
    pub fn speed_at_position(&self, x: Meters) -> MetersPerSecond {
        let xs = &self.stations;
        if x <= xs[0] {
            return self.speeds[0];
        }
        if x >= xs[xs.len() - 1] {
            return self.speeds[self.speeds.len() - 1];
        }
        let idx = xs.partition_point(|&s| s <= x);
        let (x0, x1) = (xs[idx - 1].value(), xs[idx].value());
        let (v0, v1) = (self.speeds[idx - 1].value(), self.speeds[idx].value());
        let f = ((x.value() - x0) / (x1 - x0)).clamp(0.0, 1.0);
        MetersPerSecond::new((v0 * v0 + f * (v1 * v1 - v0 * v0)).max(0.0).sqrt())
    }

    /// The profile as a uniform speed-vs-time series (speed is linear in
    /// time on constant-acceleration segments).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `dt` is non-positive.
    pub fn to_time_series(&self, dt: Seconds) -> Result<TimeSeries> {
        if dt.value() <= 0.0 {
            return Err(Error::invalid_input("sample step must be positive"));
        }
        let n = (self.trip_time.value() / dt.value()).ceil() as usize;
        TimeSeries::sample_fn(Seconds::ZERO, dt, n, |t| {
            let t = t.min(self.trip_time);
            // Find the segment containing t.
            let idx = self.times.partition_point(|&u| u <= t);
            if idx == 0 {
                return self.speeds[0].value();
            }
            if idx >= self.times.len() {
                return self.speeds[self.speeds.len() - 1].value();
            }
            let (t0, t1) = (self.times[idx - 1], self.times[idx]);
            let (v0, v1) = (self.speeds[idx - 1].value(), self.speeds[idx].value());
            let span = (t1 - t0).value();
            if span <= 0.0 {
                return v1;
            }
            let f = ((t - t0).value() / span).clamp(0.0, 1.0);
            v0 + f * (v1 - v0)
        })
    }

    /// Arrival time at the station nearest to `x`.
    pub fn arrival_time_at(&self, x: Meters) -> Seconds {
        let idx = nearest_index(&self.stations, x);
        self.times[idx]
    }
}

/// Index of the station nearest to `x` by binary search (stations are
/// sorted ascending). Exact midpoints resolve to the lower station — the
/// same winner the old linear scan's strict `<` produced.
fn nearest_index(stations: &[Meters], x: Meters) -> usize {
    debug_assert!(!stations.is_empty());
    let hi = stations.partition_point(|&s| s < x);
    if hi == 0 {
        return 0;
    }
    if hi == stations.len() {
        return stations.len() - 1;
    }
    let lo = hi - 1;
    let d_lo = (x - stations[lo]).abs().value();
    let d_hi = (stations[hi] - x).abs().value();
    if d_hi < d_lo {
        hi
    } else {
        lo
    }
}

/// Certified lower bounds on a full corridor traversal, from
/// [`DpOptimizer::edge_bound`]. Both floors are admissible for any
/// departure time and signal windows: no feasible profile over the
/// corridor can consume less charge or arrive sooner. Infinite floors mean
/// no table-admissible speed chain exists at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeBound {
    /// Floor on the battery charge consumed (can be negative on net
    /// regenerative corridors).
    pub energy_floor: AmpereHours,
    /// Floor on the traversal duration, including mandatory stop dwells.
    pub duration_floor: Seconds,
}

impl EdgeBound {
    /// The floor on the solver's blended objective
    /// `charge + time_weight · duration` (window penalties are bounded
    /// below by zero and excluded).
    pub fn cost_floor(&self, time_weight: f64) -> f64 {
        self.energy_floor.value() + time_weight * self.duration_floor.value()
    }
}

/// The DP optimizer.
///
/// See the crate-level example; the full pipeline that builds the
/// [`SignalConstraint`]s lives in [`crate::pipeline`].
#[derive(Debug, Clone)]
pub struct DpOptimizer {
    energy: EnergyModel,
    config: DpConfig,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    cost: f64,
    /// Continuous arrival time carried alongside the bin to avoid drift.
    time: f64,
    prev_v: u32,
    prev_t: u32,
    violations: u32,
}

/// Greedy-mode state: like [`Node`] without the time-bin dimension.
#[derive(Debug, Clone, Copy)]
struct GNode {
    cost: f64,
    time: f64,
    prev_v: u32,
    violations: u32,
}

/// Reusable solver scratch: the DP layer stacks, backtrack buffers and the
/// cross-solve transition-cost cache.
///
/// `optimize_from` allocates these afresh on every call; a caller that
/// solves repeatedly (the [`Replanner`](crate::replan::Replanner) tick
/// loop, [batch planning](crate::batch)) should hold one arena and use
/// [`DpOptimizer::optimize_from_with`] so the second and later solves
/// reuse the first solve's buffers **and** its memoized cost tables. The
/// resulting profile is identical either way; only the arena and memo
/// counters in [`SolverMetrics`] differ.
#[derive(Debug, Clone, Default)]
pub struct SolverArena {
    exact: LayerPool<Option<Node>>,
    exact_dirty: Option<DirtyLog>,
    greedy: LayerPool<Option<GNode>>,
    speeds_idx: Vec<usize>,
    times: Vec<f64>,
    transitions: TransitionTable,
    repair: Option<RepairState>,
}

/// Physical write log for the pooled Exact layer stack: per layer, per
/// speed row, the inclusive time-bin span of slots that may hold `Some`
/// since the stack was last fully refilled. An Exact sweep touches ~1% of
/// the `n_stations × n_speeds × n_bins` stack, so the vectorized solver
/// path resets a sweep by clearing only the logged spans instead of
/// rewriting every slot (`reset_exact_layers`) — by far the solver's
/// largest memory traffic. Both dispatch flavors *maintain* the log (a
/// span union per relaxed layer, a few hundred words), so scalar and AVX2
/// solves can interleave on one arena; only the reset strategy differs,
/// and a shape change or a missing log falls back to the full refill.
///
/// Correctness invariant: every slot outside the logged spans is `None`.
/// Spans are merged into the log as layers are relaxed — before any
/// infeasible/verification early-return — so the invariant holds even for
/// failed sweeps.
/// Inclusive occupied/written time-bin span per `(layer, speed row)`;
/// `None` = untouched. Shared by the arena's [`DirtyLog`], the retained
/// [`RepairState::spans`], and the relax sweep's span log.
type BinSpans = Vec<Vec<Option<(u32, u32)>>>;

#[derive(Debug, Clone)]
struct DirtyLog {
    /// `(n_speeds, n_bins)` of every tracked layer. The *layer count* is
    /// deliberately not part of the shape: replanning mid-trip shrinks and
    /// grows the station count from solve to solve, and a solve needing
    /// `n ≤ spans.len()` layers can still sparse-reset the first `n`
    /// tracked buffers. A solve needing more layers than the log tracks
    /// falls back to the full refill (pooled buffers beyond the tracked
    /// set have unknown contents).
    rows_shape: (usize, usize),
    /// `spans[layer][row]` — inclusive written-bin span, `None` = clean.
    spans: BinSpans,
}

impl DirtyLog {
    /// A log for a freshly refilled (all-`None`) stack.
    fn clean(n_stations: usize, n_speeds: usize, n_bins: usize) -> Self {
        Self {
            rows_shape: (n_speeds, n_bins),
            spans: vec![vec![None; n_speeds]; n_stations],
        }
    }

    /// Whether the log covers a sparse reset of `n_stations` layers of
    /// this row shape.
    fn covers(&self, n_stations: usize, n_speeds: usize, n_bins: usize) -> bool {
        self.rows_shape == (n_speeds, n_bins) && self.spans.len() >= n_stations
    }

    /// Widens `spans[layer][row]` to cover `[lo, hi]`.
    fn merge(&mut self, layer: usize, row: usize, lo: u32, hi: u32) {
        let slot = &mut self.spans[layer][row];
        *slot = Some(match *slot {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }

    /// The safe over-approximation for a stack whose write history is
    /// unknown: every row fully dirty, so the next sparse clear degrades
    /// to a full refill instead of missing a stale slot.
    fn all_dirty(n_stations: usize, n_speeds: usize, n_bins: usize) -> Self {
        Self {
            rows_shape: (n_speeds, n_bins),
            spans: vec![vec![Some((0, (n_bins - 1) as u32)); n_speeds]; n_stations],
        }
    }
}

/// Hands back an all-`None` Exact layer stack. The portable path refills
/// the whole pool ([`LayerPool::take_layers`]); the vectorized path, when
/// the dirty log covers the pooled stack's writes, clears only the logged
/// spans — equivalent by the [`DirtyLog`] invariant, at a small fraction
/// of the memory traffic. Either way the returned stack is bit-for-bit the
/// all-`None` stack, and the log is left clean.
fn reset_exact_layers<'p>(
    pool: &'p mut LayerPool<Option<Node>>,
    dirty: &mut Option<DirtyLog>,
    use_simd: bool,
    n_stations: usize,
    n_speeds: usize,
    n_bins: usize,
) -> (&'p mut [Vec<Option<Node>>], LeaseStats) {
    let len = n_speeds * n_bins;
    let sparse = use_simd
        && dirty
            .as_ref()
            .is_some_and(|log| log.covers(n_stations, n_speeds, n_bins))
        && pool.can_resume(n_stations, len);
    if sparse {
        let layers = pool
            .resume_layers(n_stations, len)
            .expect("can_resume verified the shape");
        let log = dirty.as_mut().expect("the sparse path checked for a log");
        for (layer, rows) in layers.iter_mut().zip(log.spans[..n_stations].iter_mut()) {
            for (vi, span) in rows.iter_mut().enumerate() {
                if let Some((lo, hi)) = span.take() {
                    layer[vi * n_bins + lo as usize..=vi * n_bins + hi as usize].fill(None);
                }
            }
        }
        let stats = LeaseStats {
            reuse_hits: n_stations as u64,
            allocations: 0,
        };
        telemetry::add("arena.reuse_hits", stats.reuse_hits);
        return (layers, stats);
    }
    let (layers, stats) = pool.take_layers(n_stations, len, None);
    *dirty = Some(DirtyLog::clean(n_stations, n_speeds, n_bins));
    (layers, stats)
}

/// Everything a warm-started window refresh needs to reuse the previous
/// solve ([`DpOptimizer::optimize_windows_refresh`]): the *window-free*
/// pruning floors, each retained layer's occupied-bin spans, the windows
/// the retention sweep was solved under, its certified pruning limit, and
/// the resulting profile. The retained layer contents themselves stay in
/// the arena's exact [`LayerPool`] (repair resumes them in place), which
/// is why any direct solve through the same arena invalidates this state.
#[derive(Debug, Clone)]
struct RepairState {
    /// Fingerprint of everything the retained solve depended on *except*
    /// the windows: physics, lattice, station grid, speed masks, dwell
    /// times, and the start state. A refresh with a different signature
    /// cannot reuse the layers.
    signature: u64,
    /// Per-station windows of the retained solve (`None` = no signal).
    /// The diff against a refresh's windows yields the dirty-layer set.
    windows: Vec<Option<Vec<TimeWindow>>>,
    /// Reachability mask (window-independent).
    live: Vec<Vec<bool>>,
    /// `rows_skipped` of the retained solve (window-independent).
    rows_skipped: u64,
    /// Window-free joint cost-to-go (`cost_to_go` with no dead stations).
    b_free: Vec<Vec<f64>>,
    /// Energy-only cost-to-go (window-free by construction).
    emin: Vec<Vec<f64>>,
    /// Window-free arrival-time bound (`window_bounds` with no windows).
    wait_free: Vec<Vec<f64>>,
    /// Occupied time-bin span per `(layer, speed row)` of the retained
    /// sweep; `spans[d - 1]` seeds a repair that re-relaxes from layer
    /// `d`.
    spans: BinSpans,
    /// The rung the retention sweep was certified under (`None` =
    /// unbounded). Repairs relax with this same limit and re-verify.
    limit: Option<f64>,
    /// The retained solve's profile, returned as-is on a zero-diff
    /// refresh.
    profile: OptimizedProfile,
    /// Time-bin count of the retained layers.
    n_bins: usize,
}

impl SolverArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct segment classes currently cached in the
    /// transition-cost table.
    pub fn cached_classes(&self) -> usize {
        self.transitions.classes()
    }
}

/// Everything the relaxation loops need, borrowed once per solve.
struct SolveCtx<'a> {
    stations: &'a [Meters],
    /// Per-segment cost table: `tables[i - 1]` covers `stations[i-1] →
    /// stations[i]`.
    tables: &'a [&'a CostTable],
    /// Per-segment snapped lengths (same indexing), used for the
    /// acceleration bands so memoized and direct solves share every float.
    layer_ds: &'a [f64],
    allowed: &'a [Vec<bool>],
    station_windows: &'a [Option<&'a SignalConstraint>],
    dwell: &'a [f64],
    n_speeds: usize,
    start_vi: usize,
    start_time: f64,
}

/// The road-and-start-dependent solve geometry built by
/// [`DpOptimizer::prepare`]: validated start indices, the station grid,
/// speed masks, per-station windows and dwell times, and each segment's
/// quantized class spec. Everything here is window-signature material for
/// a refresh; the cost tables themselves are resolved separately (they
/// depend on the arena's memo cache).
struct Prepared<'a> {
    stations: Vec<Meters>,
    station_windows: Vec<Option<&'a SignalConstraint>>,
    allowed: Vec<Vec<bool>>,
    dwell: Vec<f64>,
    layer_ds: Vec<f64>,
    specs: Vec<(ClassKey, GridSpec)>,
    n_speeds: usize,
    start_vi: usize,
    start_time: f64,
}

impl Prepared<'_> {
    /// Borrows the geometry (plus the caller-resolved cost tables) as the
    /// relax loops' [`SolveCtx`].
    fn ctx<'t>(&'t self, tables: &'t [&'t CostTable]) -> SolveCtx<'t> {
        SolveCtx {
            stations: &self.stations,
            tables,
            layer_ds: &self.layer_ds,
            allowed: &self.allowed,
            station_windows: &self.station_windows,
            dwell: &self.dwell,
            n_speeds: self.n_speeds,
            start_vi: self.start_vi,
            start_time: self.start_time,
        }
    }
}

/// Per-layer read-only inputs shared by every relax tile of one chunk:
/// the layer's clock/penalty parameters, its live mask, and (Exact mode
/// only) the slot-uniform lower-bound tables plus the current aspiration
/// rung. Slices are indexed by *global* target-speed index / time bin.
struct RelaxEnv<'a> {
    horizon: f64,
    dt_bin: f64,
    dwell: f64,
    penalty_m: f64,
    limit: Option<f64>,
    window: Option<&'a SignalConstraint>,
    live: &'a [bool],
    ctg: &'a [f64],
    emin: &'a [f64],
    wait: &'a [f64],
}

/// Per-chunk relax counters, merged into [`SolverMetrics`] by the caller.
/// The state counters are chunk-geometry-invariant (candidates are counted
/// per candidate, table-infeasible pairs once per pair); the kernel-row
/// counters are not (tile fragmentation depends on the chunk boundaries)
/// and stay observability-only.
#[derive(Debug, Default, Clone, Copy)]
struct ChunkCounters {
    expanded: u64,
    pruned: u64,
    simd_rows: u64,
    scalar_rows: u64,
}

/// Relaxes one gathered Exact-mode source group — states of a single
/// source speed `vi`, time bins ascending — over this chunk's share
/// `[lo, lo + charge_row.len())` of its target band, tile by tile.
///
/// The cost/arrival tiles come from [`simd::relax_tile`] (AVX2 or the
/// bit-identical portable kernel); the winner pass stays scalar and visits
/// candidates for any fixed slot `(vj, tj)` in exactly the sequential
/// order (`vi` ascending from the caller's loop, `ti` ascending within
/// and across groups), so the strict `<` keeps the same winner as the
/// pre-SIMD loop. Table-infeasible lanes (NaN duration) were counted as
/// pruned once per `(vi, vj)` pair by the caller and are skipped here
/// without counting, exactly like the old per-pair `table.get` miss.
#[allow(clippy::too_many_arguments)]
fn relax_exact_group(
    use_simd: bool,
    tw: f64,
    vi: u32,
    charge_row: &[f64],
    dur_row: &[f64],
    srcs: &[simd::TileSrc],
    metas: &[(u32, u32)],
    lo: usize,
    row0: usize,
    n_bins: usize,
    env: &RelaxEnv<'_>,
    chunk: &mut [Option<Node>],
    row_spans: &mut [Option<(u32, u32)>],
    counters: &mut ChunkCounters,
) {
    let n_lanes = charge_row.len();
    let mut out = simd::TileOut::new();
    let mut j0 = 0usize;
    while j0 < n_lanes {
        let n = simd::NR.min(n_lanes - j0);
        let went_simd = simd::relax_tile(
            use_simd,
            &charge_row[j0..j0 + n],
            &dur_row[j0..j0 + n],
            srcs,
            tw,
            env.dwell,
            n,
            &mut out,
        );
        if went_simd {
            counters.simd_rows += srcs.len() as u64;
        } else {
            counters.scalar_rows += srcs.len() as u64;
        }
        // Indexed on purpose: the `metas[..].iter().enumerate()` form
        // measurably deoptimizes this loop (~15-20% on the batch bench).
        #[allow(clippy::needless_range_loop)]
        for r in 0..srcs.len() {
            let (ti, violations) = metas[r];
            for j in 0..n {
                let vj = lo + j0 + j;
                if !env.live[vj] || dur_row[j0 + j].is_nan() {
                    continue;
                }
                let t1 = out.t1[r][j];
                if t1 > env.horizon {
                    counters.pruned += 1;
                    continue;
                }
                let tj = (t1 / env.dt_bin).round() as usize;
                if tj >= n_bins {
                    counters.pruned += 1;
                    continue;
                }
                let (penalty, violation) = match env.window {
                    Some(sc) if !sc.admits(Seconds::new(t1)) => (env.penalty_m, 1),
                    _ => (0.0, 0),
                };
                let cost = out.cost[r][j] + penalty;
                if let Some(limit) = env.limit {
                    // Slot-uniform completion lower bound — see
                    // `window_bounds` for why pruning on it can never
                    // change a surviving slot's winner.
                    let floor = env.ctg[vj].max(env.emin[vj] + env.wait[tj]);
                    if cost + floor > limit {
                        counters.pruned += 1;
                        continue;
                    }
                }
                counters.expanded += 1;
                let slot = &mut chunk[(vj - row0) * n_bins + tj];
                if slot.is_none_or(|s| cost < s.cost) {
                    *slot = Some(Node {
                        cost,
                        time: t1,
                        prev_v: vi,
                        prev_t: ti,
                        violations: violations + violation,
                    });
                    let span = &mut row_spans[vj - row0];
                    *span = Some(match *span {
                        None => (tj as u32, tj as u32),
                        Some((s_lo, s_hi)) => (s_lo.min(tj as u32), s_hi.max(tj as u32)),
                    });
                }
            }
        }
        j0 += n;
    }
}

/// Mixes everything the cached cost tables depend on besides the segment
/// class itself: the energy physics and the velocity/acceleration lattice.
fn table_signature(energy: &EnergyModel, config: &DpConfig, n_speeds: usize) -> u64 {
    let mut h = energy.fingerprint();
    for bits in [
        config.dv.value().to_bits(),
        n_speeds as u64,
        config.a_min.value().to_bits(),
        config.a_max.value().to_bits(),
    ] {
        h ^= bits;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Mixes everything a retained repair stack depends on *except* the
/// arrival windows: the table signature (physics + lattice), the station
/// grid, each segment's snapped geometry, the speed masks, dwell times,
/// the start state, and the clock/penalty parameters. Two refreshes with
/// equal signatures relax identical DP graphs up to their windows, so the
/// window diff alone decides which layers a repair must redo. (Knobs that
/// provably cannot change the solved bits — `threads`, `memo`, `simd` —
/// are deliberately left out.)
fn refresh_signature(energy: &EnergyModel, config: &DpConfig, prep: &Prepared<'_>) -> u64 {
    fn mix(h: &mut u64, bits: u64) {
        *h ^= bits;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut h = table_signature(energy, config, prep.n_speeds);
    for s in &prep.stations {
        mix(&mut h, s.value().to_bits());
    }
    for (i, (_, spec)) in prep.specs.iter().enumerate() {
        mix(&mut h, prep.layer_ds[i].to_bits());
        mix(&mut h, spec.grade.value().to_bits());
    }
    for d in &prep.dwell {
        mix(&mut h, d.to_bits());
    }
    for row in &prep.allowed {
        for &a in row {
            mix(&mut h, a as u64 + 1);
        }
    }
    mix(&mut h, prep.start_vi as u64);
    mix(&mut h, prep.start_time.to_bits());
    mix(&mut h, config.horizon.value().to_bits());
    mix(&mut h, config.dt_bin.value().to_bits());
    mix(&mut h, config.penalty_m.to_bits());
    mix(&mut h, config.time_weight.to_bits());
    h
}

/// The cheapest Exact-mode terminal state: the best occupied `v = 0` time
/// bin of the last layer, with its bin index.
fn exact_terminal(last: &[Option<Node>], n_bins: usize) -> Option<(usize, Node)> {
    let mut best: Option<(usize, Node)> = None;
    for (ti, slot) in last[..n_bins].iter().enumerate() {
        if let Some(node) = slot {
            if best.is_none_or(|(_, b)| node.cost < b.cost) {
                best = Some((ti, *node));
            }
        }
    }
    best
}

/// Walks the winning terminal's parent links back to the start, filling
/// `speeds_idx`/`times` (station-indexed).
fn backtrack_exact(
    ctx: &SolveCtx<'_>,
    layers: &[Vec<Option<Node>>],
    n_bins: usize,
    terminal_ti: usize,
    terminal: Node,
    speeds_idx: &mut Vec<usize>,
    times: &mut Vec<f64>,
) -> Result<()> {
    let n_stations = ctx.stations.len();
    speeds_idx.clear();
    speeds_idx.resize(n_stations, 0);
    times.clear();
    times.resize(n_stations, 0.0);
    let mut vi = 0usize;
    let mut ti = terminal_ti;
    times[n_stations - 1] = terminal.time;
    for i in (1..n_stations).rev() {
        let node = layers[i][vi * n_bins + ti].ok_or_else(|| {
            Error::infeasible("backtrack lost its parent state (inconsistent DP layers)")
        })?;
        times[i] = node.time;
        let pv = node.prev_v as usize;
        let pt = node.prev_t as usize;
        speeds_idx[i] = vi;
        vi = pv;
        ti = pt;
    }
    speeds_idx[0] = ctx.start_vi;
    times[0] = ctx.start_time;
    Ok(())
}

/// Forward/backward reachability over `(station, speed)` rows: a row is
/// *live* iff some acceleration-feasible chain connects the start state to
/// it **and** it to the terminal rest state. Returns the live mask and the
/// number of `allowed` rows the masks retired.
///
/// Skipping non-live rows is exact: a state can only exist in a
/// forward-reachable row, and a candidate into a live target from a
/// backward-dead source is impossible (a feasible transition into a
/// backward-live row makes the source backward-live by definition), so the
/// live rows' layer contents are bit-identical to an unmasked sweep.
fn reachability(ctx: &SolveCtx<'_>) -> (Vec<Vec<bool>>, u64) {
    let n_stations = ctx.stations.len();
    let n = ctx.n_speeds;
    let mut fwd = vec![vec![false; n]; n_stations];
    fwd[0][ctx.start_vi] = true;
    for i in 1..n_stations {
        let table = ctx.tables[i - 1];
        for u in 0..n {
            if !ctx.allowed[i][u] {
                continue;
            }
            fwd[i][u] = (0..n).any(|v| fwd[i - 1][v] && table.get(v, u).is_some());
        }
    }
    let mut bwd = vec![vec![false; n]; n_stations];
    bwd[n_stations - 1][0] = true;
    for i in (0..n_stations - 1).rev() {
        let table = ctx.tables[i];
        for v in 0..n {
            let gate = if i == 0 {
                v == ctx.start_vi
            } else {
                ctx.allowed[i][v]
            };
            if !gate {
                continue;
            }
            bwd[i][v] = (0..n).any(|u| bwd[i + 1][u] && table.get(v, u).is_some());
        }
    }
    let mut live = vec![vec![false; n]; n_stations];
    let mut skipped = 0u64;
    for i in 0..n_stations {
        for v in 0..n {
            live[i][v] = fwd[i][v] && bwd[i][v];
            if i > 0 && ctx.allowed[i][v] && !live[i][v] {
                skipped += 1;
            }
        }
    }
    (live, skipped)
}

/// Safety slack on the arrival-time cone: a window is only declared
/// unreachable if it closes at least this far before the earliest possible
/// arrival, so float-association differences between the cone sweep and
/// the DP's own time accumulation can never mislabel a reachable window.
const CONE_SLACK: f64 = 1e-6;

impl DpOptimizer {
    /// Creates an optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the configuration is invalid.
    pub fn new(energy: EnergyModel, config: DpConfig) -> Result<Self> {
        Ok(Self {
            energy,
            config: config.validated()?,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Runs the optimization over `road` with the given per-signal arrival
    /// windows, from the corridor origin at rest at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no profile satisfies the hard
    /// kinematic constraints (window violations are soft: they surface as
    /// `window_violations > 0`, not an error).
    pub fn optimize(&self, road: &Road, signals: &[SignalConstraint]) -> Result<OptimizedProfile> {
        self.optimize_from(road, signals, StartState::default())
    }

    /// Runs the optimization from an arbitrary mid-trip state (closed-loop
    /// replanning). Window times stay on the absolute clock `start.time`
    /// lives on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the start state lies outside the
    /// corridor or the planning horizon, and [`Error::Infeasible`] if no
    /// profile satisfies the hard kinematic constraints from that state.
    pub fn optimize_from(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
        start: StartState,
    ) -> Result<OptimizedProfile> {
        let mut arena = SolverArena::new();
        self.optimize_from_with(road, signals, start, &mut arena)
    }

    /// [`optimize_from`](Self::optimize_from) with caller-owned scratch
    /// storage, for hot loops that solve repeatedly: layer buffers **and
    /// memoized transition-cost tables** are recycled across calls instead
    /// of reallocated/recomputed. The profile is identical to the
    /// arena-less call; only the arena and memo counters in its
    /// [`metrics`](OptimizedProfile::metrics) differ.
    ///
    /// # Errors
    ///
    /// Same contract as [`optimize_from`](Self::optimize_from).
    pub fn optimize_from_with(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
        start: StartState,
        arena: &mut SolverArena,
    ) -> Result<OptimizedProfile> {
        let _solve_span = telemetry::span("dp.optimize_seconds");
        let setup_started = Instant::now();
        let prep = self.prepare(road, signals, start)?;
        let SolverArena {
            exact,
            exact_dirty,
            greedy,
            speeds_idx,
            times,
            transitions,
            repair,
        } = arena;
        // A direct solve clobbers the layer pools, so any retained repair
        // state no longer describes their contents.
        *repair = None;
        let (owned_tables, memo_ids, mut metrics) =
            self.resolve_tables(&prep, transitions, setup_started);
        let tables: Vec<&CostTable> = if self.config.memo {
            memo_ids.iter().map(|&id| transitions.table(id)).collect()
        } else {
            owned_tables.iter().collect()
        };
        let ctx = prep.ctx(&tables);
        let result = match self.config.time_handling {
            TimeHandling::Exact => self.solve_exact(
                &ctx,
                exact,
                exact_dirty,
                greedy,
                speeds_idx,
                times,
                &mut metrics,
            ),
            TimeHandling::Greedy => {
                self.solve_greedy(&ctx, greedy, speeds_idx, times, &mut metrics)
            }
        };
        match &result {
            Ok(profile) => profile.metrics.publish(),
            Err(_) => telemetry::add("dp.failed_solves", 1),
        }
        result
    }

    /// Validates the start state and builds the road-and-start-dependent
    /// solve geometry shared by [`optimize_from_with`](Self::optimize_from_with)
    /// and [`optimize_windows_refresh`](Self::optimize_windows_refresh).
    fn prepare<'a>(
        &self,
        road: &Road,
        signals: &'a [SignalConstraint],
        start: StartState,
    ) -> Result<Prepared<'a>> {
        if !road.contains(start.position) || start.position >= road.length() {
            return Err(Error::invalid_input(
                "start position must lie strictly inside the corridor",
            ));
        }
        if start.speed.value() < 0.0 {
            return Err(Error::invalid_input("start speed must be non-negative"));
        }
        if start.time.value() < 0.0 || start.time >= self.config.horizon {
            return Err(Error::invalid_input(
                "start time must be within [0, horizon)",
            ));
        }
        let stations = build_stations_from(road, start.position, self.config.ds);
        let n_stations = stations.len();
        let v_max_global = road.max_speed_limit();
        let n_speeds = (v_max_global.value() / self.config.dv.value()).floor() as usize + 1;
        let start_vi =
            ((start.speed.value() / self.config.dv.value()).round() as usize).min(n_speeds - 1);

        // Mandatory stop stations: stop signs still ahead, the destination,
        // and — only when departing from rest at the origin — the source.
        let mut must_stop = vec![false; n_stations];
        for stop in road.mandatory_stops() {
            if stop > start.position {
                must_stop[nearest_index(&stations, stop)] = true;
            }
        }
        if start.position == Meters::ZERO && start_vi == 0 {
            must_stop[0] = true;
        }

        // Signal windows snapped to stations (only lights still ahead).
        let mut station_windows: Vec<Option<&SignalConstraint>> = vec![None; n_stations];
        for sc in signals {
            if sc.position > start.position {
                station_windows[nearest_index(&stations, sc.position)] = Some(sc);
            }
        }

        // Minimum-speed lower bound (Eq. 7a). Near a mandatory stop the hard
        // bound `v >= v_min(s)` is physically impossible (the EV must launch
        // from and brake to rest), so the bound tapers with the distance δ
        // to the nearest stop as `min(v_min, sqrt(2·a_floor·δ))`: the EV must
        // make at least gentle (0.5 m/s²) average progress away from stops.
        // Without this taper-floor the energy objective degenerates into
        // crawling (slower is always cheaper when time is unpriced).
        const LAUNCH_FLOOR: f64 = 0.5;
        let mut stop_positions: Vec<f64> = (0..n_stations)
            .filter(|&i| must_stop[i])
            .map(|i| stations[i].value())
            .collect();
        // The start is a taper anchor too: a replanning call may begin at
        // any speed, and the profile must be allowed to recover from it.
        stop_positions.push(start.position.value());

        let allowed: Vec<Vec<bool>> = (0..n_stations)
            .map(|i| {
                let x = stations[i];
                let (lim_min, lim_max) = road.speed_limits_at(x);
                let delta = stop_positions
                    .iter()
                    .map(|&p| (p - x.value()).abs())
                    .fold(f64::INFINITY, f64::min);
                let floor = lim_min.value().min((2.0 * LAUNCH_FLOOR * delta).sqrt());
                (0..n_speeds)
                    .map(|vi| {
                        let v = self.config.dv.value() * vi as f64;
                        if must_stop[i] {
                            return vi == 0;
                        }
                        if v > lim_max.value() + 1e-9 {
                            return false;
                        }
                        // One grid cell of tolerance below the taper floor so
                        // a coarse grid cannot render the corridor infeasible.
                        if v + self.config.dv.value() + 1e-9 < floor {
                            return false;
                        }
                        true
                    })
                    .collect()
            })
            .collect();

        // Interior mandatory stops (stop signs) cost service time; the
        // source and destination do not.
        let dwell: Vec<f64> = (0..n_stations)
            .map(|i| {
                if must_stop[i] && i != 0 && i != n_stations - 1 {
                    self.config.stop_dwell.value()
                } else {
                    0.0
                }
            })
            .collect();

        // Quantize each segment to its transition class. The table itself
        // is resolved later, against the arena's memo cache, by
        // `resolve_tables`.
        let mut layer_ds = Vec::with_capacity(n_stations - 1);
        let mut specs = Vec::with_capacity(n_stations - 1);
        for i in 1..n_stations {
            let ds = stations[i] - stations[i - 1];
            let grade = road.grade_at(stations[i - 1] + ds * 0.5);
            let (key, length, grade) = ClassKey::quantize(ds, grade);
            layer_ds.push(length.value());
            specs.push((
                key,
                GridSpec {
                    dv: self.config.dv,
                    n_speeds,
                    distance: length,
                    grade,
                    a_min: self.config.a_min,
                    a_max: self.config.a_max,
                },
            ));
        }
        Ok(Prepared {
            stations,
            station_windows,
            allowed,
            dwell,
            layer_ds,
            specs,
            n_speeds,
            start_vi,
            start_time: start.time.value(),
        })
    }

    /// Resolves every segment's V×V transition-cost table against the
    /// arena memo cache (or builds them outright when memoization is off)
    /// and seeds the solve metrics with the setup accounting. Exactly one
    /// of the returned vectors is non-empty: memo class ids when
    /// `config.memo`, owned tables otherwise — the caller assembles the
    /// `&CostTable` slice from whichever applies, keeping the borrows on
    /// its own stack frame.
    fn resolve_tables(
        &self,
        prep: &Prepared<'_>,
        transitions: &mut TransitionTable,
        setup_started: Instant,
    ) -> (Vec<CostTable>, Vec<usize>, SolverMetrics) {
        transitions.reconcile(table_signature(&self.energy, &self.config, prep.n_speeds));
        let mut stats = MemoStats::default();
        let mut owned_tables = Vec::new();
        let mut memo_ids = Vec::new();
        if self.config.memo {
            memo_ids = prep
                .specs
                .iter()
                .map(|(key, spec)| transitions.class_for(*key, &self.energy, spec, &mut stats))
                .collect();
        } else {
            owned_tables = prep
                .specs
                .iter()
                .map(|(_, spec)| {
                    let (table, evals) = CostTable::build(&self.energy, spec);
                    stats.misses += 1;
                    stats.energy_evals += evals;
                    table
                })
                .collect();
        }
        let metrics = SolverMetrics {
            setup_seconds: setup_started.elapsed().as_secs_f64(),
            memo_hits: stats.hits,
            memo_misses: stats.misses,
            energy_evals: stats.energy_evals,
            ..SolverMetrics::default()
        };
        (owned_tables, memo_ids, metrics)
    }

    /// A window-only re-solve through the arena's retained repair state:
    /// behaviorally identical to
    /// [`optimize_from_with`](Self::optimize_from_with) — bit-identical
    /// profile, same error contract — but when only the arrival windows
    /// changed since the previous refresh through the same arena, the
    /// solver keeps the previous layer stack and re-relaxes only the
    /// layers from the first station whose windows differ
    /// ([`SolverMetrics::repair_hits`] /
    /// [`SolverMetrics::repair_layers_skipped`]). Any other change —
    /// road, start state, physics, lattice — or a failed revalidation
    /// falls back to a full retention solve
    /// ([`SolverMetrics::repair_full_resolves`]), which re-arms the
    /// repair state for the next refresh. Greedy time handling has no
    /// layer stack worth retaining and delegates to `optimize_from_with`
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Same contract as [`optimize_from`](Self::optimize_from).
    pub fn optimize_windows_refresh(
        &self,
        road: &Road,
        signals: &[SignalConstraint],
        start: StartState,
        arena: &mut SolverArena,
    ) -> Result<OptimizedProfile> {
        if self.config.time_handling == TimeHandling::Greedy {
            return self.optimize_from_with(road, signals, start, arena);
        }
        let _solve_span = telemetry::span("dp.optimize_seconds");
        let setup_started = Instant::now();
        let prep = self.prepare(road, signals, start)?;
        let SolverArena {
            exact,
            exact_dirty,
            greedy,
            speeds_idx,
            times,
            transitions,
            repair,
        } = arena;
        let (owned_tables, memo_ids, mut metrics) =
            self.resolve_tables(&prep, transitions, setup_started);
        let tables: Vec<&CostTable> = if self.config.memo {
            memo_ids.iter().map(|&id| transitions.table(id)).collect()
        } else {
            owned_tables.iter().collect()
        };
        let sig = refresh_signature(&self.energy, &self.config, &prep);
        let ctx = prep.ctx(&tables);
        let result = self.solve_exact_refresh(
            &ctx,
            exact,
            exact_dirty,
            greedy,
            speeds_idx,
            times,
            &mut metrics,
            repair,
            sig,
        );
        match &result {
            Ok(profile) => profile.metrics.publish(),
            Err(_) => telemetry::add("dp.failed_solves", 1),
        }
        result
    }

    /// Certified lower bounds on any full traversal of `road` from the
    /// origin at rest: a floor on the battery charge and a floor on the
    /// travel duration (including mandatory stop dwells), without running
    /// the full time-expanded DP.
    ///
    /// The energy floor is the solver's `emin` cost-to-go evaluated at the
    /// start state — the minimum charge over every chain of
    /// table-admissible transitions, a superset of the
    /// acceleration-feasible paths, so no real profile can consume less.
    /// The duration floor sums each segment's minimum table duration plus
    /// the interior stop dwells; window penalties are bounded below by
    /// zero. Both floors therefore stay admissible for *any* departure
    /// time and any signal windows, which is what lets the router prune
    /// with them before committing to a full solve (see
    /// [`crate::route`]).
    ///
    /// Cost: one V×V table per distinct segment class — resolved from the
    /// arena's transition memo, so bounding many edges that share corridor
    /// classes builds each table once — plus two `O(stations · V²)`
    /// sweeps. No layer buffers are touched; the arena's retained repair
    /// state survives.
    ///
    /// An edge with no table-admissible chain (e.g. a corridor whose
    /// limits make every transition infeasible) reports infinite floors
    /// rather than an error.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the corridor itself is
    /// degenerate (same validation as [`optimize`](Self::optimize)).
    pub fn edge_bound_with(&self, road: &Road, arena: &mut SolverArena) -> Result<EdgeBound> {
        let setup_started = Instant::now();
        let prep = self.prepare(road, &[], StartState::default())?;
        let (owned_tables, memo_ids, _metrics) =
            self.resolve_tables(&prep, &mut arena.transitions, setup_started);
        let tables: Vec<&CostTable> = if self.config.memo {
            memo_ids
                .iter()
                .map(|&id| arena.transitions.table(id))
                .collect()
        } else {
            owned_tables.iter().collect()
        };
        let n_stations = prep.stations.len();
        let n_speeds = prep.n_speeds;

        // Energy-only cost-to-go, exactly as `window_bounds` computes it —
        // the profile must terminate at rest (`v = 0`).
        let mut emin_next = vec![f64::INFINITY; n_speeds];
        let mut emin_here = vec![f64::INFINITY; n_speeds];
        emin_next[0] = 0.0;
        for i in (0..n_stations - 1).rev() {
            let table = tables[i];
            for (vi, slot) in emin_here.iter_mut().enumerate() {
                let mut best = f64::INFINITY;
                for (vj, &e) in emin_next.iter().enumerate() {
                    if !e.is_finite() {
                        continue;
                    }
                    if let Some((charge, _)) = table.get(vi, vj) {
                        best = best.min(charge + e);
                    }
                }
                *slot = best;
            }
            std::mem::swap(&mut emin_next, &mut emin_here);
        }
        let energy_floor = emin_next[prep.start_vi];

        // Minimum traversal duration: per-segment duration envelope over
        // every admitted transition, plus interior stop dwells.
        let mut duration_floor: f64 = prep.dwell.iter().sum();
        for table in &tables {
            let mut dmin = f64::INFINITY;
            for v in 0..n_speeds {
                for u in 0..n_speeds {
                    if let Some((_, dur)) = table.get(v, u) {
                        dmin = dmin.min(dur);
                    }
                }
            }
            duration_floor += dmin;
        }
        Ok(EdgeBound {
            energy_floor: AmpereHours::new(energy_floor),
            duration_floor: Seconds::new(duration_floor),
        })
    }

    /// [`edge_bound_with`](Self::edge_bound_with) with a throwaway arena.
    ///
    /// # Errors
    ///
    /// Same contract as [`edge_bound_with`](Self::edge_bound_with).
    pub fn edge_bound(&self, road: &Road) -> Result<EdgeBound> {
        let mut arena = SolverArena::new();
        self.edge_bound_with(road, &mut arena)
    }

    /// Exact-mode refresh dispatch: try, in order, a zero-diff cache hit,
    /// an incremental dirty-suffix repair, and the full retention solve.
    #[allow(clippy::too_many_arguments)]
    fn solve_exact_refresh(
        &self,
        ctx: &SolveCtx<'_>,
        exact_pool: &mut LayerPool<Option<Node>>,
        exact_dirty: &mut Option<DirtyLog>,
        greedy_pool: &mut LayerPool<Option<GNode>>,
        speeds_idx: &mut Vec<usize>,
        times: &mut Vec<f64>,
        metrics: &mut SolverMetrics,
        repair: &mut Option<RepairState>,
        sig: u64,
    ) -> Result<OptimizedProfile> {
        let n_stations = ctx.stations.len();
        let n_bins = (self.config.horizon.value() / self.config.dt_bin.value()).ceil() as usize + 1;
        let new_windows: Vec<Option<Vec<TimeWindow>>> = ctx
            .station_windows
            .iter()
            .map(|o| o.map(|sc| sc.windows.clone()))
            .collect();
        if let Some(state) = repair.as_mut() {
            if state.signature == sig && state.n_bins == n_bins && state.windows.len() == n_stations
            {
                match (0..n_stations).find(|&i| state.windows[i] != new_windows[i]) {
                    None => {
                        // Nothing moved: the retained profile *is* the
                        // answer (it was certified bit-identical to a
                        // from-scratch solve under these exact windows).
                        metrics.threads_used = par::effective_threads(self.config.threads);
                        metrics.rows_skipped = state.rows_skipped;
                        metrics.repair_hits += 1;
                        metrics.repair_layers_skipped += (n_stations - 1) as u64;
                        let mut profile = state.profile.clone();
                        profile.metrics = *metrics;
                        return Ok(profile);
                    }
                    // Station 0 sits behind the start and never carries a
                    // window, so a dirty index is ≥ 1 in practice — which
                    // is also what the resume needs (layer 0 is the seed).
                    Some(d) if d >= 1 => {
                        if let Some(profile) = self.try_repair(
                            ctx,
                            exact_pool,
                            exact_dirty,
                            speeds_idx,
                            times,
                            metrics,
                            state,
                            &new_windows,
                            d,
                            n_bins,
                        ) {
                            return Ok(profile);
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        metrics.repair_full_resolves += 1;
        self.solve_exact_retained(
            ctx,
            exact_pool,
            exact_dirty,
            greedy_pool,
            speeds_idx,
            times,
            metrics,
            repair,
            sig,
            new_windows,
            n_bins,
        )
    }

    /// Attempts the incremental repair: resume the retained layer stack,
    /// wipe and re-relax layers `d..` under the retained *window-free*
    /// floors and certified limit, and re-verify the terminal against
    /// that limit. Layers before `d` are exactly what a from-scratch
    /// bounded sweep under the new windows would compute — they depend
    /// only on windows at stations `< d` (unchanged, `d` is the first
    /// diff) and on the floors/limit (window-independent) — so a passing
    /// verification certifies the repaired profile bit-identical to a
    /// from-scratch solve. Returns `None` whenever that proof does not go
    /// through (resume shape mismatch, terminal over the limit, or no
    /// terminal at all); the caller then runs the authoritative full
    /// retention solve.
    #[allow(clippy::too_many_arguments)]
    fn try_repair(
        &self,
        ctx: &SolveCtx<'_>,
        exact_pool: &mut LayerPool<Option<Node>>,
        exact_dirty: &mut Option<DirtyLog>,
        speeds_idx: &mut Vec<usize>,
        times: &mut Vec<f64>,
        metrics: &mut SolverMetrics,
        state: &mut RepairState,
        new_windows: &[Option<Vec<TimeWindow>>],
        d: usize,
        n_bins: usize,
    ) -> Option<OptimizedProfile> {
        let relax_started = Instant::now();
        let n_stations = ctx.stations.len();
        let use_simd = simd::dispatch(self.config.simd);
        let layers = exact_pool.resume_layers(n_stations, ctx.n_speeds * n_bins)?;
        // Wipe the dirty suffix. The vectorized path clears only the
        // logged spans (see [`DirtyLog`]); a missing or reshaped log
        // degrades to `all_dirty`, making the sparse clear a full one.
        if !exact_dirty
            .as_ref()
            .is_some_and(|log| log.covers(n_stations, ctx.n_speeds, n_bins))
        {
            *exact_dirty = Some(DirtyLog::all_dirty(n_stations, ctx.n_speeds, n_bins));
        }
        let dirty_log = exact_dirty.as_mut().expect("installed just above");
        for (layer, rows) in layers[d..]
            .iter_mut()
            .zip(dirty_log.spans[d..n_stations].iter_mut())
        {
            if use_simd {
                for (vi, span) in rows.iter_mut().enumerate() {
                    if let Some((lo, hi)) = span.take() {
                        layer[vi * n_bins + lo as usize..=vi * n_bins + hi as usize].fill(None);
                    }
                }
            } else {
                layer.fill(None);
                rows.fill(None);
            }
        }
        let threads = par::effective_threads(self.config.threads);
        metrics.threads_used = threads;
        metrics.rows_skipped = state.rows_skipped;
        let mut span_log = state.spans.clone();
        span_log.truncate(d);
        let best = par::team_scope(threads, |team| {
            self.relax_exact_layers(
                ctx,
                team,
                layers,
                d,
                state.spans[d - 1].clone(),
                &state.live,
                &state.b_free,
                &state.emin,
                &state.wait_free,
                state.limit,
                n_bins,
                use_simd,
                metrics,
                dirty_log,
                Some(&mut span_log),
            );
            exact_terminal(&layers[n_stations - 1], n_bins)
        });
        let (ti, terminal) = best?;
        if let Some(limit) = state.limit {
            // Same certification as a ladder rung: the repaired sweep is
            // provably lossless only while its value stays under the
            // retained limit.
            if terminal.cost > limit {
                return None;
            }
        }
        metrics.relax_seconds = relax_started.elapsed().as_secs_f64();
        let backtrack_started = Instant::now();
        backtrack_exact(ctx, layers, n_bins, ti, terminal, speeds_idx, times).ok()?;
        metrics.backtrack_seconds = backtrack_started.elapsed().as_secs_f64();
        metrics.repair_hits += 1;
        metrics.repair_layers_skipped += (d - 1) as u64;
        let profile = match self.assemble(
            ctx,
            speeds_idx,
            times,
            terminal.violations as usize,
            *metrics,
        ) {
            Ok(profile) => profile,
            Err(_) => {
                metrics.repair_hits -= 1;
                metrics.repair_layers_skipped -= (d - 1) as u64;
                return None;
            }
        };
        state.windows = new_windows.to_vec();
        state.spans = span_log;
        state.profile = profile.clone();
        Some(profile)
    }

    /// A full Exact solve that *retains* its layer stack for later window
    /// repairs: identical result to [`solve_exact`](Self::solve_exact),
    /// except the pruning floors are computed window-free (`cost_to_go`
    /// with no cone-dead stations, `window_bounds` against no windows) so
    /// they stay admissible under any later window shift, the aspiration
    /// ladder starts at correspondingly looser rungs, and the winning
    /// rung's layer spans, floors, limit and profile are stored in the
    /// arena as [`RepairState`].
    #[allow(clippy::too_many_arguments)]
    fn solve_exact_retained(
        &self,
        ctx: &SolveCtx<'_>,
        exact_pool: &mut LayerPool<Option<Node>>,
        exact_dirty: &mut Option<DirtyLog>,
        greedy_pool: &mut LayerPool<Option<GNode>>,
        speeds_idx: &mut Vec<usize>,
        times: &mut Vec<f64>,
        metrics: &mut SolverMetrics,
        repair: &mut Option<RepairState>,
        sig: u64,
        new_windows: Vec<Option<Vec<TimeWindow>>>,
        n_bins: usize,
    ) -> Result<OptimizedProfile> {
        // A failed solve must not leave a stale snapshot behind.
        *repair = None;
        let relax_started = Instant::now();
        let n_stations = ctx.stations.len();
        let (live, rows_skipped) = reachability(ctx);
        metrics.rows_skipped = rows_skipped;
        if !live[0][ctx.start_vi] {
            return Err(Error::infeasible("no kinematically feasible profile"));
        }
        let no_dead = vec![false; n_stations];
        let b_free = self.cost_to_go(ctx, &live, &no_dead);
        let none_windows: Vec<Option<&SignalConstraint>> = vec![None; n_stations];
        let ctx_free = SolveCtx {
            stations: ctx.stations,
            tables: ctx.tables,
            layer_ds: ctx.layer_ds,
            allowed: ctx.allowed,
            station_windows: &none_windows,
            dwell: ctx.dwell,
            n_speeds: ctx.n_speeds,
            start_vi: ctx.start_vi,
            start_time: ctx.start_time,
        };
        let (emin, wait_free) =
            self.window_bounds(&ctx_free, n_bins, simd::dispatch(self.config.simd));
        let mut span_log: BinSpans = Vec::new();
        let (profile, limit) = self.solve_exact_core(
            ctx,
            exact_pool,
            exact_dirty,
            greedy_pool,
            speeds_idx,
            times,
            metrics,
            &live,
            &b_free,
            &emin,
            &wait_free,
            // Window-free floors undercut window-forced waiting, so the
            // tight 6/24 s rungs would rarely certify; start looser.
            &[96.0, 384.0],
            n_bins,
            Some(&mut span_log),
            relax_started,
        )?;
        *repair = Some(RepairState {
            signature: sig,
            windows: new_windows,
            live,
            rows_skipped,
            b_free,
            emin,
            wait_free,
            spans: span_log,
            limit,
            profile: profile.clone(),
            n_bins,
        });
        Ok(profile)
    }
}

impl DpOptimizer {
    /// Stations whose every arrival window is provably unreachable: the
    /// earliest possible arrival (a min-plus sweep of the duration tables
    /// over live rows) already postdates each window's close, or the window
    /// opens beyond the horizon. Every surviving path pays `M` there, so
    /// the cost-to-go bound may charge it unconditionally.
    fn cone_dead(&self, ctx: &SolveCtx<'_>, live: &[Vec<bool>]) -> Vec<bool> {
        let n_stations = ctx.stations.len();
        let n = ctx.n_speeds;
        let horizon = self.config.horizon.value();
        let mut dead = vec![false; n_stations];
        let mut tmin_prev = vec![f64::INFINITY; n];
        tmin_prev[ctx.start_vi] = ctx.start_time;
        for i in 1..n_stations {
            let table = ctx.tables[i - 1];
            let mut tmin = vec![f64::INFINITY; n];
            let mut global = f64::INFINITY;
            for (u, slot) in tmin.iter_mut().enumerate() {
                if !live[i][u] {
                    continue;
                }
                let mut best = f64::INFINITY;
                for v in 0..n {
                    if !live[i - 1][v] && i > 1 {
                        continue;
                    }
                    if tmin_prev[v].is_infinite() {
                        continue;
                    }
                    if let Some((_, dur)) = table.get(v, u) {
                        // Same association as the DP's arrival clock.
                        let t = (tmin_prev[v] + dur) + ctx.dwell[i];
                        best = best.min(t);
                    }
                }
                *slot = best;
                global = global.min(best);
            }
            if let Some(sc) = ctx.station_windows[i] {
                dead[i] = sc
                    .windows
                    .iter()
                    .all(|w| w.end.value() <= global - CONE_SLACK || w.start.value() > horizon);
            }
            tmin_prev = tmin;
        }
        dead
    }

    /// Slot-uniform lower bounds on the cost a state still has to pay.
    ///
    /// `emin[i][v]` is the energy-only cost-to-go through the transition
    /// tables (terminating at `v = 0`), and `wait[i][b]` lower-bounds the
    /// time-weighted remaining travel time *plus the window penalties at
    /// stations past `i`* for any state whose arrival time falls in time
    /// bin `b`. The bounded relax prunes a candidate when
    /// `cost + max(B, emin + wait)` exceeds the current upper bound; the
    /// `wait` term is what prices future window-induced slowdowns (and
    /// outright unreachable windows) that the joint cost-to-go `B` cannot
    /// see.
    ///
    /// Every input to `wait` is quantized to whole time bins with a
    /// conservative one-bin widening, so the combined bound is a pure
    /// function of a candidate's DP slot `(station, speed, time bin)`:
    /// all candidates competing for one slot carry the same bound. If any
    /// of them survives the prune, the cheapest one does too — so pruning
    /// can never change a surviving slot's winner, which is what keeps
    /// bounded sweeps bit-identical to the unbounded sweep (see the
    /// module docs).
    fn window_bounds(
        &self,
        ctx: &SolveCtx<'_>,
        n_bins: usize,
        use_simd: bool,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n_stations = ctx.stations.len();
        let n_speeds = ctx.n_speeds;
        let dt = self.config.dt_bin.value();
        let tw = self.config.time_weight;

        // Energy-only cost-to-go over the transition tables.
        let mut emin = vec![vec![f64::INFINITY; n_speeds]; n_stations];
        emin[n_stations - 1][0] = 0.0;
        for i in (0..n_stations - 1).rev() {
            let table = ctx.tables[i];
            let (rest, done) = emin.split_at_mut(i + 1);
            let next = &done[0];
            for (vi, slot) in rest[i].iter_mut().enumerate() {
                let mut best = f64::INFINITY;
                for (vj, &e) in next.iter().enumerate() {
                    if !e.is_finite() {
                        continue;
                    }
                    if let Some((charge, _)) = table.get(vi, vj) {
                        best = best.min(charge + e);
                    }
                }
                *slot = best;
            }
        }

        // Per-segment duration envelope over every transition the table
        // admits — a superset of the acceleration-feasible ones, so the
        // time bounds below hold for every real path.
        let seg: Vec<(f64, f64)> = (0..n_stations - 1)
            .map(|j| {
                let table = ctx.tables[j];
                let mut dmin = f64::INFINITY;
                let mut dmax = f64::NEG_INFINITY;
                for v in 0..ctx.n_speeds {
                    for u in 0..ctx.n_speeds {
                        if let Some((_, dur)) = table.get(v, u) {
                            dmin = dmin.min(dur);
                            dmax = dmax.max(dur);
                        }
                    }
                }
                (dmin, dmax)
            })
            .collect();

        // Backward sweep over (station, arrival-time bin). A bin's value
        // is the cheapest `tw·duration + penalty` chain over successor
        // bins, where the duration is bounded below by both the segment
        // envelope and the bin gap (less one bin of quantization slack),
        // and a successor bin pays `penalty_m` only when *no* time inside
        // it is admitted by the station's windows. The successor range is
        // widened by one bin on each side so it covers every arrival the
        // exact-time relax can produce from this bin.
        let mut wait = vec![vec![0.0f64; n_bins]; n_stations];
        for i in (0..n_stations - 1).rev() {
            let (dmin, dmax) = seg[i];
            let dw = ctx.dwell[i + 1];
            let pen: Vec<f64> = (0..n_bins)
                .map(|b| match ctx.station_windows[i + 1] {
                    Some(sc) => {
                        let lo = b as f64 * dt - 0.5 * dt - CONE_SLACK;
                        let hi = b as f64 * dt + 0.5 * dt + CONE_SLACK;
                        let admitted = sc
                            .windows
                            .iter()
                            .any(|w| w.start.value() <= hi && w.end.value() >= lo);
                        if admitted {
                            0.0
                        } else {
                            self.config.penalty_m
                        }
                    }
                    None => 0.0,
                })
                .collect();
            let (rest, done) = wait.split_at_mut(i + 1);
            let next = &done[0];
            let here = &mut rest[i];
            for (b, slot) in here.iter_mut().enumerate() {
                let t = b as f64 * dt;
                let lo = (((t + dmin + dw) / dt) - 1.0).floor().max(0.0) as usize;
                let hi = ((((t + dmax + dw) / dt) + 1.0).ceil()).min((n_bins - 1) as f64) as usize;
                let hi = hi.min(n_bins - 1);
                *slot = if lo > hi {
                    f64::INFINITY
                } else {
                    // This stencil fold is the hot loop of the bound
                    // precompute; the AVX2 flavor is bit-identical (see
                    // `simd::wait_stencil_min`).
                    simd::wait_stencil_min(
                        use_simd, next, &pen, lo, hi, b, dt, dw, CONE_SLACK, tw, dmin,
                    )
                };
            }
        }
        (emin, wait)
    }

    /// Admissible cost-to-go `B(i, v)`: a backward Bellman sweep over live
    /// rows of `charge + time_weight·duration` per step, plus `M` for
    /// steps into cone-dead signal stations. `B` never exceeds any real
    /// suffix cost (penalties at non-dead stations are bounded below by
    /// zero), so `prefix + B > upper bound` certifies a candidate cannot
    /// start the winning suffix.
    fn cost_to_go(&self, ctx: &SolveCtx<'_>, live: &[Vec<bool>], dead: &[bool]) -> Vec<Vec<f64>> {
        let n_stations = ctx.stations.len();
        let n = ctx.n_speeds;
        let tw = self.config.time_weight;
        let mut b = vec![vec![f64::INFINITY; n]; n_stations];
        b[n_stations - 1][0] = 0.0;
        for i in (0..n_stations - 1).rev() {
            let table = ctx.tables[i];
            let step_pen = if dead[i + 1] {
                self.config.penalty_m
            } else {
                0.0
            };
            let (rest, done) = b.split_at_mut(i + 1);
            let b_next = &done[0];
            let b_here = &mut rest[i];
            for (v, slot) in b_here.iter_mut().enumerate() {
                if !live[i][v] {
                    continue;
                }
                let mut best = f64::INFINITY;
                for (u, &b_u) in b_next.iter().enumerate() {
                    if !live[i + 1][u] || b_u.is_infinite() {
                        continue;
                    }
                    if let Some((charge, dur)) = table.get(v, u) {
                        best = best.min(charge + tw * dur + step_pen + b_u);
                    }
                }
                *slot = best;
            }
        }
        b
    }

    /// Relaxes every greedy layer in place (seeding layer 0 itself) and
    /// returns the relax counters. Shared by Greedy-mode solves and the
    /// Exact solver's upper-bound presolve. The cost/time accumulation
    /// uses the exact float expressions of the Exact relax, so a greedy
    /// terminal cost is a *bit-exact* achievable-path cost.
    ///
    /// The inner loop runs source-speed-outer over SoA cost rows so each
    /// source state is relaxed over `NR`-lane target tiles
    /// ([`simd::relax_tile`]); for a fixed slot `vj` candidates still
    /// arrive in source-speed-ascending order exactly as in the historical
    /// sequential loop (same winners under the strict `<`).
    fn relax_greedy(
        &self,
        ctx: &SolveCtx<'_>,
        layers: &mut [Vec<Option<GNode>>],
        team: &par::Team<'_>,
    ) -> ChunkCounters {
        let n_stations = ctx.stations.len();
        let horizon = self.config.horizon.value();
        let tw = self.config.time_weight;
        let use_simd = simd::dispatch(self.config.simd);
        let rows_per_chunk = ctx.n_speeds.div_ceil(team.workers());
        layers[0][ctx.start_vi] = Some(GNode {
            cost: 0.0,
            time: ctx.start_time,
            prev_v: ctx.start_vi as u32,
            violations: 0,
        });
        let mut total = ChunkCounters::default();
        for i in 1..n_stations {
            let table = ctx.tables[i - 1];
            let (done, rest) = layers.split_at_mut(i);
            let prev_layer: &[Option<GNode>] = &done[i - 1];
            let layer: &mut Vec<Option<GNode>> = &mut rest[0];

            // A block of target-speed rows per chunk.
            let counters =
                team.map_chunks(layer.as_mut_slice(), rows_per_chunk, |offset, chunk| {
                    let n_rows = chunk.len();
                    let mut c = ChunkCounters::default();
                    let mut out = simd::TileOut::new();
                    for (vi, prev) in prev_layer.iter().enumerate() {
                        if i > 1 && !ctx.allowed[i - 1][vi] {
                            continue;
                        }
                        let Some(node) = *prev else {
                            continue;
                        };
                        let charge_row = &table.charges(vi)[offset..offset + n_rows];
                        let dur_row = &table.durations(vi)[offset..offset + n_rows];
                        let srcs = [simd::TileSrc {
                            cost: node.cost,
                            time: node.time,
                        }];
                        let mut j0 = 0usize;
                        while j0 < n_rows {
                            let n = simd::NR.min(n_rows - j0);
                            let went_simd = simd::relax_tile(
                                use_simd,
                                &charge_row[j0..j0 + n],
                                &dur_row[j0..j0 + n],
                                &srcs,
                                tw,
                                ctx.dwell[i],
                                n,
                                &mut out,
                            );
                            if went_simd {
                                c.simd_rows += 1;
                            } else {
                                c.scalar_rows += 1;
                            }
                            for j in 0..n {
                                let vj = offset + j0 + j;
                                if !ctx.allowed[i][vj] {
                                    continue;
                                }
                                if dur_row[j0 + j].is_nan() {
                                    // Table-infeasible pair, like the old
                                    // per-pair `table.get` miss.
                                    c.pruned += 1;
                                    continue;
                                }
                                let t1 = out.t1[0][j];
                                if t1 > horizon {
                                    c.pruned += 1;
                                    continue;
                                }
                                let (penalty, violation) = match ctx.station_windows[i] {
                                    Some(sc) if !sc.admits(Seconds::new(t1)) => {
                                        (self.config.penalty_m, 1)
                                    }
                                    _ => (0.0, 0),
                                };
                                let cand = GNode {
                                    cost: out.cost[0][j] + penalty,
                                    time: t1,
                                    prev_v: vi as u32,
                                    violations: node.violations + violation,
                                };
                                c.expanded += 1;
                                let slot = &mut chunk[j0 + j];
                                if slot.is_none_or(|s| cand.cost < s.cost) {
                                    *slot = Some(cand);
                                }
                            }
                            j0 += n;
                        }
                    }
                    c
                });
            for c in counters {
                total.expanded += c.expanded;
                total.pruned += c.pruned;
                total.simd_rows += c.simd_rows;
                total.scalar_rows += c.scalar_rows;
            }
        }
        total
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_exact(
        &self,
        ctx: &SolveCtx<'_>,
        exact_pool: &mut LayerPool<Option<Node>>,
        exact_dirty: &mut Option<DirtyLog>,
        greedy_pool: &mut LayerPool<Option<GNode>>,
        speeds_idx: &mut Vec<usize>,
        times: &mut Vec<f64>,
        metrics: &mut SolverMetrics,
    ) -> Result<OptimizedProfile> {
        let relax_started = Instant::now();
        let n_bins = (self.config.horizon.value() / self.config.dt_bin.value()).ceil() as usize + 1;

        // Reachability masks (exact — see `reachability`). If the start row
        // cannot reach the terminal at all, no sweep can succeed.
        let (live, rows_skipped) = reachability(ctx);
        metrics.rows_skipped = rows_skipped;
        if !live[0][ctx.start_vi] {
            return Err(Error::infeasible("no kinematically feasible profile"));
        }
        let dead = self.cone_dead(ctx, &live);
        let ctg = self.cost_to_go(ctx, &live, &dead);
        let (emin, wait) = self.window_bounds(ctx, n_bins, simd::dispatch(self.config.simd));
        self.solve_exact_core(
            ctx,
            exact_pool,
            exact_dirty,
            greedy_pool,
            speeds_idx,
            times,
            metrics,
            &live,
            &ctg,
            &emin,
            &wait,
            &[6.0, 24.0, 96.0, 384.0],
            n_bins,
            None,
            relax_started,
        )
        .map(|(profile, _)| profile)
    }

    /// The ladder-driven Exact sweep over caller-supplied masks and floor
    /// tables. `slacks` parameterizes the optimistic aspiration rungs (a
    /// window-refresh retention sweep uses looser ones, so its certified
    /// limit survives window shifts); when `span_log` is given, the
    /// *winning* rung's occupied-bin spans are recorded per layer (layer 0
    /// first) so a later repair can resume relaxation mid-stack. Returns
    /// the profile together with the rung it was certified under
    /// (`None` = unbounded).
    #[allow(clippy::too_many_arguments)]
    fn solve_exact_core(
        &self,
        ctx: &SolveCtx<'_>,
        exact_pool: &mut LayerPool<Option<Node>>,
        exact_dirty: &mut Option<DirtyLog>,
        greedy_pool: &mut LayerPool<Option<GNode>>,
        speeds_idx: &mut Vec<usize>,
        times: &mut Vec<f64>,
        metrics: &mut SolverMetrics,
        live: &[Vec<bool>],
        ctg: &[Vec<f64>],
        emin: &[Vec<f64>],
        wait: &[Vec<f64>],
        slacks: &[f64],
        n_bins: usize,
        mut span_log: Option<&mut BinSpans>,
        relax_started: Instant,
    ) -> Result<(OptimizedProfile, Option<f64>)> {
        let n_stations = ctx.stations.len();
        let n_speeds = ctx.n_speeds;
        let threads = par::effective_threads(self.config.threads);
        metrics.threads_used = threads;
        let dt_bin = self.config.dt_bin.value();
        let use_simd = simd::dispatch(self.config.simd);

        par::team_scope(threads, |team| -> Result<(OptimizedProfile, Option<f64>)> {
            // Presolve: the Greedy DP's terminal cost is an achievable-path
            // cost accumulated with bit-identical float expressions, so it
            // upper-bounds the candidate costs along *some* complete path.
            let (glayers, glease) = greedy_pool.take_layers(n_stations, n_speeds, None);
            metrics.arena_reuse_hits += glease.reuse_hits;
            metrics.arena_allocations += glease.allocations;
            let g = self.relax_greedy(ctx, glayers, team);
            metrics.states_expanded += g.expanded;
            metrics.states_pruned += g.pruned;
            metrics.simd_rows += g.simd_rows;
            metrics.scalar_rows += g.scalar_rows;
            // Tiny relative margin so accumulated rounding in the bound
            // arithmetic can never prune the true winner's path.
            let greedy_ub =
                glayers[n_stations - 1][0].map(|node| node.cost + 1e-9 * node.cost.abs().max(1.0));

            // Aspiration ladder: each rung is a candidate pruning limit,
            // tightest first. The verification below certifies a passing
            // rung bit-identical to the unbounded sweep *without* needing
            // the limit to be achievable, so the first rungs can undercut
            // the greedy path cost — crucial when the greedy presolve pays
            // a window penalty and its bound degenerates to ~`penalty_m`.
            // A failing rung costs one (heavily pruned, therefore cheap)
            // sweep; the ladder always ends in the unbounded `None`.
            let b0 = ctg[0][ctx.start_vi];
            let tw = self.config.time_weight;
            let mut ladder: Vec<Option<f64>> = Vec::new();
            if b0.is_finite() && tw > 0.0 {
                for &slack_seconds in slacks {
                    let trial = b0 + tw * slack_seconds;
                    ladder.push(Some(match greedy_ub {
                        Some(g) => trial.min(g),
                        None => trial,
                    }));
                }
            }
            ladder.push(greedy_ub);
            ladder.push(None);
            ladder.dedup();

            // Bounded sweeps, verified; fall back down the ladder (ending
            // unbounded) if time-bin merging pushed the DP value past the
            // rung (rare — see the module docs).
            for use_bound in ladder {
                let (layers, lease) = reset_exact_layers(
                    exact_pool,
                    exact_dirty,
                    use_simd,
                    n_stations,
                    n_speeds,
                    n_bins,
                );
                metrics.arena_reuse_hits += lease.reuse_hits;
                metrics.arena_allocations += lease.allocations;
                let dirty_log = exact_dirty
                    .as_mut()
                    .expect("reset_exact_layers installs a log");

                let start_ti = ((ctx.start_time / dt_bin).round() as usize).min(n_bins - 1);
                layers[0][ctx.start_vi * n_bins + start_ti] = Some(Node {
                    cost: 0.0,
                    time: ctx.start_time,
                    prev_v: ctx.start_vi as u32,
                    prev_t: start_ti as u32,
                    violations: 0,
                });
                dirty_log.merge(0, ctx.start_vi, start_ti as u32, start_ti as u32);
                // Occupied time-bin span per source row, maintained layer to
                // layer so the relax scans only bins that can hold a state.
                let mut spans0: Vec<Option<(u32, u32)>> = vec![None; n_speeds];
                spans0[ctx.start_vi] = Some((start_ti as u32, start_ti as u32));
                if let Some(log) = span_log.as_deref_mut() {
                    log.clear();
                    log.push(spans0.clone());
                }
                self.relax_exact_layers(
                    ctx,
                    team,
                    layers,
                    1,
                    spans0,
                    live,
                    ctg,
                    emin,
                    wait,
                    use_bound,
                    n_bins,
                    use_simd,
                    metrics,
                    dirty_log,
                    span_log.as_deref_mut(),
                );

                // Pick the cheapest terminal state at v = 0.
                let best = exact_terminal(&layers[n_stations - 1], n_bins);
                if let Some(limit) = use_bound {
                    // A rung is only certified when the bounded sweep's
                    // value stays under it; otherwise the rung undercut
                    // the optimum (or bin merging pushed the DP value past
                    // the greedy path cost) and pruning is not provably
                    // lossless — retry with the next, looser rung. The
                    // ladder ends in `None`, which always verifies.
                    if !matches!(best, Some((_, node)) if node.cost <= limit) {
                        continue;
                    }
                }
                let (ti, terminal) =
                    best.ok_or_else(|| Error::infeasible("no kinematically feasible profile"))?;
                metrics.relax_seconds = relax_started.elapsed().as_secs_f64();

                let backtrack_started = Instant::now();
                backtrack_exact(ctx, layers, n_bins, ti, terminal, speeds_idx, times)?;
                metrics.backtrack_seconds = backtrack_started.elapsed().as_secs_f64();

                let profile = self.assemble(
                    ctx,
                    speeds_idx,
                    times,
                    terminal.violations as usize,
                    *metrics,
                )?;
                return Ok((profile, use_bound));
            }
            // The final rung is `None`, whose sweep is unbounded and always
            // either returns a profile or fails with `infeasible` above.
            unreachable!("the unbounded ladder rung always returns")
        })
    }

    /// Relaxes Exact-mode layers `first..n_stations` in place, given the
    /// occupied-bin spans of layer `first - 1`. This is the hot loop shared
    /// by a full ladder sweep (`first == 1`) and an incremental window
    /// repair, which resumes at the first dirty layer with the retained
    /// spans. Appends each relaxed layer's spans to `span_log` when given.
    #[allow(clippy::too_many_arguments)]
    fn relax_exact_layers(
        &self,
        ctx: &SolveCtx<'_>,
        team: &par::Team<'_>,
        layers: &mut [Vec<Option<Node>>],
        first: usize,
        spans_first: Vec<Option<(u32, u32)>>,
        live: &[Vec<bool>],
        ctg: &[Vec<f64>],
        emin: &[Vec<f64>],
        wait: &[Vec<f64>],
        limit: Option<f64>,
        n_bins: usize,
        use_simd: bool,
        metrics: &mut SolverMetrics,
        dirty: &mut DirtyLog,
        mut span_log: Option<&mut BinSpans>,
    ) {
        let n_stations = ctx.stations.len();
        let n_speeds = ctx.n_speeds;
        let horizon = self.config.horizon.value();
        let dt_bin = self.config.dt_bin.value();
        let tw = self.config.time_weight;
        let rows_per_chunk = n_speeds.div_ceil(team.workers());
        let chunk_len = rows_per_chunk * n_bins;
        let mut spans_prev = spans_first;
        for i in first..n_stations {
            let table = ctx.tables[i - 1];
            let ds = ctx.layer_ds[i - 1];
            let (done, rest) = layers.split_at_mut(i);
            let prev_layer: &[Option<Node>] = &done[i - 1];
            let layer: &mut Vec<Option<Node>> = &mut rest[0];

            // Per-source-speed data shared read-only by every
            // worker: the feasible target band from the
            // acceleration bounds (the same float expressions in
            // memoized and direct solves, via the snapped length)
            // and the source row's occupied bin span.
            let bands: Vec<Option<(usize, usize, usize, usize)>> = (0..n_speeds)
                .map(|vi| {
                    spans_prev[vi].map(|(ti_lo, ti_hi)| {
                        let v0 = self.config.dv.value() * vi as f64;
                        let lo_sq = v0 * v0 + 2.0 * self.config.a_min.value() * ds;
                        let hi_sq = v0 * v0 + 2.0 * self.config.a_max.value() * ds;
                        let vj_lo =
                            (lo_sq.max(0.0).sqrt() / self.config.dv.value()).floor() as usize;
                        let vj_hi = ((hi_sq.max(0.0).sqrt() / self.config.dv.value()).ceil()
                            as usize)
                            .min(n_speeds - 1);
                        (vj_lo, vj_hi, ti_lo as usize, ti_hi as usize)
                    })
                })
                .collect();

            // Relax a contiguous block of target-speed rows per
            // chunk, source-speed-outer over SoA cost rows: each
            // group of up to MR source states (one vi, ti
            // ascending) is relaxed over NR-lane target tiles. For
            // a fixed slot (vj, tj) candidates still arrive in
            // (vi asc, ti asc) order exactly as in the sequential
            // loop, so the strict `<` keeps the same winner
            // regardless of the thread count, chunk geometry, or
            // kernel dispatch.
            let counters = team.map_chunks(layer.as_mut_slice(), chunk_len, |offset, chunk| {
                let row0 = offset / n_bins;
                let n_rows = chunk.len() / n_bins;
                let mut c = ChunkCounters::default();
                let mut row_spans: Vec<Option<(u32, u32)>> = vec![None; n_rows];
                let env = RelaxEnv {
                    horizon,
                    dt_bin,
                    dwell: ctx.dwell[i],
                    penalty_m: self.config.penalty_m,
                    limit,
                    window: ctx.station_windows[i],
                    live: &live[i],
                    ctg: &ctg[i],
                    emin: &emin[i],
                    wait: &wait[i],
                };
                let mut srcs = [simd::TileSrc::default(); simd::MR];
                let mut metas = [(0u32, 0u32); simd::MR];
                for vi in 0..n_speeds {
                    let Some((vj_lo, vj_hi, ti_lo, ti_hi)) = bands[vi] else {
                        continue;
                    };
                    // This chunk's share of the target band.
                    let lo = vj_lo.max(row0);
                    let hi = vj_hi.min(row0 + n_rows - 1);
                    if lo > hi {
                        continue;
                    }
                    let charge_row = &table.charges(vi)[lo..=hi];
                    let dur_row = &table.durations(vi)[lo..=hi];
                    // Table-infeasible (vi, vj) pairs prune once
                    // per pair, exactly like the old loop's
                    // per-pair `table.get` miss.
                    for (k, d) in dur_row.iter().enumerate() {
                        if live[i][lo + k] && d.is_nan() {
                            c.pruned += 1;
                        }
                    }
                    let mut m = 0usize;
                    for ti in ti_lo..=ti_hi {
                        let Some(node) = prev_layer[vi * n_bins + ti] else {
                            continue;
                        };
                        srcs[m] = simd::TileSrc {
                            cost: node.cost,
                            time: node.time,
                        };
                        metas[m] = (ti as u32, node.violations);
                        m += 1;
                        if m == simd::MR {
                            relax_exact_group(
                                use_simd,
                                tw,
                                vi as u32,
                                charge_row,
                                dur_row,
                                &srcs,
                                &metas,
                                lo,
                                row0,
                                n_bins,
                                &env,
                                chunk,
                                &mut row_spans,
                                &mut c,
                            );
                            m = 0;
                        }
                    }
                    if m > 0 {
                        relax_exact_group(
                            use_simd,
                            tw,
                            vi as u32,
                            charge_row,
                            dur_row,
                            &srcs[..m],
                            &metas[..m],
                            lo,
                            row0,
                            n_bins,
                            &env,
                            chunk,
                            &mut row_spans,
                            &mut c,
                        );
                    }
                }
                let spans: Vec<(u32, u32, u32)> = row_spans
                    .iter()
                    .enumerate()
                    .filter_map(|(r, s)| s.map(|(s_lo, s_hi)| ((row0 + r) as u32, s_lo, s_hi)))
                    .collect();
                (c, spans)
            });
            let mut spans_next: Vec<Option<(u32, u32)>> = vec![None; n_speeds];
            for (c, spans) in counters {
                metrics.states_expanded += c.expanded;
                metrics.states_pruned += c.pruned;
                metrics.simd_rows += c.simd_rows;
                metrics.scalar_rows += c.scalar_rows;
                for (vj, lo, hi) in spans {
                    spans_next[vj as usize] = Some((lo, hi));
                    dirty.merge(i, vj as usize, lo, hi);
                }
            }
            spans_prev = spans_next;
            if let Some(log) = span_log.as_deref_mut() {
                log.push(spans_prev.clone());
            }
        }
    }

    fn solve_greedy(
        &self,
        ctx: &SolveCtx<'_>,
        greedy_pool: &mut LayerPool<Option<GNode>>,
        speeds_idx: &mut Vec<usize>,
        times: &mut Vec<f64>,
        metrics: &mut SolverMetrics,
    ) -> Result<OptimizedProfile> {
        let relax_started = Instant::now();
        let n_stations = ctx.stations.len();
        let threads = par::effective_threads(self.config.threads);
        metrics.threads_used = threads;

        let (layers, lease) = greedy_pool.take_layers(n_stations, ctx.n_speeds, None);
        metrics.arena_reuse_hits += lease.reuse_hits;
        metrics.arena_allocations += lease.allocations;

        let g = par::team_scope(threads, |team| self.relax_greedy(ctx, layers, team));
        metrics.states_expanded += g.expanded;
        metrics.states_pruned += g.pruned;
        metrics.simd_rows += g.simd_rows;
        metrics.scalar_rows += g.scalar_rows;
        metrics.relax_seconds = relax_started.elapsed().as_secs_f64();

        let backtrack_started = Instant::now();
        let terminal = layers[n_stations - 1][0]
            .ok_or_else(|| Error::infeasible("no kinematically feasible profile"))?;
        speeds_idx.clear();
        speeds_idx.resize(n_stations, 0);
        times.clear();
        times.resize(n_stations, 0.0);
        let mut vi = 0usize;
        times[n_stations - 1] = terminal.time;
        for i in (1..n_stations).rev() {
            let node = layers[i][vi].ok_or_else(|| {
                Error::infeasible("backtrack lost its parent state (inconsistent DP layers)")
            })?;
            times[i] = node.time;
            speeds_idx[i] = vi;
            vi = node.prev_v as usize;
        }
        speeds_idx[0] = ctx.start_vi;
        times[0] = ctx.start_time;
        metrics.backtrack_seconds = backtrack_started.elapsed().as_secs_f64();

        self.assemble(
            ctx,
            speeds_idx,
            times,
            terminal.violations as usize,
            *metrics,
        )
    }

    /// A clone forced to sequential relaxation. Batch planning parallelizes
    /// across plans and must not oversubscribe the cores with per-plan
    /// workers on top.
    pub(crate) fn single_threaded(&self) -> Self {
        let mut solo = self.clone();
        solo.config.threads = 1;
        solo
    }

    fn assemble(
        &self,
        ctx: &SolveCtx<'_>,
        speeds_idx: &[usize],
        times: &[f64],
        window_violations: usize,
        metrics: SolverMetrics,
    ) -> Result<OptimizedProfile> {
        let speeds: Vec<MetersPerSecond> = speeds_idx
            .iter()
            .map(|&vi| MetersPerSecond::new(self.config.dv.value() * vi as f64))
            .collect();
        // Re-read the raw energy (without penalties) along the chosen path
        // from the same tables the relaxation used.
        let mut total = 0.0;
        for i in 1..ctx.stations.len() {
            let (charge, _) = ctx.tables[i - 1]
                .get(speeds_idx[i - 1], speeds_idx[i])
                .ok_or_else(|| Error::numeric("assembled profile has an infeasible segment"))?;
            total += charge;
        }
        Ok(OptimizedProfile {
            stations: ctx.stations.to_vec(),
            speeds,
            times: times.iter().map(|&t| Seconds::new(t)).collect(),
            total_energy: AmpereHours::new(total),
            trip_time: Seconds::new(times[times.len() - 1] - times[0]),
            window_violations,
            metrics,
        })
    }
}

/// Builds the station grid from `from` in steps of Δs plus the exact road
/// end. A regular station closer than Δs/2 to the end is dropped so the
/// final segment is never degenerately short (a near-zero segment makes any
/// speed change there kinematically impossible).
fn build_stations_from(road: &Road, from: Meters, ds: Meters) -> Vec<Meters> {
    let mut stations = Vec::new();
    let mut x = from.value();
    while x < road.length().value() - 1e-9 {
        stations.push(Meters::new(x));
        x += ds.value();
    }
    if stations.len() > 1
        && (road.length() - stations[stations.len() - 1]).value() < ds.value() / 2.0
    {
        stations.pop();
    }
    stations.push(road.length());
    stations
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::KilometersPerHour;
    use velopt_ev_energy::VehicleParams;
    use velopt_road::RoadBuilder;

    fn optimizer() -> DpOptimizer {
        DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig::default(),
        )
        .unwrap()
    }

    fn simple_road(length: f64) -> Road {
        RoadBuilder::new(Meters::new(length))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(DpConfig {
            ds: Meters::ZERO,
            ..DpConfig::default()
        }
        .validated()
        .is_err());
        assert!(DpConfig {
            a_min: MetersPerSecondSq::new(0.5),
            ..DpConfig::default()
        }
        .validated()
        .is_err());
        assert!(DpConfig {
            penalty_m: 0.0,
            ..DpConfig::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn free_road_profile_is_feasible_and_smooth() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        assert_eq!(profile.window_violations, 0);
        assert_eq!(profile.speeds[0], MetersPerSecond::ZERO);
        assert_eq!(*profile.speeds.last().unwrap(), MetersPerSecond::ZERO);
        // Accelerations stay within comfort bounds.
        for i in 1..profile.stations.len() {
            let ds = (profile.stations[i] - profile.stations[i - 1]).value();
            let a = (profile.speeds[i].value().powi(2) - profile.speeds[i - 1].value().powi(2))
                / (2.0 * ds);
            assert!((-1.5 - 1e-6..=2.5 + 1e-6).contains(&a), "a = {a}");
        }
        // Times are strictly increasing.
        for w in profile.times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(profile.total_energy.value() > 0.0);
    }

    #[test]
    fn respects_max_speed_limit() {
        let road = simple_road(2000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let vmax = road.max_speed_limit().value();
        for v in &profile.speeds {
            assert!(v.value() <= vmax + 1e-9);
        }
    }

    #[test]
    fn stop_sign_forces_zero_speed() {
        let road = RoadBuilder::new(Meters::new(1500.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(700.0))
            .build()
            .unwrap();
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // Station nearest the sign is at 700 (multiple of 20) — speed 0.
        let idx = profile
            .stations
            .iter()
            .position(|&s| (s.value() - 700.0).abs() < 1e-9)
            .unwrap();
        assert_eq!(profile.speeds[idx], MetersPerSecond::ZERO);
    }

    #[test]
    fn window_constraint_shifts_arrival() {
        let road = simple_road(1000.0);
        // Free-run arrival at 500 m.
        let free = optimizer().optimize(&road, &[]).unwrap();
        let t_free = free.arrival_time_at(Meters::new(500.0));
        // Constrain arrival at 500 m to a window well after the free time.
        let w0 = t_free + Seconds::new(15.0);
        let constraint = SignalConstraint {
            position: Meters::new(500.0),
            windows: vec![TimeWindow {
                start: w0,
                end: w0 + Seconds::new(10.0),
            }],
        };
        let constrained = optimizer()
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
        assert_eq!(constrained.window_violations, 0);
        let t_c = constrained.arrival_time_at(Meters::new(500.0));
        assert!(
            constraint.admits(t_c),
            "arrival {t_c} must fall in [{w0}, +10s)"
        );
    }

    #[test]
    fn impossible_window_reports_violation_not_panic() {
        let road = simple_road(600.0);
        // A window that is long past: the EV cannot be that slow within the
        // horizon... use a window before any feasible arrival instead.
        let constraint = SignalConstraint {
            position: Meters::new(400.0),
            windows: vec![TimeWindow {
                start: Seconds::ZERO,
                end: Seconds::new(1.0),
            }],
        };
        let profile = optimizer().optimize(&road, &[constraint]).unwrap();
        assert!(profile.window_violations > 0);
    }

    #[test]
    fn greedy_mode_also_produces_profiles() {
        let road = simple_road(1000.0);
        let opt = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                time_handling: TimeHandling::Greedy,
                ..DpConfig::default()
            },
        )
        .unwrap();
        let profile = opt.optimize(&road, &[]).unwrap();
        assert_eq!(profile.speeds[0], MetersPerSecond::ZERO);
        assert!(profile.trip_time.value() > 0.0);
    }

    #[test]
    fn exact_beats_or_matches_greedy_under_windows() {
        let road = simple_road(1000.0);
        let mk = |th| {
            DpOptimizer::new(
                EnergyModel::new(VehicleParams::spark_ev()),
                DpConfig {
                    time_handling: th,
                    ..DpConfig::default()
                },
            )
            .unwrap()
        };
        let free = mk(TimeHandling::Exact).optimize(&road, &[]).unwrap();
        let t_free = free.arrival_time_at(Meters::new(600.0));
        let constraint = SignalConstraint {
            position: Meters::new(600.0),
            windows: vec![TimeWindow {
                start: t_free + Seconds::new(20.0),
                end: t_free + Seconds::new(28.0),
            }],
        };
        let exact = mk(TimeHandling::Exact)
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
        let greedy = mk(TimeHandling::Greedy)
            .optimize(&road, &[constraint])
            .unwrap();
        assert!(exact.window_violations <= greedy.window_violations);
    }

    #[test]
    fn profile_sampling_helpers() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // Position sampling.
        assert_eq!(
            profile.speed_at_position(Meters::new(-5.0)),
            profile.speeds[0]
        );
        let mid = profile.speed_at_position(Meters::new(500.0));
        assert!(mid.value() > 0.0);
        // Time series export covers the trip and ends at rest.
        let series = profile.to_time_series(Seconds::new(0.5)).unwrap();
        assert!(series.duration() >= profile.trip_time - Seconds::new(0.5));
        assert!(series.samples().last().unwrap() < &0.5);
        assert!(profile.to_time_series(Seconds::ZERO).is_err());
        // Distance covered by the series matches the road length.
        let dist = series.integrate();
        assert!(
            (dist - 1000.0).abs() < 30.0,
            "time-series distance {dist} should be ~1000 m"
        );
    }

    #[test]
    fn energy_is_less_than_naive_fast_profile() {
        // The DP should never do worse than a crude bang-bang profile's
        // energy on the same road (it could pick that profile itself).
        let road = simple_road(1500.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        // A crude comparison: max accel to vmax, cruise, max brake.
        let e = EnergyModel::new(VehicleParams::spark_ev());
        let vmax = road.max_speed_limit();
        let d_up = vmax.value().powi(2) / (2.0 * 2.5);
        let d_down = vmax.value().powi(2) / (2.0 * 1.5);
        let up = e
            .segment_energy(
                MetersPerSecond::ZERO,
                MetersPerSecondSq::new(2.5),
                Meters::new(d_up),
                road.grade_at(Meters::ZERO),
            )
            .unwrap();
        let cruise = e
            .segment_energy(
                vmax,
                MetersPerSecondSq::ZERO,
                Meters::new(1500.0 - d_up - d_down),
                road.grade_at(Meters::new(750.0)),
            )
            .unwrap();
        let down = e
            .segment_energy(
                vmax,
                MetersPerSecondSq::new(-1.5),
                Meters::new(d_down),
                road.grade_at(Meters::new(1400.0)),
            )
            .unwrap();
        let naive = up.charge.value() + cruise.charge.value() + down.charge.value();
        assert!(
            profile.total_energy.value() <= naive + 1e-6,
            "DP {} vs naive {naive}",
            profile.total_energy.value()
        );
    }

    fn optimizer_with(config: DpConfig) -> DpOptimizer {
        DpOptimizer::new(EnergyModel::new(VehicleParams::spark_ev()), config).unwrap()
    }

    fn bitwise_equal(a: &OptimizedProfile, b: &OptimizedProfile) -> bool {
        a.stations.len() == b.stations.len()
            && a.stations
                .iter()
                .zip(&b.stations)
                .all(|(x, y)| x.value().to_bits() == y.value().to_bits())
            && a.speeds
                .iter()
                .zip(&b.speeds)
                .all(|(x, y)| x.value().to_bits() == y.value().to_bits())
            && a.times
                .iter()
                .zip(&b.times)
                .all(|(x, y)| x.value().to_bits() == y.value().to_bits())
            && a.total_energy.value().to_bits() == b.total_energy.value().to_bits()
            && a.trip_time.value().to_bits() == b.trip_time.value().to_bits()
            && a.window_violations == b.window_violations
    }

    #[test]
    fn parallel_exact_is_bit_identical_to_sequential() {
        let road = simple_road(1200.0);
        let t_free = optimizer().optimize(&road, &[]).unwrap();
        let constraint = SignalConstraint {
            position: Meters::new(600.0),
            windows: vec![TimeWindow {
                start: t_free.arrival_time_at(Meters::new(600.0)) + Seconds::new(12.0),
                end: t_free.arrival_time_at(Meters::new(600.0)) + Seconds::new(20.0),
            }],
        };
        let sequential = optimizer_with(DpConfig {
            threads: 1,
            ..DpConfig::default()
        })
        .optimize(&road, std::slice::from_ref(&constraint))
        .unwrap();
        for threads in [2, 3, 7] {
            let parallel = optimizer_with(DpConfig {
                threads,
                ..DpConfig::default()
            })
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
            assert!(
                bitwise_equal(&sequential, &parallel),
                "profile diverged at {threads} threads"
            );
            assert_eq!(parallel.metrics.threads_used, threads);
            // Same search space, same pruning decisions.
            assert_eq!(
                parallel.metrics.states_expanded,
                sequential.metrics.states_expanded
            );
            assert_eq!(
                parallel.metrics.states_pruned,
                sequential.metrics.states_pruned
            );
            assert_eq!(
                parallel.metrics.rows_skipped,
                sequential.metrics.rows_skipped
            );
        }
    }

    #[test]
    fn parallel_greedy_is_bit_identical_to_sequential() {
        let road = simple_road(1000.0);
        let mk = |threads| {
            optimizer_with(DpConfig {
                time_handling: TimeHandling::Greedy,
                threads,
                ..DpConfig::default()
            })
        };
        let sequential = mk(1).optimize(&road, &[]).unwrap();
        for threads in [2, 5] {
            let parallel = mk(threads).optimize(&road, &[]).unwrap();
            assert!(
                bitwise_equal(&sequential, &parallel),
                "greedy profile diverged at {threads} threads"
            );
        }
    }

    /// The SIMD exactness claim: the AVX2 relax tiles must not move a
    /// single bit of the solution relative to the portable kernel — in
    /// both time handlings, across thread counts, on a road with a stop
    /// sign and an arrival window — and the search-space counters must
    /// not depend on the dispatch either.
    #[test]
    fn simd_and_scalar_solves_are_bit_identical() {
        let road = RoadBuilder::new(Meters::new(1400.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(500.0))
            .build()
            .unwrap();
        let free = optimizer().optimize(&road, &[]).unwrap();
        let t = free.arrival_time_at(Meters::new(900.0));
        let constraint = SignalConstraint {
            position: Meters::new(900.0),
            windows: vec![TimeWindow {
                start: t + Seconds::new(10.0),
                end: t + Seconds::new(18.0),
            }],
        };
        for time_handling in [TimeHandling::Exact, TimeHandling::Greedy] {
            for threads in [1, 2] {
                let mk = |simd| {
                    optimizer_with(DpConfig {
                        time_handling,
                        threads,
                        simd,
                        ..DpConfig::default()
                    })
                    .optimize(&road, std::slice::from_ref(&constraint))
                    .unwrap()
                };
                let vectorized = mk(true);
                let scalar = mk(false);
                assert!(
                    bitwise_equal(&vectorized, &scalar),
                    "profile diverged between kernels ({time_handling:?}, {threads} threads)"
                );
                assert_eq!(
                    vectorized.metrics.states_expanded,
                    scalar.metrics.states_expanded
                );
                assert_eq!(
                    vectorized.metrics.states_pruned,
                    scalar.metrics.states_pruned
                );
                // With the knob off every relax row goes through the
                // portable kernel; either way rows were counted.
                assert_eq!(scalar.metrics.simd_rows, 0);
                assert!(scalar.metrics.scalar_rows > 0);
                assert!(vectorized.metrics.simd_rows + vectorized.metrics.scalar_rows > 0);
            }
        }
    }

    /// The warm-started refresh ladder: a first `optimize_windows_refresh`
    /// runs a full retention solve; a refresh whose only change is a
    /// shifted window repairs just the dirty suffix; a refresh with no
    /// change returns the retained profile outright — and all three are
    /// bit-identical to a from-scratch solve under the same windows.
    #[test]
    fn window_refresh_repair_is_bit_identical_to_scratch() {
        let road = RoadBuilder::new(Meters::new(1400.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(500.0))
            .build()
            .unwrap();
        let free = optimizer().optimize(&road, &[]).unwrap();
        let t = free.arrival_time_at(Meters::new(900.0));
        let window_at = |lo: f64, hi: f64| SignalConstraint {
            position: Meters::new(900.0),
            windows: vec![TimeWindow {
                start: t + Seconds::new(lo),
                end: t + Seconds::new(hi),
            }],
        };
        let opt = optimizer();
        let mut arena = SolverArena::new();
        let start = StartState::default();

        let w0 = [window_at(10.0, 18.0)];
        let first = opt
            .optimize_windows_refresh(&road, &w0, start, &mut arena)
            .unwrap();
        assert_eq!(first.metrics.repair_full_resolves, 1);
        assert_eq!(first.metrics.repair_hits, 0);
        assert!(bitwise_equal(&first, &opt.optimize(&road, &w0).unwrap()));

        // Shift the window: only layers from the signal's station onward
        // re-relax, and the repaired plan matches from-scratch bit for bit.
        let w1 = [window_at(12.0, 20.0)];
        let repaired = opt
            .optimize_windows_refresh(&road, &w1, start, &mut arena)
            .unwrap();
        assert_eq!(repaired.metrics.repair_hits, 1);
        assert_eq!(repaired.metrics.repair_full_resolves, 0);
        assert!(repaired.metrics.repair_layers_skipped > 0);
        assert!(bitwise_equal(&repaired, &opt.optimize(&road, &w1).unwrap()));

        // No change at all: the retained profile comes straight back, with
        // every non-terminal layer skipped.
        let cached = opt
            .optimize_windows_refresh(&road, &w1, start, &mut arena)
            .unwrap();
        assert_eq!(cached.metrics.repair_hits, 1);
        assert_eq!(cached.metrics.repair_full_resolves, 0);
        assert_eq!(
            cached.metrics.repair_layers_skipped as usize,
            cached.stations.len() - 1
        );
        assert!(bitwise_equal(&cached, &repaired));
    }

    /// A direct solve through the same arena clobbers the layer pools, so
    /// the next refresh must fall back to a full retention solve rather
    /// than repairing against foreign layer contents.
    #[test]
    fn direct_solve_invalidates_retained_repair_state() {
        let road = simple_road(1000.0);
        let opt = optimizer();
        let mut arena = SolverArena::new();
        let start = StartState::default();
        let first = opt
            .optimize_windows_refresh(&road, &[], start, &mut arena)
            .unwrap();
        assert_eq!(first.metrics.repair_full_resolves, 1);
        opt.optimize_from_with(&road, &[], start, &mut arena)
            .unwrap();
        let after = opt
            .optimize_windows_refresh(&road, &[], start, &mut arena)
            .unwrap();
        assert_eq!(after.metrics.repair_full_resolves, 1);
        assert_eq!(after.metrics.repair_hits, 0);
        assert!(bitwise_equal(&first, &after));
    }

    /// The tentpole exactness claim: replacing per-candidate energy-model
    /// calls with memoized, quantized cost tables must not move a single
    /// bit of the solution — across thread counts, on a road that
    /// exercises stop signs, windows and penalties.
    #[test]
    fn memoized_and_direct_solves_are_bit_identical() {
        let road = RoadBuilder::new(Meters::new(1500.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(600.0))
            .build()
            .unwrap();
        let free = optimizer().optimize(&road, &[]).unwrap();
        let t = free.arrival_time_at(Meters::new(1000.0));
        let constraint = SignalConstraint {
            position: Meters::new(1000.0),
            windows: vec![TimeWindow {
                start: t + Seconds::new(8.0),
                end: t + Seconds::new(16.0),
            }],
        };
        for threads in [1, 2, 4] {
            let memo = optimizer_with(DpConfig {
                threads,
                ..DpConfig::default()
            })
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
            let direct = optimizer_with(DpConfig {
                threads,
                memo: false,
                ..DpConfig::default()
            })
            .optimize(&road, std::slice::from_ref(&constraint))
            .unwrap();
            assert!(
                bitwise_equal(&memo, &direct),
                "memoized profile diverged from direct at {threads} threads"
            );
            // Identical search: every counter matches, not just the plan.
            assert_eq!(memo.metrics.states_expanded, direct.metrics.states_expanded);
            assert_eq!(memo.metrics.states_pruned, direct.metrics.states_pruned);
            assert_eq!(memo.metrics.rows_skipped, direct.metrics.rows_skipped);
            // The uniform corridor collapses to a couple of segment
            // classes: the cache pays off within a single solve...
            assert!(memo.metrics.memo_hits > 0);
            assert!(memo.metrics.memo_misses < memo.metrics.memo_hits);
            // ...while the direct path rebuilds per segment, never caching.
            assert_eq!(direct.metrics.memo_hits, 0);
            assert_eq!(
                direct.metrics.memo_misses,
                (road.length().value() / 20.0).round() as u64
            );
        }
    }

    /// The cache lives in the arena: a second solve over the same corridor
    /// runs entirely on cached tables — zero energy-model evaluations.
    #[test]
    fn transition_cache_is_shared_across_solves() {
        let road = simple_road(800.0);
        let opt = optimizer();
        let mut arena = SolverArena::new();
        let first = opt
            .optimize_from_with(&road, &[], StartState::default(), &mut arena)
            .unwrap();
        assert!(first.metrics.memo_misses > 0);
        assert!(first.metrics.energy_evals > 0);
        assert!(arena.cached_classes() > 0);
        let second = opt
            .optimize_from_with(&road, &[], StartState::default(), &mut arena)
            .unwrap();
        assert_eq!(second.metrics.memo_misses, 0);
        assert_eq!(second.metrics.energy_evals, 0);
        assert!(second.metrics.memo_hits > 0);
        assert_eq!(first, second);
    }

    /// Reachability masks retire rows the acceleration cones can't connect
    /// to both endpoints (e.g. high speeds one station after launch).
    #[test]
    fn reachability_pruning_skips_rows_and_counts_them() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        assert!(profile.metrics.rows_skipped > 0);
        // And the masks must never cut into the feasible plan itself.
        assert_eq!(profile.window_violations, 0);
    }

    #[test]
    fn arena_reuse_kicks_in_on_second_solve() {
        let road = simple_road(800.0);
        let opt = optimizer();
        let mut arena = SolverArena::new();
        let first = opt
            .optimize_from_with(&road, &[], StartState::default(), &mut arena)
            .unwrap();
        assert_eq!(first.metrics.arena_reuse_hits, 0);
        assert!(first.metrics.arena_allocations > 0);
        let second = opt
            .optimize_from_with(&road, &[], StartState::default(), &mut arena)
            .unwrap();
        assert_eq!(second.metrics.arena_allocations, 0);
        assert!(second.metrics.arena_reuse_hits > 0);
        // Scratch reuse must not change the plan.
        assert_eq!(first, second);
    }

    #[test]
    fn metrics_are_populated() {
        let road = simple_road(1000.0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let m = profile.metrics;
        assert!(m.states_expanded > 0);
        assert!(m.threads_used >= 1);
        assert!(m.relax_seconds >= 0.0 && m.total_seconds() >= m.relax_seconds);
        assert!(m.expansion_ratio() > 0.0 && m.expansion_ratio() <= 1.0);
        assert!(m.memo_misses > 0);
        assert!(m.energy_evals > 0);
    }

    /// With the `telemetry` feature on, every solve publishes its metrics
    /// to the global registry (counters are monotonic and the registry is
    /// process-wide, so the assertions are deltas, not absolutes).
    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_records_solves() {
        let road = simple_road(600.0);
        let before = telemetry::snapshot().counter("dp.solves").unwrap_or(0);
        let profile = optimizer().optimize(&road, &[]).unwrap();
        let snap = telemetry::snapshot();
        assert!(snap.counter("dp.solves").unwrap() > before);
        assert!(snap.counter("dp.states_expanded").unwrap() >= profile.metrics.states_expanded);
        assert!(snap.counter("dp.memo.misses").unwrap() >= profile.metrics.memo_misses);
        assert!(snap.counter("dp.rows_skipped").unwrap() >= profile.metrics.rows_skipped);
        assert!(snap.histogram("dp.relax_seconds").unwrap().count >= 1);
        // The whole-solve span wraps every phase: its histogram fills too.
        assert!(snap.histogram("dp.optimize_seconds").unwrap().count >= 1);
        // Arena lease accounting reaches the registry as well.
        assert!(snap.counter("arena.allocations").unwrap() > 0);
    }

    #[test]
    fn profiles_with_different_metrics_compare_equal() {
        let road = simple_road(800.0);
        let a = optimizer().optimize(&road, &[]).unwrap();
        let mut b = a.clone();
        b.metrics.relax_seconds += 100.0;
        b.metrics.states_expanded += 1;
        assert_eq!(a, b);
        b.window_violations += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn nearest_index_boundary_behavior() {
        let stations: Vec<Meters> = [0.0, 20.0, 40.0, 60.0]
            .iter()
            .map(|&x| Meters::new(x))
            .collect();
        // Below the first and past the last station clamp.
        assert_eq!(nearest_index(&stations, Meters::new(-5.0)), 0);
        assert_eq!(nearest_index(&stations, Meters::new(1000.0)), 3);
        // Exact hits.
        for (i, &s) in stations.iter().enumerate() {
            assert_eq!(nearest_index(&stations, s), i);
        }
        // Interior points round to the closer neighbor; exact midpoints
        // resolve to the lower station (the linear scan's tie rule).
        assert_eq!(nearest_index(&stations, Meters::new(24.0)), 1);
        assert_eq!(nearest_index(&stations, Meters::new(36.0)), 2);
        assert_eq!(nearest_index(&stations, Meters::new(30.0)), 1);
        // Single-station degenerate case.
        assert_eq!(nearest_index(&[Meters::new(7.0)], Meters::new(99.0)), 0);
    }

    #[test]
    fn nearest_index_matches_linear_scan() {
        let stations = build_stations_from(&simple_road(1000.0), Meters::ZERO, Meters::new(20.0));
        for k in 0..200 {
            let x = Meters::new(-10.0 + k as f64 * 5.3);
            let linear = stations
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (**a - x)
                        .abs()
                        .value()
                        .partial_cmp(&(**b - x).abs().value())
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(nearest_index(&stations, x), linear, "x = {x}");
        }
    }

    #[test]
    fn greedy_infeasible_backtrack_is_an_error_not_a_panic() {
        // A corridor far too long for the horizon: no terminal state exists
        // and the solver must report infeasibility.
        let road = simple_road(30_000.0);
        let opt = optimizer_with(DpConfig {
            time_handling: TimeHandling::Greedy,
            horizon: Seconds::new(120.0),
            ..DpConfig::default()
        });
        assert!(matches!(
            opt.optimize(&road, &[]),
            Err(Error::Infeasible(_))
        ));
        let opt = optimizer_with(DpConfig {
            horizon: Seconds::new(120.0),
            ..DpConfig::default()
        });
        assert!(matches!(
            opt.optimize(&road, &[]),
            Err(Error::Infeasible(_))
        ));
    }
}
