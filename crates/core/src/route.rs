//! Energy-optimal routing over a [`RoadGraph`], with the DP velocity
//! optimizer as a lazy edge-cost oracle.
//!
//! The paper plans a velocity profile over one fixed corridor; this module
//! chooses the *route* by energy too (the ROADMAP's Ahmadi-et-al.
//! direction). A query asks for the cheapest junction-to-junction path
//! under the solver's blended objective `charge + time_weight·duration +
//! M·violations`, where each edge's cost is the optimum of the full
//! space–velocity–time DP over that edge's corridor. Pricing an edge is
//! therefore expensive, and the router's whole design is about evaluating
//! the oracle as few times as possible:
//!
//! 1. **Admissible pruning.** Every edge gets a certified lower bound from
//!    [`DpOptimizer::edge_bound_with`] — the solver's `emin` cost-to-go
//!    sweep plus the minimum traversal duration, no time-expanded DP. A
//!    Bellman–Ford sweep over these bounds (they can be negative on net
//!    regenerative corridors) yields an admissible per-node heuristic to
//!    the destination, and frontier edges are pushed as lazily-priced
//!    *candidates* at `g + lb(edge) + h(head)`: a candidate whose bound
//!    already exceeds the best known route cost is discarded without ever
//!    touching the oracle. Bounds are cached per corridor class
//!    ([`RouteConfig::lb_cache_capacity`]).
//! 2. **Edge-plan memoization.** Full oracle results are keyed on the
//!    (corridor signature, departure bin) class, so routes sharing segment
//!    classes — and repeated queries — reuse plans outright, and all
//!    solves share the warm transition-table memo through the router's
//!    [`SolverArena`]s.
//! 3. **Batched frontier evaluation.** When several uncached candidates
//!    sit at the top of the frontier, they are solved in one
//!    [`DpOptimizer::optimize_batch_with`] call on the existing thread
//!    team instead of serially ([`RouteConfig::batch_frontier`]).
//!
//! ## The route model
//!
//! Search states are `(junction, departure bin)`: departure times are
//! quantized to [`RouteConfig::depart_quantum`], and a vehicle arriving at
//! a junction departs on the next bin boundary (`ceil`), waiting at rest
//! in between. Each edge is solved on its own relative clock — the edge's
//! signal green windows are computed from the absolute departure time and
//! shifted to the solve's `t = 0` — so long routes never exhaust the DP
//! horizon. Waiting at a junction is free; the time cost of *driving* is
//! priced by the solver's blended objective.
//!
//! ## Exactness
//!
//! The search is label-correcting (edge costs can be negative), runs to
//! frontier exhaustion, prunes only entries strictly costlier than the
//! best route found, and breaks exact cost ties toward the
//! lexicographically smallest edge-id sequence. Under the route model
//! above it returns the *exact* optimum — bit-identical route, cost, and
//! stitched profile versus exhaustive path enumeration, at any thread
//! count, with every cache and the batched frontier on or off (proptested
//! in `tests/route.rs`; see DESIGN.md §15 for the admissibility and
//! fixed-point arguments). Graphs whose true edge costs admit a
//! negative-cost cycle are rejected during the heuristic sweep.

use crate::batch::PlanRequest;
use crate::dp::{
    DpOptimizer, EdgeBound, OptimizedProfile, SignalConstraint, SolverArena, StartState,
};
use crate::par;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use velopt_common::units::{AmpereHours, Meters, MetersPerSecond, Seconds};
use velopt_common::{Error, Result};
use velopt_queue::TimeWindow;
use velopt_road::{EdgeId, NodeId, Road, RoadGraph};

/// Router knobs. Every knob is a work/throughput trade-off only — the
/// returned route and profile are bit-identical for every setting (see the
/// module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteConfig {
    /// Departure-time quantum at junctions: arrivals round up to the next
    /// multiple before the next edge departs. Coarser bins mean more plan
    /// sharing across queries; finer bins mean less junction waiting.
    pub depart_quantum: Seconds,
    /// Use the admissible `emin` lower bounds and best-first candidate
    /// pruning (default `true`). With `false` the router degrades to
    /// lower-bound-free Dijkstra that prices every frontier edge through
    /// the oracle — the baseline the `route_plan` bench compares against.
    pub heuristic: bool,
    /// Memoize full edge plans on the (corridor class, departure bin) key,
    /// across edges and across queries (default `true`).
    pub memo: bool,
    /// Solve consecutive uncached frontier candidates in one batched
    /// oracle call instead of one at a time (default `true`).
    pub batch_frontier: bool,
    /// Most candidates evaluated per batched flush.
    pub batch_width: usize,
    /// Most corridor classes kept in the lower-bound cache; once full, new
    /// classes are bounded on demand without eviction. `0` disables the
    /// cache.
    pub lb_cache_capacity: usize,
    /// Hard cap on search labels, a safety net against pathological
    /// graphs (e.g. a true negative-cost cycle that slipped past the
    /// bound check).
    pub max_states: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            depart_quantum: Seconds::new(1.0),
            heuristic: true,
            memo: true,
            batch_frontier: true,
            batch_width: 16,
            lb_cache_capacity: 1024,
            max_states: 1 << 20,
        }
    }
}

impl RouteConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on a non-positive quantum, a zero
    /// batch width, or a zero state cap.
    pub fn validated(self) -> Result<Self> {
        if self.depart_quantum.value() <= 0.0 {
            return Err(Error::invalid_input("departure quantum must be positive"));
        }
        if self.batch_width == 0 {
            return Err(Error::invalid_input("batch width must be at least 1"));
        }
        if self.max_states == 0 {
            return Err(Error::invalid_input("max states must be at least 1"));
        }
        Ok(self)
    }
}

/// Work counters for one routing query, in the same observability-only
/// spirit as [`crate::metrics::SolverMetrics`]: two plans that differ only
/// in metrics compare equal.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteMetrics {
    /// Search labels settled (state expansions).
    pub states_settled: u64,
    /// Out-edges considered during state expansions.
    pub edges_expanded: u64,
    /// Edge traversals discarded on their lower bound alone — before, or
    /// instead of, an oracle evaluation.
    pub edges_pruned: u64,
    /// Full DP solves requested from the oracle.
    pub oracle_calls: u64,
    /// Edge traversals priced from the (corridor class, departure bin)
    /// plan memo without touching the oracle.
    pub plan_memo_hits: u64,
    /// Edge lower bounds served from the per-class cache.
    pub lb_cache_hits: u64,
    /// Edge lower bounds computed with a fresh `emin` sweep.
    pub lb_cache_misses: u64,
}

impl RouteMetrics {
    /// Fraction of lower-bound lookups served from the cache, in
    /// `[0, 1]`; `1.0` when no bounds were needed.
    pub fn lb_cache_hit_rate(&self) -> f64 {
        let total = self.lb_cache_hits + self.lb_cache_misses;
        if total == 0 {
            return 1.0;
        }
        self.lb_cache_hits as f64 / total as f64
    }

    /// Publishes the query's counters to the global [`telemetry`] registry
    /// under the `route.*` namespace. A no-op (and free) unless the
    /// crate's `telemetry` feature is enabled.
    pub fn publish(&self) {
        telemetry::add("route.plans", 1);
        telemetry::add("route.states_settled", self.states_settled);
        telemetry::add("route.edges_expanded", self.edges_expanded);
        telemetry::add("route.edges_pruned", self.edges_pruned);
        telemetry::add("route.oracle_calls", self.oracle_calls);
        telemetry::add("route.plan_memo.hits", self.plan_memo_hits);
        telemetry::add("route.lb_cache.hits", self.lb_cache_hits);
        telemetry::add("route.lb_cache.misses", self.lb_cache_misses);
    }

    /// Accumulates another query's counters into this one.
    pub fn absorb(&mut self, other: &RouteMetrics) {
        self.states_settled += other.states_settled;
        self.edges_expanded += other.edges_expanded;
        self.edges_pruned += other.edges_pruned;
        self.oracle_calls += other.oracle_calls;
        self.plan_memo_hits += other.plan_memo_hits;
        self.lb_cache_hits += other.lb_cache_hits;
        self.lb_cache_misses += other.lb_cache_misses;
    }
}

/// One routing query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteQuery {
    /// Starting junction.
    pub origin: NodeId,
    /// Destination junction.
    pub dest: NodeId,
    /// Earliest departure time (absolute clock; snaps up to the departure
    /// quantum).
    pub depart: Seconds,
}

/// The routed result: the edge sequence, its exact blended cost, and the
/// stitched velocity profile over the whole route.
///
/// The profile concatenates each edge's optimized profile with stations
/// offset by the cumulative route length and times on the absolute clock;
/// junction waits appear as repeated positions at rest. Equality ignores
/// [`metrics`](RoutePlan::metrics), like
/// [`OptimizedProfile`] does.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// The edges driven, in order.
    pub edges: Vec<EdgeId>,
    /// Exact blended objective of the route (`charge +
    /// time_weight·duration + M·violations`, summed over edges in path
    /// order).
    pub cost: f64,
    /// Net battery charge over the route.
    pub total_energy: AmpereHours,
    /// Snapped departure time at the origin.
    pub depart: Seconds,
    /// Arrival time at the destination (absolute clock).
    pub arrival: Seconds,
    /// Signal stations arrived outside every window, summed over edges.
    pub window_violations: usize,
    /// Stitched station positions (cumulative route distance).
    pub stations: Vec<Meters>,
    /// Speed at each stitched station.
    pub speeds: Vec<MetersPerSecond>,
    /// Arrival time at each stitched station (absolute clock).
    pub times: Vec<Seconds>,
    /// How the router got here. Excluded from equality.
    pub metrics: RouteMetrics,
}

impl PartialEq for RoutePlan {
    fn eq(&self, other: &Self) -> bool {
        self.edges == other.edges
            && self.cost == other.cost
            && self.total_energy == other.total_energy
            && self.depart == other.depart
            && self.arrival == other.arrival
            && self.window_violations == other.window_violations
            && self.stations == other.stations
            && self.speeds == other.speeds
            && self.times == other.times
    }
}

impl RoutePlan {
    /// Route duration from snapped departure to arrival (driving plus
    /// junction waits).
    pub fn trip_time(&self) -> Seconds {
        self.arrival - self.depart
    }
}

/// A memoized oracle evaluation of one (corridor class, departure bin).
#[derive(Debug)]
struct PlanEval {
    /// Blended edge cost (see [`blended_cost`]).
    cost: f64,
    /// The solved profile, on the edge's relative clock.
    profile: OptimizedProfile,
}

/// The blended routing objective of one solved edge profile. Shared by
/// the router and the enumeration reference so both accumulate identical
/// floats.
pub fn blended_cost(profile: &OptimizedProfile, time_weight: f64, penalty_m: f64) -> f64 {
    profile.total_energy.value()
        + time_weight * profile.trip_time.value()
        + penalty_m * profile.window_violations as f64
}

/// Departure bin of a time: the first multiple of `quantum` at or after
/// `t`.
pub fn depart_bin(t: Seconds, quantum: Seconds) -> u64 {
    let b = (t.value() / quantum.value()).ceil();
    if b <= 0.0 {
        0
    } else {
        b as u64
    }
}

/// A collision-resistant fingerprint of everything an edge plan depends on
/// besides the departure time: corridor length, default and zoned speed
/// limits, stop signs, grade knots, and each light's timing *and realized
/// green pattern over one cycle*. Two edges with equal signatures price
/// identically at equal departure bins, which is the plan memo's key.
pub fn road_signature(road: &Road) -> u64 {
    let mut scratch = Vec::new();
    road_signature_with(road, &mut scratch)
}

/// [`road_signature`] with a caller-owned green-window scratch buffer, so
/// hashing a whole frontier stays allocation-free.
pub fn road_signature_with(road: &Road, scratch: &mut Vec<(Seconds, Seconds)>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, bits: u64| {
        *h ^= bits;
        *h = h.wrapping_mul(0x100_0000_01b3);
    };
    mix(&mut h, road.length().value().to_bits());
    let (dmin, dmax) = road.default_limits();
    mix(&mut h, dmin.value().to_bits());
    mix(&mut h, dmax.value().to_bits());
    for z in road.speed_zones() {
        mix(&mut h, z.start.value().to_bits());
        mix(&mut h, z.end.value().to_bits());
        mix(&mut h, z.min.value().to_bits());
        mix(&mut h, z.max.value().to_bits());
    }
    for s in road.stop_signs() {
        mix(&mut h, s.position.value().to_bits());
    }
    for &(x, g) in road.grade_percent_profile().knots() {
        mix(&mut h, x.to_bits());
        mix(&mut h, g.to_bits());
    }
    for light in road.traffic_lights() {
        mix(&mut h, light.position().value().to_bits());
        mix(&mut h, light.red().value().to_bits());
        mix(&mut h, light.green().value().to_bits());
        mix(&mut h, light.offset().value().to_bits());
        light.green_windows_into(Seconds::ZERO, light.cycle(), scratch);
        for &(s, e) in scratch.iter() {
            mix(&mut h, s.value().to_bits());
            mix(&mut h, e.value().to_bits());
        }
    }
    h
}

/// The signal constraints an edge solve sees when the vehicle departs at
/// absolute time `depart`: each light's green windows over the horizon,
/// shifted onto the edge's relative clock.
fn edge_constraints(
    road: &Road,
    depart: Seconds,
    horizon: Seconds,
    scratch: &mut Vec<(Seconds, Seconds)>,
) -> Vec<SignalConstraint> {
    road.traffic_lights()
        .iter()
        .map(|light| {
            light.green_windows_into(depart, horizon, scratch);
            SignalConstraint {
                position: light.position(),
                windows: scratch
                    .iter()
                    .map(|&(s, e)| TimeWindow {
                        start: s - depart,
                        end: e - depart,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// One search label: the cheapest known way to stand at `node` ready to
/// depart on bin `bin`.
#[derive(Debug, Clone)]
struct Label {
    node: u32,
    bin: u64,
    cost: f64,
    /// `(predecessor label, edge driven, its evaluation)` — `None` at the
    /// origin. The evaluation rides along so the final stitch never
    /// re-solves (or re-fetches) anything.
    parent: Option<(usize, u32, Arc<PlanEval>)>,
}

/// What a frontier entry asks for when popped.
#[derive(Debug, Clone, Copy)]
enum Work {
    /// Expand a settled label's out-edges.
    Expand { state: usize },
    /// Price one lazily-bounded edge traversal through the oracle.
    Candidate { from: usize, edge: u32 },
}

/// Min-heap item ordered by `f`, then FIFO by insertion sequence so equal
/// keys pop in a well-defined order.
#[derive(Debug, Clone, Copy)]
struct HeapItem {
    f: f64,
    seq: u64,
    /// The `g` of the owning label when pushed; a mismatch on pop marks
    /// the entry stale (the label has since improved and re-pushed).
    g_bits: u64,
    work: Work,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.f.total_cmp(&other.f).is_eq() && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap pops the max, we want the smallest f (and
        // among equals, the earliest push).
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The best-first router. Owns the DP oracle, the per-class lower-bound
/// cache, the (class, departure-bin) plan memo, and one [`SolverArena`]
/// per oracle worker, so everything warm — layer buffers, transition
/// tables, edge plans — persists across queries.
#[derive(Debug)]
pub struct Router {
    optimizer: DpOptimizer,
    config: RouteConfig,
    arenas: Vec<SolverArena>,
    lb_cache: HashMap<u64, EdgeBound>,
    plans: HashMap<(u64, u64), Option<Arc<PlanEval>>>,
    scratch: Vec<(Seconds, Seconds)>,
}

impl Router {
    /// Creates a router around a DP oracle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the route configuration is
    /// invalid.
    pub fn new(optimizer: DpOptimizer, config: RouteConfig) -> Result<Self> {
        let config = config.validated()?;
        let workers = par::effective_threads(optimizer.config().threads).max(1);
        Ok(Self {
            optimizer,
            config,
            arenas: (0..workers).map(|_| SolverArena::new()).collect(),
            lb_cache: HashMap::new(),
            plans: HashMap::new(),
            scratch: Vec::new(),
        })
    }

    /// The route configuration in use.
    pub fn config(&self) -> &RouteConfig {
        &self.config
    }

    /// The DP oracle in use.
    pub fn optimizer(&self) -> &DpOptimizer {
        &self.optimizer
    }

    /// Number of (corridor class, departure bin) plans currently memoized.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Number of corridor classes in the lower-bound cache.
    pub fn cached_bounds(&self) -> usize {
        self.lb_cache.len()
    }

    /// Plans the exact energy-optimal route for `query`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on out-of-range junctions, equal
    /// origin and destination, a negative departure time, or a graph whose
    /// edge lower bounds admit a negative-cost cycle, and
    /// [`Error::Infeasible`] when no feasible route exists (or the search
    /// exceeded [`RouteConfig::max_states`]).
    pub fn plan(&mut self, graph: &RoadGraph, query: RouteQuery) -> Result<RoutePlan> {
        let _route_span = telemetry::span("route.plan_seconds");
        if query.origin.index() >= graph.node_count() || query.dest.index() >= graph.node_count() {
            return Err(Error::invalid_input("query junction out of range"));
        }
        if query.origin == query.dest {
            return Err(Error::invalid_input(
                "origin equals destination; nothing to route",
            ));
        }
        if query.depart.value() < 0.0 {
            return Err(Error::invalid_input("departure time must be non-negative"));
        }
        let mut metrics = RouteMetrics::default();
        let tw = self.optimizer.config().time_weight;

        // Corridor class per edge, hashed once per query.
        let sigs: Vec<u64> = graph
            .edges()
            .iter()
            .map(|e| road_signature_with(e.road(), &mut self.scratch))
            .collect();

        // Junctions that can reach the destination at all (pure topology).
        // Out-edges into the rest of the graph are never worth expanding,
        // and skipping them keeps the search finite when the destination
        // is unreachable.
        let reach = reachable_to(graph, query.dest);
        if !reach[query.origin.index()] {
            return Err(Error::infeasible(
                "destination is not reachable from the origin",
            ));
        }

        // Admissible per-junction heuristic from the edge lower bounds.
        let h: Vec<f64> = if self.config.heuristic {
            self.heuristic(graph, query.dest, &sigs, &mut metrics)?
        } else {
            vec![0.0; graph.node_count()]
        };

        // ---- label-correcting best-first search ----
        let q = self.config.depart_quantum;
        let start_bin = depart_bin(query.depart, q);
        let mut states: Vec<Label> = vec![Label {
            node: query.origin.0,
            bin: start_bin,
            cost: 0.0,
            parent: None,
        }];
        let mut index: HashMap<(u32, u64), usize> = HashMap::new();
        index.insert((query.origin.0, start_bin), 0);
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut best: Option<f64> = None;
        heap.push(HeapItem {
            f: h[query.origin.index()],
            seq,
            g_bits: 0.0_f64.to_bits(),
            work: Work::Expand { state: 0 },
        });

        while let Some(item) = heap.pop() {
            // Everything still queued costs at least `item.f`; once that
            // strictly exceeds the best route, the rest is unreachable
            // improvement-wise. Entries *equal* to the best must still be
            // processed for the lexicographic tie-break.
            if best.is_some_and(|b| item.f > b) {
                if matches!(item.work, Work::Candidate { .. }) {
                    metrics.edges_pruned += 1;
                }
                for rest in heap.drain() {
                    if matches!(rest.work, Work::Candidate { .. }) {
                        metrics.edges_pruned += 1;
                    }
                }
                break;
            }
            match item.work {
                Work::Expand { state } => {
                    if states[state].cost.to_bits() != item.g_bits {
                        continue; // superseded label; a fresher entry exists
                    }
                    metrics.states_settled += 1;
                    let g = states[state].cost;
                    let node = NodeId(states[state].node);
                    let mut eager: Vec<(usize, u32)> = Vec::new();
                    for &eid in graph.out_edges(node) {
                        let e = graph.edge(eid);
                        if !reach[e.to().index()] {
                            continue;
                        }
                        metrics.edges_expanded += 1;
                        if self.config.heuristic {
                            let lb = self
                                .edge_lb(sigs[eid.index()], e.road(), &mut metrics)?
                                .cost_floor(tw);
                            let f = g + lb + h[e.to().index()];
                            if f.is_infinite() || best.is_some_and(|b| f > b) {
                                metrics.edges_pruned += 1;
                                continue;
                            }
                            seq += 1;
                            heap.push(HeapItem {
                                f,
                                seq,
                                g_bits: g.to_bits(),
                                work: Work::Candidate {
                                    from: state,
                                    edge: eid.0,
                                },
                            });
                        } else {
                            // Lower-bound-free mode: price every out-edge
                            // through the oracle right now, like Dijkstra
                            // relaxing all successors on expansion.
                            eager.push((state, eid.0));
                        }
                    }
                    if !eager.is_empty() {
                        self.evaluate_and_relax(
                            graph,
                            &sigs,
                            eager,
                            &mut states,
                            &mut index,
                            &mut heap,
                            &mut seq,
                            &mut best,
                            &h,
                            query.dest,
                            &mut metrics,
                        )?;
                    }
                }
                Work::Candidate { from, edge } => {
                    if states[from].cost.to_bits() != item.g_bits {
                        continue; // superseded; the improved label re-pushed
                    }
                    let mut batch = vec![(from, edge)];
                    if self.config.batch_frontier {
                        while batch.len() < self.config.batch_width {
                            let Some(top) = heap.peek() else { break };
                            let (Work::Candidate { from, edge }, f, g_bits) =
                                (top.work, top.f, top.g_bits)
                            else {
                                break;
                            };
                            if best.is_some_and(|b| f > b) {
                                break; // will be drained as pruned later
                            }
                            heap.pop();
                            if states[from].cost.to_bits() != g_bits {
                                continue;
                            }
                            batch.push((from, edge));
                        }
                    }
                    self.evaluate_and_relax(
                        graph,
                        &sigs,
                        batch,
                        &mut states,
                        &mut index,
                        &mut heap,
                        &mut seq,
                        &mut best,
                        &h,
                        query.dest,
                        &mut metrics,
                    )?;
                }
            }
            if states.len() > self.config.max_states {
                return Err(Error::infeasible(format!(
                    "route search exceeded {} labels; is the graph free of negative-cost cycles?",
                    self.config.max_states
                )));
            }
        }

        // The best destination label, ties toward the lexicographically
        // smallest edge sequence (the search maintained exactly that).
        let best_state = states
            .iter()
            .enumerate()
            .filter(|(_, l)| l.node == query.dest.0)
            .min_by(|(i, a), (j, b)| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| path_edges(&states, *i).cmp(&path_edges(&states, *j)))
            })
            .map(|(i, _)| i);
        let Some(best_state) = best_state else {
            return Err(Error::infeasible("no feasible route to the destination"));
        };
        let plan = self.stitch(&states, best_state, start_bin, metrics);
        plan.metrics.publish();
        Ok(plan)
    }

    /// Prices a fixed edge sequence under the same route model, oracle,
    /// and caches as [`plan`](Self::plan) — the reference the exactness
    /// proptests enumerate with, and a way to re-quote a known route.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the edges do not form a
    /// connected path, and [`Error::Infeasible`] if any edge has no
    /// feasible profile at its departure bin.
    pub fn price_path(
        &mut self,
        graph: &RoadGraph,
        edges: &[EdgeId],
        depart: Seconds,
    ) -> Result<RoutePlan> {
        if edges.is_empty() {
            return Err(Error::invalid_input("a route needs at least one edge"));
        }
        for w in edges.windows(2) {
            if graph.edge(w[0]).to() != graph.edge(w[1]).from() {
                return Err(Error::invalid_input("edges do not form a connected path"));
            }
        }
        let mut metrics = RouteMetrics::default();
        let q = self.config.depart_quantum;
        let start_bin = depart_bin(depart, q);
        let mut states: Vec<Label> = vec![Label {
            node: graph.edge(edges[0]).from().0,
            bin: start_bin,
            cost: 0.0,
            parent: None,
        }];
        for &eid in edges {
            let e = graph.edge(eid);
            let from = states.len() - 1;
            let sig = road_signature_with(e.road(), &mut self.scratch);
            let bin = states[from].bin;
            let eval = self.evaluate_edge(e.road(), sig, bin, &mut metrics)?;
            let Some(eval) = eval else {
                return Err(Error::infeasible(format!(
                    "edge {} has no feasible profile at bin {bin}",
                    eid.0
                )));
            };
            let arrival = Seconds::new(bin as f64 * q.value()) + eval.profile.trip_time;
            let cost = states[from].cost + eval.cost;
            states.push(Label {
                node: e.to().0,
                bin: depart_bin(arrival, q),
                cost,
                parent: Some((from, eid.0, eval)),
            });
        }
        let last = states.len() - 1;
        let plan = self.stitch(&states, last, start_bin, metrics);
        plan.metrics.publish();
        Ok(plan)
    }

    /// The lower bound for one corridor class, through the capacity-bound
    /// per-class cache.
    fn edge_lb(&mut self, sig: u64, road: &Road, metrics: &mut RouteMetrics) -> Result<EdgeBound> {
        if let Some(b) = self.lb_cache.get(&sig) {
            metrics.lb_cache_hits += 1;
            return Ok(*b);
        }
        metrics.lb_cache_misses += 1;
        let bound = self.optimizer.edge_bound_with(road, &mut self.arenas[0])?;
        if self.lb_cache.len() < self.config.lb_cache_capacity {
            self.lb_cache.insert(sig, bound);
        }
        Ok(bound)
    }

    /// Admissible cost-to-destination per junction: a Bellman–Ford sweep
    /// of the edge lower bounds over the reversed graph (lower bounds can
    /// be negative on net regenerative corridors, so Dijkstra would be
    /// wrong here).
    fn heuristic(
        &mut self,
        graph: &RoadGraph,
        dest: NodeId,
        sigs: &[u64],
        metrics: &mut RouteMetrics,
    ) -> Result<Vec<f64>> {
        let tw = self.optimizer.config().time_weight;
        let mut lb = Vec::with_capacity(graph.edge_count());
        for (e, &sig) in graph.edges().iter().zip(sigs) {
            lb.push(self.edge_lb(sig, e.road(), metrics)?.cost_floor(tw));
        }
        let n = graph.node_count();
        let mut h = vec![f64::INFINITY; n];
        h[dest.index()] = 0.0;
        for _ in 0..n.saturating_sub(1) {
            let mut changed = false;
            for (e, &w) in graph.edges().iter().zip(&lb) {
                if !h[e.to().index()].is_finite() || !w.is_finite() {
                    continue;
                }
                let cand = w + h[e.to().index()];
                if cand < h[e.from().index()] {
                    h[e.from().index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (e, &w) in graph.edges().iter().zip(&lb) {
            if h[e.to().index()].is_finite()
                && w.is_finite()
                && w + h[e.to().index()] < h[e.from().index()]
            {
                return Err(Error::invalid_input(
                    "edge lower bounds admit a negative-cost cycle; routing is ill-posed",
                ));
            }
        }
        Ok(h)
    }

    /// Prices one edge at one departure bin: plan-memo lookup, then the
    /// oracle. `Ok(None)` means the oracle proved the edge infeasible at
    /// this bin (and that, too, is memoized).
    fn evaluate_edge(
        &mut self,
        road: &Road,
        sig: u64,
        bin: u64,
        metrics: &mut RouteMetrics,
    ) -> Result<Option<Arc<PlanEval>>> {
        if self.config.memo {
            if let Some(hit) = self.plans.get(&(sig, bin)) {
                metrics.plan_memo_hits += 1;
                return Ok(hit.clone());
            }
        }
        metrics.oracle_calls += 1;
        let cfg = self.optimizer.config();
        let (tw, pm, horizon) = (cfg.time_weight, cfg.penalty_m, cfg.horizon);
        let depart = Seconds::new(bin as f64 * self.config.depart_quantum.value());
        let signals = edge_constraints(road, depart, horizon, &mut self.scratch);
        let solved = self.optimizer.optimize_from_with(
            road,
            &signals,
            StartState::default(),
            &mut self.arenas[0],
        );
        let eval = match solved {
            Ok(profile) => Some(Arc::new(PlanEval {
                cost: blended_cost(&profile, tw, pm),
                profile,
            })),
            Err(_) => None,
        };
        if self.config.memo {
            self.plans.insert((sig, bin), eval.clone());
        }
        Ok(eval)
    }

    /// Prices a batch of `(label, edge)` traversals — memo hits directly,
    /// the rest through one batched oracle call — and relaxes each result
    /// into the label set, in batch order.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_and_relax(
        &mut self,
        graph: &RoadGraph,
        sigs: &[u64],
        batch: Vec<(usize, u32)>,
        states: &mut Vec<Label>,
        index: &mut HashMap<(u32, u64), usize>,
        heap: &mut BinaryHeap<HeapItem>,
        seq: &mut u64,
        best: &mut Option<f64>,
        h: &[f64],
        dest: NodeId,
        metrics: &mut RouteMetrics,
    ) -> Result<()> {
        // Resolve memo hits; collect the oracle work. With memoization on,
        // duplicate (class, bin) keys inside one batch collapse to a
        // single request.
        let cfg = self.optimizer.config();
        let (tw, pm, horizon) = (cfg.time_weight, cfg.penalty_m, cfg.horizon);
        let q = self.config.depart_quantum.value();
        let mut resolved: Vec<Option<Arc<PlanEval>>> = vec![None; batch.len()];
        let mut todo: Vec<usize> = Vec::new(); // indices into `batch`
        let mut request_of: Vec<usize> = vec![usize::MAX; batch.len()];
        let mut key_to_request: HashMap<(u64, u64), usize> = HashMap::new();
        for (i, &(from, edge)) in batch.iter().enumerate() {
            let key = (sigs[edge as usize], states[from].bin);
            if self.config.memo {
                if let Some(hit) = self.plans.get(&key) {
                    metrics.plan_memo_hits += 1;
                    resolved[i] = hit.clone();
                    request_of[i] = usize::MAX;
                    continue;
                }
                if let Some(&r) = key_to_request.get(&key) {
                    request_of[i] = r;
                    continue;
                }
                key_to_request.insert(key, todo.len());
            }
            request_of[i] = todo.len();
            todo.push(i);
        }

        if !todo.is_empty() {
            metrics.oracle_calls += todo.len() as u64;
            let signal_sets: Vec<Vec<SignalConstraint>> = todo
                .iter()
                .map(|&i| {
                    let (from, edge) = batch[i];
                    let road = graph.edge(EdgeId(edge)).road();
                    let depart = Seconds::new(states[from].bin as f64 * q);
                    edge_constraints(road, depart, horizon, &mut self.scratch)
                })
                .collect();
            let requests: Vec<PlanRequest<'_>> = todo
                .iter()
                .zip(&signal_sets)
                .map(|(&i, signals)| PlanRequest {
                    road: graph.edge(EdgeId(batch[i].1)).road(),
                    signals,
                    start: StartState::default(),
                })
                .collect();
            let results = self
                .optimizer
                .optimize_batch_with(&requests, &mut self.arenas);
            let evals: Vec<Option<Arc<PlanEval>>> = results
                .into_iter()
                .map(|r| {
                    r.ok().map(|profile| {
                        Arc::new(PlanEval {
                            cost: blended_cost(&profile, tw, pm),
                            profile,
                        })
                    })
                })
                .collect();
            if self.config.memo {
                for (&i, eval) in todo.iter().zip(&evals) {
                    let (from, edge) = batch[i];
                    let key = (sigs[edge as usize], states[from].bin);
                    self.plans.insert(key, eval.clone());
                }
            }
            for (i, &r) in request_of.iter().enumerate() {
                if r != usize::MAX {
                    resolved[i] = evals[r].clone();
                }
            }
        }

        // Relax in batch order.
        for (&(from, edge), eval) in batch.iter().zip(resolved) {
            let Some(eval) = eval else { continue }; // infeasible edge/bin
            let e = graph.edge(EdgeId(edge));
            let bin = states[from].bin;
            let arrival = Seconds::new(bin as f64 * q) + eval.profile.trip_time;
            let next_bin = depart_bin(arrival, self.config.depart_quantum);
            let tentative = states[from].cost + eval.cost;
            let to = e.to();
            match index.get(&(to.0, next_bin)) {
                None => {
                    let idx = states.len();
                    states.push(Label {
                        node: to.0,
                        bin: next_bin,
                        cost: tentative,
                        parent: Some((from, edge, eval)),
                    });
                    index.insert((to.0, next_bin), idx);
                    if to == dest {
                        *best = Some(best.map_or(tentative, |b: f64| b.min(tentative)));
                    }
                    *seq += 1;
                    heap.push(HeapItem {
                        f: tentative + h[to.index()],
                        seq: *seq,
                        g_bits: tentative.to_bits(),
                        work: Work::Expand { state: idx },
                    });
                }
                Some(&idx) => {
                    let improved = tentative < states[idx].cost;
                    let tie = tentative == states[idx].cost && {
                        let mut cand = path_edges(states, from);
                        cand.push(edge);
                        cand < path_edges(states, idx)
                    };
                    if improved || tie {
                        states[idx].cost = tentative;
                        states[idx].parent = Some((from, edge, eval));
                        if improved && to == dest {
                            *best = Some(best.map_or(tentative, |b: f64| b.min(tentative)));
                        }
                        // Re-expand so downstream labels see the new cost
                        // (or the new, lexicographically smaller path).
                        *seq += 1;
                        heap.push(HeapItem {
                            f: tentative + h[to.index()],
                            seq: *seq,
                            g_bits: tentative.to_bits(),
                            work: Work::Expand { state: idx },
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Assembles the final [`RoutePlan`] by walking a destination label's
    /// parents and concatenating the stored edge profiles.
    fn stitch(
        &self,
        states: &[Label],
        dest_state: usize,
        start_bin: u64,
        metrics: RouteMetrics,
    ) -> RoutePlan {
        let q = self.config.depart_quantum.value();
        let mut chain: Vec<&Label> = Vec::new();
        let mut cur = dest_state;
        loop {
            chain.push(&states[cur]);
            match &states[cur].parent {
                Some((prev, _, _)) => cur = *prev,
                None => break,
            }
        }
        chain.reverse();

        let mut edges = Vec::with_capacity(chain.len() - 1);
        let mut stations: Vec<Meters> = Vec::new();
        let mut speeds: Vec<MetersPerSecond> = Vec::new();
        let mut times: Vec<Seconds> = Vec::new();
        let mut offset = 0.0f64;
        let mut total_energy = 0.0f64;
        let mut violations = 0usize;
        let mut arrival = Seconds::new(start_bin as f64 * q);
        for label in chain.iter().skip(1) {
            let (prev, edge, eval) = label.parent.as_ref().expect("non-origin label");
            let depart = Seconds::new(states[*prev].bin as f64 * q);
            edges.push(EdgeId(*edge));
            let p = &eval.profile;
            for i in 0..p.stations.len() {
                let t = depart + p.times[i];
                if i == 0 {
                    // Skip the duplicate junction sample unless the
                    // vehicle actually waited there.
                    if let Some(&last) = times.last() {
                        if t == last {
                            continue;
                        }
                    }
                }
                stations.push(Meters::new(offset + p.stations[i].value()));
                speeds.push(p.speeds[i]);
                times.push(t);
            }
            offset += p.stations.last().expect("non-empty profile").value();
            total_energy += p.total_energy.value();
            violations += p.window_violations;
            arrival = depart + p.trip_time;
        }
        RoutePlan {
            edges,
            cost: states[dest_state].cost,
            total_energy: AmpereHours::new(total_energy),
            depart: Seconds::new(start_bin as f64 * q),
            arrival,
            window_violations: violations,
            stations,
            speeds,
            times,
            metrics,
        }
    }
}

/// The edge-id sequence of a label's path from the origin.
fn path_edges(states: &[Label], mut idx: usize) -> Vec<u32> {
    let mut rev = Vec::new();
    while let Some((prev, edge, _)) = &states[idx].parent {
        rev.push(*edge);
        idx = *prev;
    }
    rev.reverse();
    rev
}

/// Junctions from which `dest` is reachable (reverse BFS over topology).
fn reachable_to(graph: &RoadGraph, dest: NodeId) -> Vec<bool> {
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); graph.node_count()];
    for e in graph.edges() {
        rev[e.to().index()].push(e.from().0);
    }
    let mut reach = vec![false; graph.node_count()];
    reach[dest.index()] = true;
    let mut queue = vec![dest.0];
    while let Some(n) = queue.pop() {
        for &p in &rev[n as usize] {
            if !reach[p as usize] {
                reach[p as usize] = true;
                queue.push(p);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpConfig;
    use velopt_ev_energy::{EnergyModel, VehicleParams};
    use velopt_road::{CorridorTemplate, NetworkTemplate};

    fn small_template() -> CorridorTemplate {
        CorridorTemplate {
            length: (200.0, 400.0),
            lights: (0, 1),
            phase: (15.0, 25.0),
            stop_sign_probability: 0.3,
            max_grade_percent: 0.0,
            limits_kmh: (30.0, 50.0),
        }
    }

    fn router(threads: usize, config: RouteConfig) -> Router {
        let optimizer = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                horizon: Seconds::new(300.0),
                threads,
                ..DpConfig::default()
            },
        )
        .unwrap();
        Router::new(optimizer, config).unwrap()
    }

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadGraph {
        NetworkTemplate {
            rows,
            cols,
            corridor: small_template(),
            corridor_pool: 2,
        }
        .generate(seed)
        .unwrap()
    }

    #[test]
    fn routes_across_a_grid() {
        let graph = grid(2, 3, 9);
        let mut r = router(1, RouteConfig::default());
        let query = RouteQuery {
            origin: NodeId(0),
            dest: NodeId(5),
            depart: Seconds::ZERO,
        };
        let plan = r.plan(&graph, query).unwrap();
        assert!(!plan.edges.is_empty());
        assert_eq!(graph.edge(plan.edges[0]).from(), NodeId(0));
        assert_eq!(graph.edge(*plan.edges.last().unwrap()).to(), NodeId(5));
        for w in plan.edges.windows(2) {
            assert_eq!(graph.edge(w[0]).to(), graph.edge(w[1]).from());
        }
        // The stitched profile is monotone in time and position and starts
        // and ends at rest.
        assert!(plan.times.windows(2).all(|w| w[0] <= w[1]));
        assert!(plan.stations.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(plan.speeds[0], MetersPerSecond::ZERO);
        assert_eq!(*plan.speeds.last().unwrap(), MetersPerSecond::ZERO);
        assert!(plan.metrics.oracle_calls > 0);
        // And the plan agrees with pricing its own path.
        let priced = r.price_path(&graph, &plan.edges, query.depart).unwrap();
        assert_eq!(priced, plan);
    }

    #[test]
    fn memo_serves_repeat_queries() {
        let graph = grid(2, 2, 4);
        let mut r = router(1, RouteConfig::default());
        let query = RouteQuery {
            origin: NodeId(0),
            dest: NodeId(3),
            depart: Seconds::ZERO,
        };
        let first = r.plan(&graph, query).unwrap();
        assert!(first.metrics.oracle_calls > 0);
        let second = r.plan(&graph, query).unwrap();
        assert_eq!(second, first);
        assert_eq!(second.metrics.oracle_calls, 0, "{:?}", second.metrics);
        assert!(second.metrics.plan_memo_hits > 0);
        assert_eq!(second.metrics.lb_cache_misses, 0);
    }

    #[test]
    fn heuristic_cuts_oracle_calls() {
        let graph = grid(3, 3, 7);
        let query = RouteQuery {
            origin: NodeId(0),
            dest: NodeId(8),
            depart: Seconds::ZERO,
        };
        let mut astar = router(1, RouteConfig::default());
        let with = astar.plan(&graph, query).unwrap();
        let mut dijkstra = router(
            1,
            RouteConfig {
                heuristic: false,
                ..RouteConfig::default()
            },
        );
        let without = dijkstra.plan(&graph, query).unwrap();
        assert_eq!(with, without);
        assert!(
            with.metrics.oracle_calls < without.metrics.oracle_calls,
            "A* {} vs Dijkstra {}",
            with.metrics.oracle_calls,
            without.metrics.oracle_calls
        );
        assert!(with.metrics.edges_pruned > 0);
    }

    #[test]
    fn unreachable_destination_is_infeasible() {
        // Two nodes, edge pointing the wrong way.
        let mut g = RoadGraph::new(2).unwrap();
        g.add_edge(NodeId(1), NodeId(0), Road::us25()).unwrap();
        let mut r = router(1, RouteConfig::default());
        let err = r
            .plan(
                &g,
                RouteQuery {
                    origin: NodeId(0),
                    dest: NodeId(1),
                    depart: Seconds::ZERO,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("not reachable"), "{err}");
    }

    #[test]
    fn query_validation() {
        let graph = grid(2, 2, 1);
        let mut r = router(1, RouteConfig::default());
        assert!(r
            .plan(
                &graph,
                RouteQuery {
                    origin: NodeId(0),
                    dest: NodeId(0),
                    depart: Seconds::ZERO,
                }
            )
            .is_err());
        assert!(r
            .plan(
                &graph,
                RouteQuery {
                    origin: NodeId(0),
                    dest: NodeId(9),
                    depart: Seconds::ZERO,
                }
            )
            .is_err());
        assert!(r
            .plan(
                &graph,
                RouteQuery {
                    origin: NodeId(0),
                    dest: NodeId(3),
                    depart: Seconds::new(-1.0),
                }
            )
            .is_err());
    }

    #[test]
    fn config_validation() {
        assert!(RouteConfig {
            depart_quantum: Seconds::ZERO,
            ..RouteConfig::default()
        }
        .validated()
        .is_err());
        assert!(RouteConfig {
            batch_width: 0,
            ..RouteConfig::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn edge_bound_is_admissible_for_solved_edges() {
        let graph = grid(2, 2, 11);
        let opt = DpOptimizer::new(
            EnergyModel::new(VehicleParams::spark_ev()),
            DpConfig {
                horizon: Seconds::new(300.0),
                threads: 1,
                ..DpConfig::default()
            },
        )
        .unwrap();
        let tw = opt.config().time_weight;
        let pm = opt.config().penalty_m;
        let mut scratch = Vec::new();
        for e in graph.edges() {
            let bound = opt.edge_bound(e.road()).unwrap();
            for bin in [0u64, 7, 31] {
                let depart = Seconds::new(bin as f64);
                let signals =
                    edge_constraints(e.road(), depart, opt.config().horizon, &mut scratch);
                let profile = opt.optimize(e.road(), &signals).unwrap();
                let cost = blended_cost(&profile, tw, pm);
                assert!(
                    bound.cost_floor(tw) <= cost + 1e-12,
                    "bound {} exceeds cost {} on edge {} bin {bin}",
                    bound.cost_floor(tw),
                    cost,
                    e.road().length()
                );
                assert!(bound.duration_floor <= profile.trip_time + Seconds::new(1e-9));
            }
        }
    }

    #[test]
    fn signature_distinguishes_features_and_is_stable() {
        let a = small_template().generate(1).unwrap();
        let b = small_template().generate(2).unwrap();
        assert_eq!(road_signature(&a), road_signature(&a));
        assert_ne!(road_signature(&a), road_signature(&b));
        let mut scratch = Vec::new();
        assert_eq!(road_signature(&a), road_signature_with(&a, &mut scratch));
    }

    #[test]
    fn depart_bin_rounds_up() {
        let q = Seconds::new(1.0);
        assert_eq!(depart_bin(Seconds::ZERO, q), 0);
        assert_eq!(depart_bin(Seconds::new(0.25), q), 1);
        assert_eq!(depart_bin(Seconds::new(3.0), q), 3);
        assert_eq!(depart_bin(Seconds::new(3.0001), q), 4);
    }
}
