//! SIMD microkernels for the DP layer relaxation.
//!
//! The relax loops in [`crate::dp`] evaluate, for every live source state
//! and every target speed in its acceleration band, the candidate pair
//!
//! ```text
//! cost[j] = (src.cost + charge[j]) + time_weight · duration[j]
//! t1[j]   = (src.time + duration[j]) + dwell
//! ```
//!
//! over the contiguous structure-of-arrays charge/duration rows a
//! [`CostTable`](crate::memo::CostTable) keeps per source speed. This
//! module provides that evaluation as an [`MR`] × [`NR`] register tile —
//! up to `MR` source states (which share the charge/duration rows) by
//! `NR` target-speed lanes — in two bit-identical flavors: a portable
//! scalar kernel and an AVX2 kernel selected at runtime.
//!
//! # Bit-identity contract
//!
//! Every lane is an *independent* expression — there is no cross-lane
//! accumulation anywhere — so vectorizing cannot reassociate anything.
//! The AVX2 tile uses `vmulpd` + `vaddpd` only, never a fused
//! multiply-add (an FMA would skip the intermediate rounding of the
//! `mul` result and produce different bits), and evaluates exactly the
//! scalar expressions above with the same association:
//! `(a + b) + c`, with the product `time_weight · duration` rounded
//! before the final add. IEEE-754 `mul` and `add` are deterministic
//! per-lane operations, so the two kernels agree bit-for-bit on every
//! input — including the `NaN` lanes marking infeasible transitions,
//! which the caller's winner pass filters out. Argmin/winner selection
//! never moves into the kernels: the caller scans the tile scalar-ly in
//! the sequential candidate order, so tie-breaking is untouched.
//!
//! # Dispatch
//!
//! [`dispatch`] gates the AVX2 path on three independent switches: the
//! [`DpConfig::simd`](crate::dp::DpConfig::simd) knob, the
//! `VELOPT_DP_SIMD` environment override (`0`/`off`/`scalar`/`false`
//! forces the portable kernel — how CI exercises the scalar path on any
//! host), and a runtime `is_x86_feature_detected!("avx2")` probe. Bands
//! narrower than a full tile always take the portable kernel (the
//! ragged-edge fallback), which is bit-identical by the argument above.

use std::sync::OnceLock;

/// Source rows per tile: live DP states sharing one charge/duration row.
pub(crate) const MR: usize = 4;

/// Target-speed lanes per tile (two AVX2 registers of four doubles).
pub(crate) const NR: usize = 8;

/// One tile source row: the broadcast scalars of a live DP state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TileSrc {
    /// Accumulated path cost of the source state.
    pub cost: f64,
    /// Continuous arrival time of the source state.
    pub time: f64,
}

/// Tile output: candidate base costs (before the window penalty) and
/// continuous arrival times, one row per tile source.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileOut {
    pub cost: [[f64; NR]; MR],
    pub t1: [[f64; NR]; MR],
}

impl TileOut {
    pub(crate) fn new() -> Self {
        Self {
            cost: [[0.0; NR]; MR],
            t1: [[0.0; NR]; MR],
        }
    }
}

/// Whether `VELOPT_DP_SIMD` forces the portable kernel. Read once and
/// cached: the override exists so CI can pin the dispatch for a whole
/// test process, not to be toggled mid-run.
fn env_forces_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("VELOPT_DP_SIMD") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "scalar" | "false"
        ),
        Err(_) => false,
    })
}

/// Whether the relax loops should attempt the AVX2 kernels: the config
/// knob must allow it, the `VELOPT_DP_SIMD` override must not force
/// scalar, and the host must actually report AVX2.
pub(crate) fn dispatch(config_simd: bool) -> bool {
    if !config_simd || env_forces_scalar() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        x86::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable tile: for each of the `srcs.len()` source rows and `n` target
/// lanes,
///
/// ```text
/// cost[r][j] = (srcs[r].cost + charge[j]) + tw · dur[j]
/// t1[r][j]   = (srcs[r].time + dur[j]) + dwell
/// ```
///
/// — the exact per-lane expressions (and association) of the AVX2 tile
/// and of the historical scalar relax loop.
#[inline]
pub(crate) fn relax_tile_scalar(
    charge: &[f64],
    dur: &[f64],
    srcs: &[TileSrc],
    tw: f64,
    dwell: f64,
    n: usize,
    out: &mut TileOut,
) {
    for (r, src) in srcs.iter().enumerate() {
        for j in 0..n {
            out.cost[r][j] = (src.cost + charge[j]) + tw * dur[j];
            out.t1[r][j] = (src.time + dur[j]) + dwell;
        }
    }
}

/// Computes one relax tile, choosing the AVX2 or portable kernel, and
/// returns whether the AVX2 path ran. `use_simd` is the solve-level
/// [`dispatch`] verdict; short tiles (`n < NR`, the ragged band edge)
/// always take the portable kernel.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn relax_tile(
    use_simd: bool,
    charge: &[f64],
    dur: &[f64],
    srcs: &[TileSrc],
    tw: f64,
    dwell: f64,
    n: usize,
    out: &mut TileOut,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if use_simd && n == NR && x86::available() {
        // SAFETY: `x86::available()` just verified AVX2 on this host, and
        // `n == NR` guarantees `charge` and `dur` hold a full tile (the
        // caller slices them to `n` lanes).
        unsafe { x86::relax_tile(charge, dur, srcs, tw, dwell, out) };
        return true;
    }
    relax_tile_scalar(charge, dur, srcs, tw, dwell, n, out);
    false
}

/// Portable window-bound stencil fold: the minimum over `b2 in [lo, hi]`
/// of
///
/// ```text
/// gap  = (b2 − b − 1)·dt − dwell − slack
/// cand = tw·max(dmin, gap) + pen[b2] + next[b2]
/// ```
///
/// skipping non-finite `next` bins — exactly the inner loop of the
/// backward `wait` sweep in [`crate::dp`]. Kept as the reference the AVX2
/// fold must match bit-for-bit.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn wait_stencil_min_scalar(
    next: &[f64],
    pen: &[f64],
    lo: usize,
    hi: usize,
    b: usize,
    dt: f64,
    dwell: f64,
    slack: f64,
    tw: f64,
    dmin: f64,
) -> f64 {
    let mut best = f64::INFINITY;
    for b2 in lo..=hi {
        let w2 = next[b2];
        if !w2.is_finite() {
            continue;
        }
        let gap = (b2 as f64 - b as f64 - 1.0) * dt - dwell - slack;
        let cand = tw * dmin.max(gap) + pen[b2] + w2;
        if cand < best {
            best = cand;
        }
    }
    best
}

/// Window-bound stencil fold, choosing the AVX2 or portable flavor.
///
/// Bit-identity: every candidate is an independent per-bin expression
/// (`sub`/`mul`/`max`/`add`, each a single IEEE-754 rounding, evaluated
/// with the scalar association), and the fold is a pure `min` — `min`
/// performs no rounding, so any fold order over the same candidate set
/// yields the same value, and equal `f64` values of this sweep share one
/// bit pattern (all candidates are non-negative, so `±0.0` ties cannot
/// arise). Non-finite `next` bins the scalar loop skips turn into `+∞`
/// candidates in the vector lanes, which a `min` fold ignores identically.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn wait_stencil_min(
    use_simd: bool,
    next: &[f64],
    pen: &[f64],
    lo: usize,
    hi: usize,
    b: usize,
    dt: f64,
    dwell: f64,
    slack: f64,
    tw: f64,
    dmin: f64,
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if use_simd && hi - lo + 1 >= NR && x86::available() {
        // SAFETY: `x86::available()` just verified AVX2 on this host, and
        // the caller guarantees `lo <= hi < next.len() == pen.len()`.
        return unsafe { x86::wait_stencil_min(next, pen, lo, hi, b, dt, dwell, slack, tw, dmin) };
    }
    wait_stencil_min_scalar(next, pen, lo, hi, b, dt, dwell, slack, tw, dmin)
}

/// AVX2 variant of the relax tile, selected at runtime.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{TileOut, TileSrc};
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_setr_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// One-time (cached by std) AVX2 probe.
    #[inline]
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Full relax tile over `NR` target lanes × `srcs.len()` source rows:
    /// per lane `cost = (c0 + charge) + tw·dur` and `t1 = (t0 + dur) +
    /// dwell`, with `vmulpd`/`vaddpd` only — no FMA — so every lane
    /// carries the exact bits of the portable kernel. The `tw·dur`
    /// products are hoisted out of the row loop; they are pure per-lane
    /// multiplications, so hoisting reuses the identical rounded values
    /// the scalar expression computes inline.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `charge`/`dur` of at least `NR` elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relax_tile(
        charge: &[f64],
        dur: &[f64],
        srcs: &[TileSrc],
        tw: f64,
        dwell: f64,
        out: &mut TileOut,
    ) {
        let vtw = _mm256_set1_pd(tw);
        let vdw = _mm256_set1_pd(dwell);
        let c = charge.as_ptr();
        let d = dur.as_ptr();
        let c0 = _mm256_loadu_pd(c);
        let c1 = _mm256_loadu_pd(c.add(4));
        let d0 = _mm256_loadu_pd(d);
        let d1 = _mm256_loadu_pd(d.add(4));
        let twd0 = _mm256_mul_pd(vtw, d0);
        let twd1 = _mm256_mul_pd(vtw, d1);
        for (r, src) in srcs.iter().enumerate() {
            let vc = _mm256_set1_pd(src.cost);
            let vt = _mm256_set1_pd(src.time);
            let cost0 = _mm256_add_pd(_mm256_add_pd(vc, c0), twd0);
            let cost1 = _mm256_add_pd(_mm256_add_pd(vc, c1), twd1);
            let t10 = _mm256_add_pd(_mm256_add_pd(vt, d0), vdw);
            let t11 = _mm256_add_pd(_mm256_add_pd(vt, d1), vdw);
            _mm256_storeu_pd(out.cost[r].as_mut_ptr(), cost0);
            _mm256_storeu_pd(out.cost[r].as_mut_ptr().add(4), cost1);
            _mm256_storeu_pd(out.t1[r].as_mut_ptr(), t10);
            _mm256_storeu_pd(out.t1[r].as_mut_ptr().add(4), t11);
        }
    }

    /// AVX2 window-bound stencil fold — see
    /// [`wait_stencil_min`](super::wait_stencil_min) for the bit-identity
    /// argument. Eight bins per iteration in two lanes of four, each lane
    /// evaluating the scalar expression sequence verbatim
    /// (`((b2 − b) − 1)·dt − dwell − slack`, then
    /// `(tw·max(dmin, gap) + pen) + next`); the accumulators and the tail
    /// are folded by `min`, which is rounding-free and therefore
    /// order-insensitive here. `_mm256_min_pd`/`_mm256_max_pd` pick the
    /// second operand on ties, matching `f64::max(dmin, gap)`'s
    /// tie-breaking for the finite, positive values this sweep produces;
    /// candidates are placed as the *first* `min` operand so a hypothetical
    /// NaN lane could never displace the accumulator.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `lo <= hi < next.len() == pen.len()`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn wait_stencil_min(
        next: &[f64],
        pen: &[f64],
        lo: usize,
        hi: usize,
        b: usize,
        dt: f64,
        dwell: f64,
        slack: f64,
        tw: f64,
        dmin: f64,
    ) -> f64 {
        let vbf = _mm256_set1_pd(b as f64);
        let vone = _mm256_set1_pd(1.0);
        let vdt = _mm256_set1_pd(dt);
        let vdw = _mm256_set1_pd(dwell);
        let vsl = _mm256_set1_pd(slack);
        let vtw = _mm256_set1_pd(tw);
        let vdm = _mm256_set1_pd(dmin);
        let vstep = _mm256_set1_pd(4.0);
        // Lane bin indices: integer-valued doubles, exact under +4.0 steps.
        let base = _mm256_set1_pd(lo as f64);
        let mut vb2_0 = _mm256_add_pd(base, _mm256_setr_pd(0.0, 1.0, 2.0, 3.0));
        let mut vb2_1 = _mm256_add_pd(base, _mm256_setr_pd(4.0, 5.0, 6.0, 7.0));
        let vstep2 = _mm256_add_pd(vstep, vstep);
        let mut acc0 = _mm256_set1_pd(f64::INFINITY);
        let mut acc1 = _mm256_set1_pd(f64::INFINITY);
        let mut b2 = lo;
        while b2 + 8 <= hi + 1 {
            let w0 = _mm256_loadu_pd(next.as_ptr().add(b2));
            let w1 = _mm256_loadu_pd(next.as_ptr().add(b2 + 4));
            let p0 = _mm256_loadu_pd(pen.as_ptr().add(b2));
            let p1 = _mm256_loadu_pd(pen.as_ptr().add(b2 + 4));
            let gap0 = _mm256_sub_pd(
                _mm256_sub_pd(
                    _mm256_mul_pd(_mm256_sub_pd(_mm256_sub_pd(vb2_0, vbf), vone), vdt),
                    vdw,
                ),
                vsl,
            );
            let gap1 = _mm256_sub_pd(
                _mm256_sub_pd(
                    _mm256_mul_pd(_mm256_sub_pd(_mm256_sub_pd(vb2_1, vbf), vone), vdt),
                    vdw,
                ),
                vsl,
            );
            let cand0 = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(vtw, _mm256_max_pd(vdm, gap0)), p0),
                w0,
            );
            let cand1 = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(vtw, _mm256_max_pd(vdm, gap1)), p1),
                w1,
            );
            acc0 = _mm256_min_pd(cand0, acc0);
            acc1 = _mm256_min_pd(cand1, acc1);
            vb2_0 = _mm256_add_pd(vb2_0, vstep2);
            vb2_1 = _mm256_add_pd(vb2_1, vstep2);
            b2 += 8;
        }
        let folded = _mm256_min_pd(acc0, acc1);
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), folded);
        let mut best = f64::INFINITY;
        for v in lanes {
            if v < best {
                best = v;
            }
        }
        // Ragged tail — the exact scalar loop.
        if b2 <= hi {
            let tail =
                super::wait_stencil_min_scalar(next, pen, b2, hi, b, dt, dwell, slack, tw, dmin);
            if tail < best {
                best = tail;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> (Vec<f64>, Vec<f64>) {
        // Charge/duration rows with awkward magnitudes and NaN (infeasible)
        // lanes, like a real cost-table band.
        let charge = vec![
            0.0123,
            -0.004,
            f64::NAN,
            0.25,
            1.0 / 3.0,
            -0.75,
            2e-9,
            17.25,
            0.5,
            f64::NAN,
        ];
        let dur = vec![
            1.5,
            2.25,
            f64::NAN,
            3.0,
            7.0 / 3.0,
            4.5,
            100.0,
            0.125,
            9.0,
            f64::NAN,
        ];
        (charge, dur)
    }

    fn srcs() -> [TileSrc; MR] {
        [
            TileSrc {
                cost: 0.1,
                time: 12.5,
            },
            TileSrc {
                cost: -0.02,
                time: 13.0 + 1.0 / 7.0,
            },
            TileSrc {
                cost: 1e6,
                time: 0.0,
            },
            TileSrc {
                cost: 0.333,
                time: 899.5,
            },
        ]
    }

    #[test]
    fn avx2_tile_matches_scalar_bitwise() {
        let (charge, dur) = sample_rows();
        let srcs = srcs();
        let tw = 0.003;
        let dwell = 5.5;
        let mut simd_out = TileOut::new();
        let used = relax_tile(
            dispatch(true),
            &charge[..NR],
            &dur[..NR],
            &srcs,
            tw,
            dwell,
            NR,
            &mut simd_out,
        );
        let mut scalar_out = TileOut::new();
        relax_tile_scalar(
            &charge[..NR],
            &dur[..NR],
            &srcs,
            tw,
            dwell,
            NR,
            &mut scalar_out,
        );
        for r in 0..MR {
            for j in 0..NR {
                // NaN lanes must stay NaN in both; finite lanes must agree
                // bit-for-bit.
                assert_eq!(
                    simd_out.cost[r][j].to_bits(),
                    scalar_out.cost[r][j].to_bits(),
                    "cost[{r}][{j}] diverged (simd path used: {used})"
                );
                assert_eq!(
                    simd_out.t1[r][j].to_bits(),
                    scalar_out.t1[r][j].to_bits(),
                    "t1[{r}][{j}] diverged (simd path used: {used})"
                );
            }
        }
    }

    #[test]
    fn ragged_edge_takes_the_scalar_path() {
        let (charge, dur) = sample_rows();
        let srcs = srcs();
        let mut out = TileOut::new();
        // A short band can never enter the AVX2 kernel, even when allowed.
        let used = relax_tile(
            true,
            &charge[..3],
            &dur[..3],
            &srcs,
            0.003,
            0.0,
            3,
            &mut out,
        );
        assert!(!used);
        assert_eq!(
            out.cost[0][0].to_bits(),
            ((srcs[0].cost + charge[0]) + 0.003 * dur[0]).to_bits()
        );
    }

    #[test]
    fn wait_stencil_fold_matches_scalar_bitwise() {
        // A next-row with awkward magnitudes, infinities (skipped bins) and
        // a penalty row mixing zero and the big-M constant, folded over
        // every sub-range so both the vector body and the ragged tail run.
        let n = 37usize;
        let next: Vec<f64> = (0..n)
            .map(|i| match i % 9 {
                0 => f64::INFINITY,
                1 => 0.0,
                k => (k as f64).sqrt() * 0.37 + i as f64 * 1e-3,
            })
            .collect();
        let pen: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 2 { 1.0e6 } else { 0.0 })
            .collect();
        let (dt, dwell, slack, tw) = (1.0, 5.5, 1e-6, 0.003);
        for b in [0usize, 3, 11] {
            for (lo, hi) in [(0usize, n - 1), (2, 12), (5, 5), (1, 9), (0, 7)] {
                for dmin in [2.25, 31.5] {
                    let scalar =
                        wait_stencil_min_scalar(&next, &pen, lo, hi, b, dt, dwell, slack, tw, dmin);
                    let vector =
                        wait_stencil_min(true, &next, &pen, lo, hi, b, dt, dwell, slack, tw, dmin);
                    assert_eq!(
                        vector.to_bits(),
                        scalar.to_bits(),
                        "wait fold diverged at b={b} lo={lo} hi={hi} dmin={dmin}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_scalar_dispatch_never_reports_simd() {
        let (charge, dur) = sample_rows();
        let mut out = TileOut::new();
        let used = relax_tile(
            false,
            &charge[..NR],
            &dur[..NR],
            &srcs(),
            0.003,
            5.5,
            NR,
            &mut out,
        );
        assert!(!used);
        // And the config-off dispatch verdict is scalar regardless of host.
        assert!(!dispatch(false));
    }
}
