//! Closed-loop replanning (an extension beyond the paper).
//!
//! The paper's protocol is open-loop: optimize once, replay via TraCI, and
//! accept the simulator's perturbations (Fig. 6 shows the plans drifting).
//! With [`StartState`]-capable optimization, the
//! plan can instead be *refreshed* from the EV's live state whenever it has
//! drifted too far — an MPC-style loop that keeps the arrival times locked
//! onto the queue-free windows even after disturbances (a slow platoon, an
//! unexpected stop, a longer-than-modeled sign service).

use crate::dp::{OptimizedProfile, SignalConstraint, SolverArena, StartState};
use crate::pipeline::VelocityOptimizationSystem;
use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, MetersPerSecond, Seconds};
use velopt_common::{Error, Result};

/// Replanning policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplanConfig {
    /// Re-optimize when the EV's actual arrival clock has drifted from the
    /// active plan by more than this.
    pub drift_threshold: Seconds,
    /// Never replan more often than this (planning is not free).
    pub min_interval: Seconds,
    /// Route [`refresh_windows`](Replanner::refresh_windows) through the
    /// warm-started incremental repair
    /// ([`DpOptimizer::optimize_windows_refresh`](crate::dp::DpOptimizer::optimize_windows_refresh))
    /// instead of a from-scratch solve. The plan is bit-identical either
    /// way; off exists for A/B benchmarking.
    #[serde(default = "default_repair")]
    pub repair: bool,
}

/// Configs serialized before the repair knob existed deserialize with it
/// enabled.
fn default_repair() -> bool {
    true
}

impl Default for ReplanConfig {
    fn default() -> Self {
        Self {
            drift_threshold: Seconds::new(3.0),
            min_interval: Seconds::new(5.0),
            repair: default_repair(),
        }
    }
}

/// An MPC-style wrapper around the velocity-optimization system.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{Meters, MetersPerSecond, Seconds};
/// use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
/// use velopt_core::replan::{ReplanConfig, Replanner};
///
/// let system = VelocityOptimizationSystem::new(SystemConfig::us25())?;
/// let mut replanner = Replanner::new(system, ReplanConfig::default())?;
/// // The EV reports its live state; the replanner returns the speed to
/// // command and refreshes the plan when drift demands it.
/// let cmd = replanner.command(
///     Meters::new(900.0),
///     MetersPerSecond::new(12.0),
///     Seconds::new(70.0),
/// )?;
/// assert!(cmd.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Replanner {
    system: VelocityOptimizationSystem,
    config: ReplanConfig,
    windows: Vec<SignalConstraint>,
    plan: OptimizedProfile,
    last_replan_at: Seconds,
    replans: usize,
    /// Solver scratch kept across ticks so every refresh after the first
    /// reuses the previous refresh's DP layer buffers and its memoized
    /// transition-cost tables (refreshes over the same corridor hit the
    /// same `(length, grade)` classes and skip the energy model entirely).
    arena: SolverArena,
}

impl Replanner {
    /// Builds the replanner and computes the initial (origin) plan.
    ///
    /// # Errors
    ///
    /// Propagates window-construction and optimization failures.
    pub fn new(system: VelocityOptimizationSystem, config: ReplanConfig) -> Result<Self> {
        if config.drift_threshold.value() <= 0.0 || config.min_interval.value() < 0.0 {
            return Err(Error::invalid_input("replan thresholds must be positive"));
        }
        let windows = system.queue_windows()?;
        let plan = system.optimize()?;
        Ok(Self {
            system,
            config,
            windows,
            plan,
            last_replan_at: Seconds::ZERO,
            replans: 0,
            arena: SolverArena::new(),
        })
    }

    /// The currently-active plan.
    pub fn plan(&self) -> &OptimizedProfile {
        &self.plan
    }

    /// How many times the plan has been refreshed.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// The queue-free windows the active plan was optimized against.
    pub fn windows(&self) -> &[SignalConstraint] {
        &self.windows
    }

    /// Time drift of the live state against the active plan (positive =
    /// running late).
    pub fn drift(&self, position: Meters, time: Seconds) -> Seconds {
        time - self.plan.arrival_time_at(position)
    }

    /// Installs an updated set of queue-free windows (e.g. a fresh `T_q`
    /// push from the cloud predictor) and re-solves the plan from its
    /// current origin state. With [`ReplanConfig::repair`] on, the solve
    /// goes through
    /// [`DpOptimizer::optimize_windows_refresh`](crate::dp::DpOptimizer::optimize_windows_refresh):
    /// when only the windows moved since the previous refresh through this
    /// replanner, the solver revalidates its retained DP layer stack and
    /// re-relaxes only the dirty suffix instead of re-running the full DP.
    /// The resulting plan is bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates optimization failures; the previous plan and windows
    /// stay active when the refresh fails.
    pub fn refresh_windows(&mut self, windows: Vec<SignalConstraint>) -> Result<&OptimizedProfile> {
        let _refresh_span = telemetry::span("replan.window_refresh_seconds");
        let start = StartState {
            position: self.plan.stations[0],
            speed: self.plan.speeds[0],
            time: self.plan.times[0],
        };
        let optimizer = self.system.optimizer();
        let road = &self.system.config().road;
        let plan = if self.config.repair {
            optimizer.optimize_windows_refresh(road, &windows, start, &mut self.arena)?
        } else {
            optimizer.optimize_from_with(road, &windows, start, &mut self.arena)?
        };
        self.windows = windows;
        self.plan = plan;
        self.replans += 1;
        telemetry::add("replan.window_refreshes", 1);
        Ok(&self.plan)
    }

    /// Returns the speed to command for the live state, replanning first if
    /// the drift exceeds the threshold (and the cool-down allows).
    ///
    /// # Errors
    ///
    /// Propagates replanning failures; the previous plan stays active if a
    /// refresh fails because the live state is infeasible (e.g. stopped in
    /// a spot the grid cannot launch from), so control degrades gracefully.
    pub fn command(
        &mut self,
        position: Meters,
        speed: MetersPerSecond,
        time: Seconds,
    ) -> Result<MetersPerSecond> {
        let _tick_span = telemetry::span("replan.tick_seconds");
        let drift = self.drift(position, time).abs();
        let cooled = (time - self.last_replan_at) >= self.config.min_interval;
        // Replanning only makes sense strictly inside the corridor and the
        // planning horizon; outside, serve the stale plan (it is about to
        // end anyway).
        let road = &self.system.config().road;
        let plannable = position.value() > 0.0
            && position < road.length() - Meters::new(1.0)
            && time.value() >= 0.0
            && time < self.system.config().dp.horizon;
        if plannable && drift > self.config.drift_threshold && cooled {
            let start = StartState {
                position,
                speed,
                time,
            };
            match self.system.optimizer().optimize_from_with(
                &self.system.config().road,
                &self.windows,
                start,
                &mut self.arena,
            ) {
                Ok(plan) => {
                    self.plan = plan;
                    self.replans += 1;
                    self.last_replan_at = time;
                    telemetry::add("replan.refreshes", 1);
                }
                Err(Error::Infeasible(_)) => {
                    // Keep the stale plan; control degrades gracefully.
                    telemetry::add("replan.kept_stale", 1);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.plan.speed_at_position(position))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SystemConfig;
    use velopt_queue::TimeWindow;

    fn replanner() -> Replanner {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
        Replanner::new(system, ReplanConfig::default()).unwrap()
    }

    #[test]
    fn rejects_bad_config() {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        assert!(Replanner::new(
            system,
            ReplanConfig {
                drift_threshold: Seconds::ZERO,
                ..ReplanConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn on_schedule_state_does_not_replan() {
        let mut r = replanner();
        let pos = Meters::new(1000.0);
        let t = r.plan().arrival_time_at(pos);
        let v = r.plan().speed_at_position(pos);
        let cmd = r.command(pos, v, t).unwrap();
        assert_eq!(r.replans(), 0);
        assert!((cmd.value() - v.value()).abs() < 1e-9);
    }

    #[test]
    fn late_state_triggers_replan_and_recovers_windows() {
        let mut r = replanner();
        let pos = Meters::new(1000.0);
        let planned_t = r.plan().arrival_time_at(pos);
        // The EV shows up 12 s late at reduced speed (was stuck in traffic).
        let late_t = planned_t + Seconds::new(12.0);
        let _ = r.command(pos, MetersPerSecond::new(10.0), late_t).unwrap();
        assert_eq!(r.replans(), 1, "drift should force a refresh");
        // The refreshed plan starts at the live state...
        assert_eq!(r.plan().stations[0], pos);
        assert!((r.plan().times[0] - late_t).abs().value() < 1e-9);
        // ...and still threads every remaining light's queue-free window.
        assert_eq!(r.plan().window_violations, 0);
    }

    #[test]
    fn cooldown_limits_replan_rate() {
        let mut r = replanner();
        let pos = Meters::new(800.0);
        let planned_t = r.plan().arrival_time_at(pos);
        let late = planned_t + Seconds::new(10.0);
        let _ = r.command(pos, MetersPerSecond::new(12.0), late).unwrap();
        assert_eq!(r.replans(), 1);
        // Immediately after: still drifting, but within the cooldown.
        let _ = r
            .command(
                Meters::new(810.0),
                MetersPerSecond::new(12.0),
                late + Seconds::new(1.0),
            )
            .unwrap();
        assert_eq!(r.replans(), 1, "cooldown must suppress the second refresh");
    }

    #[test]
    fn second_replan_reuses_the_arena() {
        let mut r = replanner();
        let pos = Meters::new(800.0);
        let late = r.plan().arrival_time_at(pos) + Seconds::new(10.0);
        let _ = r.command(pos, MetersPerSecond::new(12.0), late).unwrap();
        assert_eq!(r.replans(), 1);
        // First refresh had to allocate its layers.
        assert!(r.plan().metrics.arena_allocations > 0);

        // Past the cooldown, drifting again further down the corridor: the
        // refreshed solve is no larger than the first, so every layer comes
        // from the arena.
        let pos2 = Meters::new(1200.0);
        let late2 =
            (r.plan().arrival_time_at(pos2) + Seconds::new(10.0)).max(late + Seconds::new(6.0));
        let _ = r.command(pos2, MetersPerSecond::new(12.0), late2).unwrap();
        assert_eq!(r.replans(), 2);
        assert_eq!(r.plan().metrics.arena_allocations, 0);
        assert!(r.plan().metrics.arena_reuse_hits > 0);
        // The second refresh's stations are grid-aligned with the first's
        // (both step the same Δs over the same corridor), so every segment
        // class is already in the arena's transition memo.
        assert_eq!(r.plan().metrics.memo_misses, 0);
        assert_eq!(r.plan().metrics.energy_evals, 0);
        assert!(r.plan().metrics.memo_hits > 0);
    }

    #[test]
    fn window_refresh_repairs_through_the_arena() {
        let mut r = replanner();
        let w = r.windows.clone();
        // First push does the retention solve; an identical push is a
        // zero-diff repair hit.
        let first = r.refresh_windows(w.clone()).unwrap().metrics;
        assert_eq!(first.repair_full_resolves, 1);
        assert_eq!(first.repair_hits, 0);
        let second = r.refresh_windows(w.clone()).unwrap().metrics;
        assert_eq!(second.repair_hits, 1);
        assert_eq!(second.repair_full_resolves, 0);

        // Shift every window by 2 s: a dirty-suffix repair (or, if the
        // retained limit no longer certifies, a full fallback) — either
        // way the plan must match a from-scratch solve exactly.
        let shifted: Vec<SignalConstraint> = w
            .iter()
            .map(|sc| SignalConstraint {
                position: sc.position,
                windows: sc
                    .windows
                    .iter()
                    .map(|tw| TimeWindow {
                        start: tw.start + Seconds::new(2.0),
                        end: tw.end + Seconds::new(2.0),
                    })
                    .collect(),
            })
            .collect();
        let repaired = r.refresh_windows(shifted.clone()).unwrap().clone();
        assert_eq!(
            repaired.metrics.repair_hits + repaired.metrics.repair_full_resolves,
            1
        );
        let scratch = r
            .system
            .optimizer()
            .optimize(&r.system.config().road, &shifted)
            .unwrap();
        assert_eq!(repaired, scratch);
        assert_eq!(r.replans(), 3);
    }

    #[test]
    fn repair_knob_off_solves_from_scratch() {
        let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
        let mut r = Replanner::new(
            system,
            ReplanConfig {
                repair: false,
                ..ReplanConfig::default()
            },
        )
        .unwrap();
        let w = r.windows.clone();
        let with_repair = replanner().refresh_windows(w.clone()).unwrap().clone();
        let metrics = r.refresh_windows(w).unwrap().metrics;
        assert_eq!(metrics.repair_hits, 0);
        assert_eq!(metrics.repair_full_resolves, 0);
        // Same plan either way — the repair path only changes the work.
        assert_eq!(*r.plan(), with_repair);
    }

    #[test]
    fn drift_sign_convention() {
        let r = replanner();
        let pos = Meters::new(1500.0);
        let t = r.plan().arrival_time_at(pos);
        assert!(r.drift(pos, t + Seconds::new(5.0)).value() > 0.0);
        assert!(r.drift(pos, t - Seconds::new(5.0)).value() < 0.0);
    }
}
