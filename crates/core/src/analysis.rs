//! Trip metrics and profile comparison (the numbers behind Fig. 7b/8).

use serde::{Deserialize, Serialize};
use velopt_common::units::{AmpereHours, Meters, Radians, Seconds};
use velopt_common::{Result, TimeSeries};
use velopt_ev_energy::EnergyModel;
use velopt_road::Road;

/// Metrics of one velocity profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileMetrics {
    /// Label used in reports ("proposed", "fast driving", ...).
    pub name: String,
    /// Net battery charge drawn.
    pub energy: AmpereHours,
    /// Trip duration (first to last sample).
    pub trip_time: Seconds,
    /// Distance covered.
    pub distance: Meters,
    /// Number of full stops after departure (zero-speed clusters).
    pub stops: usize,
    /// The largest deceleration observed, in m/s² (positive number).
    pub max_decel: f64,
}

impl ProfileMetrics {
    /// Computes metrics for a speed-vs-time profile on `road`.
    ///
    /// # Errors
    ///
    /// Propagates energy-model failures (e.g. negative speeds).
    pub fn from_speed_series(
        name: impl Into<String>,
        series: &TimeSeries,
        road: &Road,
        energy_model: &EnergyModel,
    ) -> Result<Self> {
        let energy = energy_model.profile_energy(series, |x| grade_on(road, x))?;
        let vs = series.samples();
        let dt = series.step().value();

        // Count zero-speed clusters strictly inside the trip (the departure
        // and terminal stops are not "stops experienced en route").
        let moving_threshold = 0.3;
        let mut stops = 0usize;
        let mut in_stop = false;
        let mut started_moving = false;
        for (i, &v) in vs.iter().enumerate() {
            let is_last = i + 1 == vs.len();
            if v > moving_threshold {
                started_moving = true;
                in_stop = false;
            } else if started_moving && !in_stop && !is_last {
                in_stop = true;
                stops += 1;
            }
        }
        // If the profile's final samples are the terminal stop, the loop
        // above may have counted it; drop it when the stop runs to the end.
        if in_stop {
            stops = stops.saturating_sub(1);
        }

        let mut max_decel: f64 = 0.0;
        for w in vs.windows(2) {
            max_decel = max_decel.max((w[0] - w[1]) / dt);
        }

        Ok(Self {
            name: name.into(),
            energy,
            trip_time: series.duration(),
            distance: Meters::new(series.integrate()),
            stops,
            max_decel,
        })
    }

    /// Energy in the paper's reporting unit (mAh).
    pub fn energy_mah(&self) -> f64 {
        self.energy.to_milliamp_hours()
    }
}

fn grade_on(road: &Road, x: Meters) -> Radians {
    if road.contains(x) {
        road.grade_at(x)
    } else {
        Radians::ZERO
    }
}

/// A side-by-side comparison of several profiles against a reference
/// (Fig. 7b's "reduces total energy consumption by X% compared with ...").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripComparison {
    /// Metrics per profile, reference first.
    pub profiles: Vec<ProfileMetrics>,
}

impl TripComparison {
    /// Builds a comparison; the first profile is the reference the savings
    /// are computed for.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: Vec<ProfileMetrics>) -> Self {
        assert!(!profiles.is_empty(), "comparison needs >= 1 profile");
        Self { profiles }
    }

    /// The reference profile (the proposed method).
    pub fn reference(&self) -> &ProfileMetrics {
        &self.profiles[0]
    }

    /// Energy saved by the reference relative to the named profile, as a
    /// fraction (`0.175` = the paper's 17.5 % against fast driving).
    pub fn savings_vs(&self, name: &str) -> Option<f64> {
        let other = self.profiles.iter().find(|p| p.name == name)?;
        if other.energy.value() == 0.0 {
            return None;
        }
        Some(1.0 - self.reference().energy.value() / other.energy.value())
    }

    /// TSV rows: `name, energy_mAh, trip_time_s, stops, max_decel`.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("profile\tenergy_mAh\ttrip_time_s\tstops\tmax_decel_ms2\n");
        for p in &self.profiles {
            out.push_str(&format!(
                "{}\t{:.2}\t{:.1}\t{}\t{:.2}\n",
                p.name,
                p.energy_mah(),
                p.trip_time.value(),
                p.stops,
                p.max_decel
            ));
        }
        out
    }
}

/// Integrates a speed series into a distance-vs-time curve (Fig. 8).
pub fn distance_time_curve(speed: &TimeSeries) -> TimeSeries {
    let dt = speed.step().value();
    let vs = speed.samples();
    let mut pos = Vec::with_capacity(vs.len());
    let mut x = 0.0;
    pos.push(0.0);
    for w in vs.windows(2) {
        x += 0.5 * (w[0] + w[1]) * dt;
        pos.push(x);
    }
    TimeSeries::from_samples(speed.start(), speed.step(), pos)
        .expect("same grid as a valid input series")
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_ev_energy::VehicleParams;

    fn road() -> Road {
        Road::us25()
    }

    fn model() -> EnergyModel {
        EnergyModel::new(VehicleParams::spark_ev())
    }

    fn series(samples: Vec<f64>) -> TimeSeries {
        TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), samples).unwrap()
    }

    #[test]
    fn stop_counting_ignores_departure_and_terminal() {
        // 0 (departure) -> cruise -> stop -> cruise -> 0 (terminal).
        let s = series(vec![
            0.0, 5.0, 10.0, 10.0, 5.0, 0.0, 0.0, 5.0, 10.0, 5.0, 0.0,
        ]);
        let m = ProfileMetrics::from_speed_series("x", &s, &road(), &model()).unwrap();
        assert_eq!(m.stops, 1);
    }

    #[test]
    fn no_stops_for_smooth_profile() {
        let s = series(vec![0.0, 4.0, 8.0, 12.0, 12.0, 8.0, 4.0, 0.0]);
        let m = ProfileMetrics::from_speed_series("x", &s, &road(), &model()).unwrap();
        assert_eq!(m.stops, 0);
        assert!((m.max_decel - 4.0).abs() < 1e-9);
        assert!((m.distance.value() - s.integrate()).abs() < 1e-9);
    }

    #[test]
    fn savings_math() {
        let s_cheap = series(vec![0.0, 5.0, 5.0, 0.0]);
        let s_dear = series(vec![0.0, 12.0, 12.0, 0.0]);
        let cheap = ProfileMetrics::from_speed_series("ours", &s_cheap, &road(), &model()).unwrap();
        let dear = ProfileMetrics::from_speed_series("fast", &s_dear, &road(), &model()).unwrap();
        let cmp = TripComparison::new(vec![cheap, dear]);
        let saving = cmp.savings_vs("fast").unwrap();
        assert!(saving > 0.0 && saving < 1.0);
        assert!(cmp.savings_vs("nonexistent").is_none());
        let tsv = cmp.to_tsv();
        assert!(tsv.contains("ours") && tsv.contains("fast"));
    }

    #[test]
    fn distance_curve_is_monotone() {
        let s = series(vec![0.0, 5.0, 10.0, 0.0, 0.0, 10.0]);
        let d = distance_time_curve(&s);
        assert_eq!(d.len(), s.len());
        for w in d.samples().windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((d.samples().last().unwrap() - s.integrate()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "comparison needs >= 1 profile")]
    fn empty_comparison_panics() {
        TripComparison::new(vec![]);
    }
}
