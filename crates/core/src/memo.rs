//! Transition-cost memoization: the shared `(v_from, v_to)` cost tables.
//!
//! Segment energy depends only on `(v_from, v_to, segment_length, grade)`
//! (see [`EnergyModel::segment_energy_grid`]) and the DP's velocity grid is
//! fixed, so the whole transition structure of a layer is one V×V matrix
//! determined by the segment's *class* — its quantized `(length, grade)`
//! pair. A [`TransitionTable`] caches one [`CostTable`] per class; it lives
//! in the solver arena, so the matrix computed for the first layer of the
//! first trip serves every later layer, every trip of a batch, and every
//! replanning tick that shares the class. On a uniform corridor (every
//! interior segment is `Δs` long) that collapses millions of energy-model
//! evaluations per solve into a few hundred per *arena lifetime*.
//!
//! ## Quantization, and why results stay bit-identical
//!
//! Classes are keyed by [`snap`]ped length and grade. The quanta are powers
//! of two ([`LENGTH_QUANTUM`] = 2⁻¹⁰ m, [`GRADE_QUANTUM`] = 2⁻²⁰ rad), so
//! `snap` — a divide, `round`, multiply chain where both scalings are exact
//! in binary floating point — is *idempotent and exact*: a value already on
//! the quantum grid (every station spacing of a uniform corridor, a flat
//! road's zero grade) is a fixed point and snaps to itself bit-for-bit.
//! The solver evaluates energies **at the snapped values** whether or not
//! memoization is enabled ([`crate::dp::DpConfig::memo`]), so a memoized
//! solve and a direct solve see identical costs on every input, and on
//! on-grid inputs both match the historical unsnapped solver exactly.
//!
//! Aliasing is impossible by construction: two segments share a table only
//! if they snap to the same `(length, grade)`, and the table's costs are a
//! pure function of the snapped pair.

use std::collections::HashMap;
use velopt_common::units::{Meters, Radians};
use velopt_ev_energy::{EnergyModel, GridSpec};

/// Segment-length quantum: 2⁻¹⁰ m (≈ 1 mm). Power of two, so snapping is
/// exact and on-grid lengths (20 m stations, metre-valued road ends) are
/// fixed points.
pub const LENGTH_QUANTUM: f64 = 1.0 / 1024.0;

/// Grade quantum: 2⁻²⁰ rad (≈ 1 µrad ≈ 0.0001% grade). Power of two, so a
/// flat road's zero grade snaps to itself exactly.
pub const GRADE_QUANTUM: f64 = 1.0 / 1_048_576.0;

/// Rounds `x` to the nearest multiple of `quantum`.
///
/// With a power-of-two quantum both the division and the multiplication
/// are exact (they only change the exponent), so the result is the true
/// nearest multiple and on-grid inputs return bit-identically.
/// A sub-half-quantum negative value rounds to `-0.0`, which is
/// numerically identical to `+0.0` but has different bits; it is
/// normalized so both key into the same class.
#[inline]
pub fn snap(x: f64, quantum: f64) -> f64 {
    let snapped = (x / quantum).round() * quantum;
    if snapped == 0.0 {
        0.0
    } else {
        snapped
    }
}

/// The quantized identity of a segment: which cost table it shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassKey {
    length_bits: u64,
    grade_bits: u64,
}

impl ClassKey {
    /// Quantizes a raw `(length, grade)` pair, returning the key and the
    /// snapped values the class's costs must be evaluated at.
    pub fn quantize(length: Meters, grade: Radians) -> (Self, Meters, Radians) {
        let l = snap(length.value(), LENGTH_QUANTUM);
        let g = snap(grade.value(), GRADE_QUANTUM);
        (
            Self {
                length_bits: l.to_bits(),
                grade_bits: g.to_bits(),
            },
            Meters::new(l),
            Radians::new(g),
        )
    }
}

/// One class's precomputed V×V transition-cost matrix: `(charge [Ah],
/// duration [s])` per `(v_from, v_to)` lattice pair, `None` where the
/// transition is kinematically infeasible.
///
/// Alongside the option-typed entries the table keeps a structure-of-arrays
/// mirror — one contiguous charge row and one duration row per source
/// speed, with `NaN` marking infeasible targets — so the SIMD relax
/// kernels (the crate-private `simd` module) can stream a whole target-speed band with
/// unit-stride loads instead of unpacking an `Option<(f64, f64)>` per
/// candidate. Both views are filled from the same grid evaluation, so
/// they can never disagree.
#[derive(Debug, Clone)]
pub struct CostTable {
    n_speeds: usize,
    entries: Vec<Option<(f64, f64)>>,
    charges: Vec<f64>,
    durations: Vec<f64>,
}

impl CostTable {
    /// Evaluates the full lattice for one segment class. Returns the table
    /// and the number of energy-model evaluations it cost.
    pub fn build(energy: &EnergyModel, spec: &GridSpec) -> (Self, u64) {
        let (grid, evals) = energy.segment_energy_grid(spec);
        let entries: Vec<Option<(f64, f64)>> = grid
            .into_iter()
            .map(|e| e.map(|seg| (seg.charge.value(), seg.duration.value())))
            .collect();
        let charges = entries
            .iter()
            .map(|e| e.map_or(f64::NAN, |(c, _)| c))
            .collect();
        let durations = entries
            .iter()
            .map(|e| e.map_or(f64::NAN, |(_, d)| d))
            .collect();
        (
            Self {
                n_speeds: spec.n_speeds,
                entries,
                charges,
                durations,
            },
            evals,
        )
    }

    /// Lattice size.
    pub fn n_speeds(&self) -> usize {
        self.n_speeds
    }

    /// The `(charge, duration)` of the `v_from_idx → v_to_idx` transition,
    /// or `None` if infeasible.
    #[inline]
    pub fn get(&self, v_from_idx: usize, v_to_idx: usize) -> Option<(f64, f64)> {
        self.entries[v_from_idx * self.n_speeds + v_to_idx]
    }

    /// Whole source row `v_from_idx` (length `n_speeds`).
    #[inline]
    pub fn row(&self, v_from_idx: usize) -> &[Option<(f64, f64)>] {
        &self.entries[v_from_idx * self.n_speeds..(v_from_idx + 1) * self.n_speeds]
    }

    /// Contiguous charge row for source speed `v_from_idx` (length
    /// `n_speeds`, `NaN` = infeasible transition).
    #[inline]
    pub fn charges(&self, v_from_idx: usize) -> &[f64] {
        &self.charges[v_from_idx * self.n_speeds..(v_from_idx + 1) * self.n_speeds]
    }

    /// Contiguous duration row for source speed `v_from_idx` (length
    /// `n_speeds`, `NaN` = infeasible transition).
    #[inline]
    pub fn durations(&self, v_from_idx: usize) -> &[f64] {
        &self.durations[v_from_idx * self.n_speeds..(v_from_idx + 1) * self.n_speeds]
    }
}

/// Per-solve cache accounting, folded into
/// [`SolverMetrics`](crate::metrics::SolverMetrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Layer table requests served from the cache.
    pub hits: u64,
    /// Layer table requests that had to build a fresh table.
    pub misses: u64,
    /// Energy-model evaluations spent building tables.
    pub energy_evals: u64,
}

/// The cross-layer, cross-trip, cross-tick transition-cost cache.
///
/// Held in [`SolverArena`](crate::dp::SolverArena). The cache is valid for
/// exactly one solver *signature* (energy-model fingerprint, velocity grid
/// and acceleration bounds); [`TransitionTable::reconcile`] drops every
/// table when the signature changes, so an arena can be moved between
/// optimizers without ever serving stale physics.
#[derive(Debug, Clone, Default)]
pub struct TransitionTable {
    signature: u64,
    index: HashMap<ClassKey, usize>,
    tables: Vec<CostTable>,
}

impl TransitionTable {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct segment classes cached.
    pub fn classes(&self) -> usize {
        self.tables.len()
    }

    /// Keeps the cache only if it was built under `signature`; otherwise
    /// clears it and adopts the new signature.
    pub fn reconcile(&mut self, signature: u64) {
        if self.signature != signature {
            self.index.clear();
            self.tables.clear();
            self.signature = signature;
        }
    }

    /// Returns the class id for a segment, building its cost table on the
    /// first encounter. `spec.distance`/`spec.grade` must already be the
    /// snapped values from [`ClassKey::quantize`].
    pub fn class_for(
        &mut self,
        key: ClassKey,
        energy: &EnergyModel,
        spec: &GridSpec,
        stats: &mut MemoStats,
    ) -> usize {
        if let Some(&id) = self.index.get(&key) {
            stats.hits += 1;
            return id;
        }
        let (table, evals) = CostTable::build(energy, spec);
        stats.misses += 1;
        stats.energy_evals += evals;
        let id = self.tables.len();
        self.tables.push(table);
        self.index.insert(key, id);
        id
    }

    /// The cost table of a class id returned by
    /// [`class_for`](Self::class_for).
    #[inline]
    pub fn table(&self, class: usize) -> &CostTable {
        &self.tables[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::{MetersPerSecond, MetersPerSecondSq};
    use velopt_ev_energy::VehicleParams;

    fn spec(distance: f64, grade: f64) -> GridSpec {
        GridSpec {
            dv: MetersPerSecond::new(1.0),
            n_speeds: 12,
            distance: Meters::new(distance),
            grade: Radians::new(grade),
            a_min: MetersPerSecondSq::new(-1.5),
            a_max: MetersPerSecondSq::new(2.5),
        }
    }

    #[test]
    fn snap_is_exact_on_grid_values() {
        // Values already on the quantum grid are fixed points, bit-for-bit.
        for x in [0.0, 20.0, 4200.0, 17.5, -3.25] {
            assert_eq!(snap(x, LENGTH_QUANTUM).to_bits(), x.to_bits());
        }
        assert_eq!(snap(0.0, GRADE_QUANTUM).to_bits(), 0.0_f64.to_bits());
        // And off-grid values move by at most half a quantum.
        let snapped = snap(19.9998765, LENGTH_QUANTUM);
        assert!((snapped - 19.9998765).abs() <= LENGTH_QUANTUM / 2.0);
        assert_eq!(snap(snapped, LENGTH_QUANTUM).to_bits(), snapped.to_bits());
    }

    #[test]
    fn same_class_shares_a_table() {
        let energy = EnergyModel::new(VehicleParams::spark_ev());
        let mut cache = TransitionTable::new();
        let mut stats = MemoStats::default();
        // Two segments closer than the quanta: same class, one build.
        let (k1, l1, g1) = ClassKey::quantize(Meters::new(20.0), Radians::new(1e-8));
        let (k2, l2, g2) = ClassKey::quantize(
            Meters::new(20.0 + LENGTH_QUANTUM / 8.0),
            Radians::new(-1e-8),
        );
        assert_eq!(k1, k2);
        assert_eq!(l1.value().to_bits(), l2.value().to_bits());
        assert_eq!(g1.value().to_bits(), g2.value().to_bits());
        let s = GridSpec {
            distance: l1,
            grade: g1,
            ..spec(0.0, 0.0)
        };
        let a = cache.class_for(k1, &energy, &s, &mut stats);
        let b = cache.class_for(k2, &energy, &s, &mut stats);
        assert_eq!(a, b);
        assert_eq!(cache.classes(), 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.energy_evals > 0);
    }

    #[test]
    fn change_beyond_quantum_gets_a_fresh_table() {
        let energy = EnergyModel::new(VehicleParams::spark_ev());
        let mut cache = TransitionTable::new();
        let mut stats = MemoStats::default();
        // A grade change beyond the quantum must not alias into the flat
        // class: same length, different table, different costs.
        let (flat_key, l, flat_g) = ClassKey::quantize(Meters::new(20.0), Radians::ZERO);
        let (hill_key, _, hill_g) =
            ClassKey::quantize(Meters::new(20.0), Radians::new(4.0 * GRADE_QUANTUM));
        assert_ne!(flat_key, hill_key);
        let flat = cache.class_for(
            flat_key,
            &energy,
            &GridSpec {
                distance: l,
                grade: flat_g,
                ..spec(0.0, 0.0)
            },
            &mut stats,
        );
        let hill = cache.class_for(
            hill_key,
            &energy,
            &GridSpec {
                distance: l,
                grade: hill_g,
                ..spec(0.0, 0.0)
            },
            &mut stats,
        );
        assert_ne!(flat, hill);
        assert_eq!(stats.misses, 2);
        // Steady 10 → 10 m/s cruising costs more uphill: no silent aliasing.
        let c_flat = cache.table(flat).get(10, 10).unwrap().0;
        let c_hill = cache.table(hill).get(10, 10).unwrap().0;
        assert!(c_hill > c_flat);
        // Length changes beyond the quantum split classes too.
        let (other_len, _, _) =
            ClassKey::quantize(Meters::new(20.0 + 2.0 * LENGTH_QUANTUM), Radians::ZERO);
        assert_ne!(other_len, flat_key);
    }

    #[test]
    fn reconcile_drops_tables_on_signature_change() {
        let energy = EnergyModel::new(VehicleParams::spark_ev());
        let mut cache = TransitionTable::new();
        let mut stats = MemoStats::default();
        cache.reconcile(42);
        let (key, l, g) = ClassKey::quantize(Meters::new(20.0), Radians::ZERO);
        let s = GridSpec {
            distance: l,
            grade: g,
            ..spec(0.0, 0.0)
        };
        cache.class_for(key, &energy, &s, &mut stats);
        assert_eq!(cache.classes(), 1);
        cache.reconcile(42);
        assert_eq!(cache.classes(), 1, "same signature keeps the cache");
        cache.reconcile(7);
        assert_eq!(cache.classes(), 0, "new signature clears the cache");
    }

    #[test]
    fn table_lookup_matches_grid() {
        let energy = EnergyModel::new(VehicleParams::spark_ev());
        let s = spec(20.0, 0.0);
        let (table, _) = CostTable::build(&energy, &s);
        let (grid, _) = energy.segment_energy_grid(&s);
        for vi in 0..s.n_speeds {
            let row = table.row(vi);
            let charges = table.charges(vi);
            let durations = table.durations(vi);
            for vj in 0..s.n_speeds {
                let want = grid[vi * s.n_speeds + vj]
                    .map(|seg| (seg.charge.value(), seg.duration.value()));
                assert_eq!(table.get(vi, vj), want);
                assert_eq!(row[vj], want);
                // The SoA mirror carries the same bits, NaN for infeasible.
                match want {
                    Some((c, d)) => {
                        assert_eq!(charges[vj].to_bits(), c.to_bits());
                        assert_eq!(durations[vj].to_bits(), d.to_bits());
                    }
                    None => {
                        assert!(charges[vj].is_nan());
                        assert!(durations[vj].is_nan());
                    }
                }
            }
        }
    }
}
