//! Simulation backends the TraCI server can front.
//!
//! [`TraciServer`](crate::TraciServer) is generic over a [`TraciBackend`]:
//! the single-corridor [`Simulation`] (object ids `veh<N>`, `tl<N>`,
//! `loop<N>`) and the multi-corridor [`Network`] (vehicles keep their
//! network-unique `veh<N>` names; signals and detectors are corridor-scoped
//! as `tl<corridor>:<N>` and `loop<corridor>:<N>`).

use velopt_common::units::{Meters, MetersPerSecond, Seconds};
use velopt_common::{Error, Result};
use velopt_microsim::{Network, Simulation, VehicleId};
use velopt_road::Phase;

/// The slice of vehicle state the TraCI surface reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleView {
    /// Front-bumper position within the vehicle's corridor.
    pub position: Meters,
    /// Current speed.
    pub speed: MetersPerSecond,
    /// Corridor index (always 0 for a single-corridor backend). Reported as
    /// the `y` coordinate of TraCI 2D positions so network clients can tell
    /// corridors apart.
    pub corridor: usize,
}

/// What a simulation must expose to be served over TraCI.
pub trait TraciBackend: Send + 'static {
    /// Current simulation time.
    fn time(&self) -> Seconds;
    /// Advances exactly one step.
    fn step_once(&mut self);
    /// Advances until `t`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `t` lies in the past.
    fn advance_to(&mut self, t: Seconds) -> Result<()>;
    /// All active vehicle object ids.
    fn vehicle_ids(&self) -> Vec<String>;
    /// Looks up one vehicle by object id.
    fn vehicle_state(&self, object: &str) -> Option<VehicleView>;
    /// Current phase of the traffic light named `object`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if no such light exists.
    fn light_phase(&self, object: &str) -> Result<Phase>;
    /// Crossing count of the loop named `object` during the last completed
    /// step (SUMO `LAST_STEP_VEHICLE_NUMBER`; reading never mutates the
    /// detector).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if no such loop exists.
    fn loop_last_step_count(&self, object: &str) -> Result<u64>;
    /// Applies (or clears, `None`) a TraCI speed command to the vehicle
    /// named `object`. Every live vehicle is externally controllable — the
    /// fleet co-simulation drives background EVs through this, not just
    /// the ego.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] for a malformed object id and
    /// [`Error::InvalidInput`] if no such vehicle is live or the speed is
    /// negative.
    fn command_vehicle_speed(&mut self, object: &str, speed: Option<MetersPerSecond>)
        -> Result<()>;
}

/// Parses `"<prefix><index>"` (e.g. `tl1`).
fn parse_index(object: &str, prefix: &str) -> Result<usize> {
    object
        .strip_prefix(prefix)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::protocol(format!("malformed object id '{object}'")))
}

/// Parses `"<prefix><corridor>:<index>"` (e.g. `tl2:0`).
fn parse_scoped(object: &str, prefix: &str) -> Result<(usize, usize)> {
    object
        .strip_prefix(prefix)
        .and_then(|s| s.split_once(':'))
        .and_then(|(c, i)| Some((c.parse().ok()?, i.parse().ok()?)))
        .ok_or_else(|| Error::protocol(format!("malformed object id '{object}'")))
}

impl TraciBackend for Simulation {
    fn time(&self) -> Seconds {
        Simulation::time(self)
    }

    fn step_once(&mut self) {
        self.step();
    }

    fn advance_to(&mut self, t: Seconds) -> Result<()> {
        self.run_until(t)
    }

    fn vehicle_ids(&self) -> Vec<String> {
        self.vehicles().iter().map(|v| v.id().to_string()).collect()
    }

    fn vehicle_state(&self, object: &str) -> Option<VehicleView> {
        self.vehicles()
            .iter()
            .find(|v| v.id().to_string() == object)
            .map(|v| VehicleView {
                position: v.position(),
                speed: v.speed(),
                corridor: 0,
            })
    }

    fn light_phase(&self, object: &str) -> Result<Phase> {
        let idx = parse_index(object, "tl")?;
        let light = self
            .road()
            .traffic_lights()
            .get(idx)
            .ok_or_else(|| Error::protocol(format!("no traffic light '{object}'")))?;
        Ok(light.phase_at(Simulation::time(self)))
    }

    fn loop_last_step_count(&self, object: &str) -> Result<u64> {
        let idx = parse_index(object, "loop")?;
        let det = self
            .detectors()
            .get(idx)
            .ok_or_else(|| Error::protocol(format!("no induction loop '{object}'")))?;
        Ok(det.last_step_count())
    }

    fn command_vehicle_speed(
        &mut self,
        object: &str,
        speed: Option<MetersPerSecond>,
    ) -> Result<()> {
        let raw = parse_index(object, "veh")? as u64;
        self.set_vehicle_command(VehicleId::from_raw(raw), speed)
    }
}

impl TraciBackend for Network {
    fn time(&self) -> Seconds {
        Network::time(self)
    }

    fn step_once(&mut self) {
        self.step();
    }

    fn advance_to(&mut self, t: Seconds) -> Result<()> {
        self.run_until(t)
    }

    fn vehicle_ids(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in 0..self.corridors() {
            let sim = self.corridor(c).expect("index in range");
            out.extend(sim.vehicles().iter().map(|v| v.id().to_string()));
            // Vehicles mid-handoff stay listed so a polling client never
            // sees an id flicker out at a junction.
            out.extend(self.pending(c).map(|h| h.id.to_string()));
        }
        out
    }

    fn vehicle_state(&self, object: &str) -> Option<VehicleView> {
        for c in 0..self.corridors() {
            let sim = self.corridor(c).expect("index in range");
            if let Some(v) = sim.vehicles().iter().find(|v| v.id().to_string() == object) {
                return Some(VehicleView {
                    position: v.position(),
                    speed: v.speed(),
                    corridor: c,
                });
            }
            // A vehicle queued at the junction is reported at position 0
            // of its destination corridor, one tick before it inserts.
            if let Some(h) = self.pending(c).find(|h| h.id.to_string() == object) {
                return Some(VehicleView {
                    position: Meters::ZERO,
                    speed: h.speed,
                    corridor: c,
                });
            }
        }
        None
    }

    fn light_phase(&self, object: &str) -> Result<Phase> {
        let (c, idx) = parse_scoped(object, "tl")?;
        let light = self
            .corridor(c)
            .and_then(|sim| sim.road().traffic_lights().get(idx))
            .ok_or_else(|| Error::protocol(format!("no traffic light '{object}'")))?;
        Ok(light.phase_at(Network::time(self)))
    }

    fn loop_last_step_count(&self, object: &str) -> Result<u64> {
        let (c, idx) = parse_scoped(object, "loop")?;
        let det = self
            .corridor(c)
            .and_then(|sim| sim.detectors().get(idx))
            .ok_or_else(|| Error::protocol(format!("no induction loop '{object}'")))?;
        Ok(det.last_step_count())
    }

    fn command_vehicle_speed(
        &mut self,
        object: &str,
        speed: Option<MetersPerSecond>,
    ) -> Result<()> {
        let raw = parse_index(object, "veh")? as u64;
        self.set_vehicle_command(VehicleId::from_raw(raw), speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_parsing() {
        assert_eq!(parse_index("tl3", "tl").unwrap(), 3);
        assert!(parse_index("tl", "tl").is_err());
        assert!(parse_index("loop1", "tl").is_err());
        assert_eq!(parse_scoped("tl2:7", "tl").unwrap(), (2, 7));
        assert_eq!(parse_scoped("loop0:0", "loop").unwrap(), (0, 0));
        assert!(parse_scoped("tl2", "tl").is_err());
        assert!(parse_scoped("tl2:", "tl").is_err());
        assert!(parse_scoped("tl:7", "tl").is_err());
    }

    /// A vehicle mid-handoff (routed through the junction, queued to
    /// insert next tick) must stay visible to TraCI — a polling client
    /// that sees the id flicker out would conclude the trip ended.
    #[test]
    fn junction_handoff_vehicles_stay_visible() {
        use velopt_microsim::{CorridorSpec, Network, SimConfig};
        use velopt_road::CorridorTemplate;

        let template = CorridorTemplate {
            length: (500.0, 600.0),
            ..CorridorTemplate::default()
        };
        let specs = vec![
            CorridorSpec::through(template.generate(5).unwrap(), 1),
            CorridorSpec::terminal(template.generate(6).unwrap()),
        ];
        let mut net = Network::new(specs, 1, SimConfig::default()).unwrap();
        let ego = net
            .spawn_ego(0, velopt_common::units::MetersPerSecond::new(15.0))
            .unwrap()
            .to_string();
        for _ in 0..5000 {
            net.step();
            if net.pending(1).next().is_some() {
                let v = net.vehicle_state(&ego).expect("ego visible mid-handoff");
                assert_eq!(v.corridor, 1);
                assert_eq!(v.position.value(), 0.0);
                assert!(net.vehicle_ids().contains(&ego));
                return;
            }
        }
        panic!("ego never reached the junction");
    }
}
