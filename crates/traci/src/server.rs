//! The TraCI server fronting a [`TraciBackend`] simulation.

use crate::backend::{TraciBackend, VehicleView};
use crate::protocol::{
    ids, put_string, read_message, take_f64, take_string, take_u8, write_message, Command, Status,
    TraciValue,
};
use bytes::{BufMut, BytesMut};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use velopt_common::units::{MetersPerSecond, Seconds};
use velopt_common::{Error, Result};
use velopt_microsim::Simulation;
use velopt_road::Phase;

/// TraCI API level this server implements (matches recent SUMO releases).
pub const API_LEVEL: i32 = 20;

/// A TCP server exposing a simulation backend through the TraCI protocol.
///
/// Object naming: vehicles are `veh<N>` (the [`VehicleId`] display form).
/// Fronting a single [`Simulation`], traffic lights are `tl<N>` by corridor
/// order and induction loops `loop<N>` by insertion order; fronting a
/// [`Network`](velopt_microsim::Network), they are corridor-scoped as
/// `tl<corridor>:<N>` and `loop<corridor>:<N>`. See the crate-level example.
///
/// The server owns a listener thread. It stops serving when a client sends
/// `CMD_CLOSE`, when [`shutdown`](Self::shutdown) is called, or when the
/// handle is dropped — dropping joins the thread and releases the socket, so
/// a dropped server never leaks its port.
///
/// [`VehicleId`]: velopt_microsim::VehicleId
#[derive(Debug)]
pub struct TraciServer<S: TraciBackend = Simulation> {
    addr: SocketAddr,
    sim: Arc<Mutex<S>>,
    handle: Option<JoinHandle<()>>,
    /// Set to request the listener thread to exit at its next check.
    stop: Arc<AtomicBool>,
    /// The currently served client connection (a `try_clone` of the stream),
    /// so shutdown can unblock a thread parked in a read.
    active: Arc<Mutex<Option<TcpStream>>>,
}

impl<S: TraciBackend> TraciServer<S> {
    /// Binds to an ephemeral localhost port and serves clients on a
    /// background thread, one at a time, until a client sends `CMD_CLOSE`
    /// or the server is shut down.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn spawn(sim: S) -> Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let sim = Arc::new(Mutex::new(sim));
        let stop = Arc::new(AtomicBool::new(false));
        let active: Arc<Mutex<Option<TcpStream>>> = Arc::new(Mutex::new(None));
        let sim_for_thread = Arc::clone(&sim);
        let stop_for_thread = Arc::clone(&stop);
        let active_for_thread = Arc::clone(&active);
        let handle = std::thread::spawn(move || {
            while !stop_for_thread.load(Ordering::Acquire) {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                // A shutdown may have connected just to unblock accept.
                if stop_for_thread.load(Ordering::Acquire) {
                    break;
                }
                *active_for_thread.lock() = stream.try_clone().ok();
                let keep_going = serve_connection(stream, &sim_for_thread);
                *active_for_thread.lock() = None;
                if !keep_going {
                    break;
                }
            }
        });
        Ok(Self {
            addr,
            sim,
            handle: Some(handle),
            stop,
            active,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared access to the simulation (for out-of-band inspection in tests
    /// and harnesses — e.g. reading the ego trace after a run).
    pub fn simulation(&self) -> Arc<Mutex<S>> {
        Arc::clone(&self.sim)
    }

    /// Stops accepting, unblocks any in-flight read, joins the listener
    /// thread, and releases the socket. Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock a thread parked reading from the active client…
        if let Some(stream) = self.active.lock().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // …or parked in accept(): a throwaway connection wakes it so it can
        // observe the stop flag and drop the listener.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Waits for the serving thread to finish on its own (after a client
    /// sent `CMD_CLOSE`).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<S: TraciBackend> Drop for TraciServer<S> {
    fn drop(&mut self) {
        // Regression guard: the old drop leaked the listener thread and its
        // socket until process exit. Joining here is bounded — shutdown
        // unblocks both accept() and any in-flight client read.
        self.shutdown();
    }
}

/// A registered variable subscription (connection-local state).
#[derive(Debug, Clone)]
struct Subscription {
    object: String,
    variables: Vec<u8>,
    begin: f64,
    end: f64,
}

/// Serves one client; returns `false` when the server should stop accepting
/// (client requested close).
fn serve_connection<S: TraciBackend>(mut stream: TcpStream, sim: &Arc<Mutex<S>>) -> bool {
    stream.set_nodelay(true).ok();
    let mut subscriptions: Vec<Subscription> = Vec::new();
    loop {
        let commands = match read_message(&mut stream) {
            Ok(c) => c,
            Err(_) => return true, // client vanished; accept the next one
        };
        let mut responses = Vec::new();
        let mut close_requested = false;
        for cmd in commands {
            match handle_command(&cmd, sim, &mut subscriptions) {
                Ok(mut cmds) => responses.append(&mut cmds),
                Err(e) => responses.push(Status::err(cmd.id, e.to_string()).to_command()),
            }
            if cmd.id == ids::CMD_CLOSE {
                close_requested = true;
            }
        }
        if write_message(&mut stream, &responses).is_err() {
            return true;
        }
        if close_requested {
            return false;
        }
    }
}

/// Executes one command against the simulation, returning the response
/// commands (status first).
fn handle_command<S: TraciBackend>(
    cmd: &Command,
    sim: &Arc<Mutex<S>>,
    subscriptions: &mut Vec<Subscription>,
) -> Result<Vec<Command>> {
    match cmd.id {
        ids::CMD_GETVERSION => {
            let mut buf = BytesMut::new();
            buf.put_i32(API_LEVEL);
            put_string(&mut buf, "velopt-microsim (TraCI-compatible)");
            Ok(vec![
                Status::ok(cmd.id).to_command(),
                Command::new(cmd.id, buf.freeze()),
            ])
        }
        ids::CMD_SIMSTEP => {
            let mut payload = cmd.payload.clone();
            let target = take_f64(&mut payload)?;
            let results = {
                let mut sim = sim.lock();
                if target <= 0.0 {
                    sim.step_once();
                } else {
                    sim.advance_to(Seconds::new(target))?;
                }
                subscription_results(&*sim, subscriptions)
            };
            // The simstep result carries the subscription-result count, then
            // one RESPONSE_SUBSCRIBE command per live subscription.
            let mut buf = BytesMut::new();
            buf.put_i32(results.len() as i32);
            let mut out = vec![
                Status::ok(cmd.id).to_command(),
                Command::new(cmd.id, buf.freeze()),
            ];
            out.extend(results);
            Ok(out)
        }
        ids::CMD_SUBSCRIBE_VEHICLE_VARIABLE => {
            let mut payload = cmd.payload.clone();
            let begin = take_f64(&mut payload)?;
            let end = take_f64(&mut payload)?;
            let object = take_string(&mut payload)?;
            let count = take_u8(&mut payload)? as usize;
            let mut variables = Vec::with_capacity(count);
            for _ in 0..count {
                let var = take_u8(&mut payload)?;
                if var != ids::VAR_SPEED && var != ids::VAR_POSITION {
                    return Err(Error::protocol(format!(
                        "unsupported subscription variable 0x{var:02x}"
                    )));
                }
                variables.push(var);
            }
            if variables.is_empty() {
                // SUMO semantics: an empty list cancels the subscription.
                subscriptions.retain(|s| s.object != object);
            } else {
                subscriptions.retain(|s| s.object != object);
                subscriptions.push(Subscription {
                    object,
                    variables,
                    begin,
                    end,
                });
            }
            Ok(vec![Status::ok(cmd.id).to_command()])
        }
        ids::CMD_CLOSE => Ok(vec![Status::ok(cmd.id).to_command()]),
        ids::CMD_GET_SIM_VARIABLE => {
            let (var, _object, _) = decode_get(cmd)?;
            let value = match var {
                ids::VAR_TIME => TraciValue::Double(sim.lock().time().value()),
                other => {
                    return Err(Error::protocol(format!(
                        "unsupported simulation variable 0x{other:02x}"
                    )))
                }
            };
            Ok(get_response(cmd, var, "", value))
        }
        ids::CMD_GET_VEHICLE_VARIABLE => {
            let (var, object, _) = decode_get(cmd)?;
            let sim = sim.lock();
            let value = match var {
                ids::ID_LIST => TraciValue::StringList(sim.vehicle_ids()),
                ids::VAR_SPEED => {
                    let v = find_vehicle(&*sim, &object)?;
                    TraciValue::Double(v.speed.value())
                }
                ids::VAR_POSITION => {
                    let v = find_vehicle(&*sim, &object)?;
                    TraciValue::Position2D(v.position.value(), v.corridor as f64)
                }
                other => {
                    return Err(Error::protocol(format!(
                        "unsupported vehicle variable 0x{other:02x}"
                    )))
                }
            };
            Ok(get_response(cmd, var, &object, value))
        }
        ids::CMD_GET_TL_VARIABLE => {
            let (var, object, _) = decode_get(cmd)?;
            if var != ids::TL_RED_YELLOW_GREEN_STATE {
                return Err(Error::protocol(format!(
                    "unsupported traffic-light variable 0x{var:02x}"
                )));
            }
            let state = match sim.lock().light_phase(&object)? {
                Phase::Green => "G",
                Phase::Red => "r",
            };
            Ok(get_response(
                cmd,
                var,
                &object,
                TraciValue::String(state.into()),
            ))
        }
        ids::CMD_GET_INDUCTIONLOOP_VARIABLE => {
            let (var, object, _) = decode_get(cmd)?;
            if var != ids::LAST_STEP_VEHICLE_NUMBER {
                return Err(Error::protocol(format!(
                    "unsupported induction-loop variable 0x{var:02x}"
                )));
            }
            // SUMO semantics: the count for the last *completed* step.
            // Reading is non-destructive — the old implementation drained
            // the detector's flow window here, so a second poller (or the
            // SAE volume feed) read zeros after any TraCI read.
            let count = sim.lock().loop_last_step_count(&object)? as i32;
            Ok(get_response(cmd, var, &object, TraciValue::Integer(count)))
        }
        ids::CMD_SET_VEHICLE_VARIABLE => {
            let mut payload = cmd.payload.clone();
            let var = take_u8(&mut payload)?;
            let object = take_string(&mut payload)?;
            if var != ids::VAR_SPEED {
                return Err(Error::protocol(format!(
                    "unsupported vehicle set-variable 0x{var:02x}"
                )));
            }
            let value = TraciValue::decode(&mut payload)?.as_double()?;
            let command = if value < 0.0 {
                None // negative setSpeed returns control to car-following
            } else {
                Some(MetersPerSecond::new(value))
            };
            sim.lock().command_vehicle_speed(&object, command)?;
            Ok(vec![Status::ok(cmd.id).to_command()])
        }
        other => Ok(vec![Command::new(other, {
            let mut buf = BytesMut::new();
            buf.put_u8(ids::RTYPE_NOTIMPLEMENTED);
            put_string(&mut buf, "command not implemented");
            buf.freeze()
        })]),
    }
}

/// Builds the per-step subscription result commands. Subscriptions whose
/// vehicle has left the simulation (or whose time window is over) produce
/// no result.
fn subscription_results<S: TraciBackend>(sim: &S, subscriptions: &[Subscription]) -> Vec<Command> {
    let now = sim.time().value();
    let mut out = Vec::new();
    for sub in subscriptions {
        if now < sub.begin || now >= sub.end {
            continue;
        }
        let Ok(vehicle) = find_vehicle(sim, &sub.object) else {
            continue;
        };
        let mut buf = BytesMut::new();
        put_string(&mut buf, &sub.object);
        buf.put_u8(sub.variables.len() as u8);
        for &var in &sub.variables {
            buf.put_u8(var);
            buf.put_u8(ids::RTYPE_OK);
            let value = match var {
                ids::VAR_SPEED => TraciValue::Double(vehicle.speed.value()),
                ids::VAR_POSITION => {
                    TraciValue::Position2D(vehicle.position.value(), vehicle.corridor as f64)
                }
                _ => unreachable!("variables validated at subscription time"),
            };
            value.encode(&mut buf);
        }
        out.push(Command::new(
            ids::RESPONSE_SUBSCRIBE_VEHICLE_VARIABLE,
            buf.freeze(),
        ));
    }
    out
}

fn decode_get(cmd: &Command) -> Result<(u8, String, ())> {
    let mut payload = cmd.payload.clone();
    let var = take_u8(&mut payload)?;
    let object = take_string(&mut payload)?;
    Ok((var, object, ()))
}

fn get_response(cmd: &Command, var: u8, object: &str, value: TraciValue) -> Vec<Command> {
    let mut buf = BytesMut::new();
    buf.put_u8(var);
    put_string(&mut buf, object);
    value.encode(&mut buf);
    vec![
        Status::ok(cmd.id).to_command(),
        Command::new(cmd.id.wrapping_add(ids::RESPONSE_OFFSET), buf.freeze()),
    ]
}

fn find_vehicle<S: TraciBackend>(sim: &S, object: &str) -> Result<VehicleView> {
    sim.vehicle_state(object)
        .ok_or_else(|| Error::protocol(format!("no vehicle '{object}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TraciClient;
    use std::time::Duration;
    use velopt_common::units::{Meters, VehiclesPerHour};
    use velopt_microsim::{CorridorSpec, Network, SimConfig};
    use velopt_road::Road;

    fn server() -> TraciServer {
        let sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
        TraciServer::spawn(sim).unwrap()
    }

    #[test]
    fn version_handshake() {
        let server = server();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        let v = client.get_version().unwrap();
        assert_eq!(v.api, API_LEVEL);
        assert!(v.software.contains("velopt"));
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn drop_shuts_down_listener_and_thread() {
        // Regression: the old drop let the listener thread (and its socket)
        // live until process exit, so every spawned-then-dropped server
        // leaked a port and a thread.
        let server = server();
        let addr = server.addr();
        let mut client = TraciClient::connect(addr).unwrap();
        client.get_version().unwrap();
        // Drop without CMD_CLOSE while the serving thread is blocked
        // reading from us — the hardest case for shutdown.
        drop(server);
        let refused = TcpStream::connect_timeout(&addr, Duration::from_secs(2));
        assert!(
            refused.is_err(),
            "listener must be gone after drop, but a reconnect succeeded"
        );
        // The original client's connection was torn down too.
        assert!(client.get_version().is_err());
    }

    #[test]
    fn explicit_shutdown_is_idempotent() {
        let mut server = server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err());
    }

    #[test]
    fn step_advances_time_and_targets_work() {
        let server = server();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        assert_eq!(client.simulation_time().unwrap(), 0.0);
        client.simulation_step(0.0).unwrap();
        let t1 = client.simulation_time().unwrap();
        assert!((t1 - 0.1).abs() < 1e-9);
        client.simulation_step(5.0).unwrap();
        assert!(client.simulation_time().unwrap() >= 5.0);
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn vehicle_queries_and_ego_control() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(300.0));
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();

        let ids = client.vehicle_ids().unwrap();
        assert!(ids.contains(&"veh0".to_string()));
        let speed = client.vehicle_speed("veh0").unwrap();
        assert!((speed - 5.0).abs() < 1e-9);
        let (x, y) = client.vehicle_position("veh0").unwrap();
        assert_eq!((x, y), (0.0, 0.0));

        // Command the ego and verify after stepping.
        client.set_vehicle_speed("veh0", 3.0).unwrap();
        for _ in 0..100 {
            client.simulation_step(0.0).unwrap();
        }
        let speed = client.vehicle_speed("veh0").unwrap();
        assert!((speed - 3.0).abs() < 0.05, "speed {speed}");

        // Releasing control lets it accelerate again.
        client.set_vehicle_speed("veh0", -1.0).unwrap();
        for _ in 0..100 {
            client.simulation_step(0.0).unwrap();
        }
        assert!(client.vehicle_speed("veh0").unwrap() > 3.5);

        // Unknown vehicle errors cleanly.
        assert!(client.vehicle_speed("veh99").is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn traffic_light_state_follows_phases() {
        let server = server();
        let lights = Road::us25().traffic_lights().to_vec();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        // Drive the clock through one full cycle and check both heads
        // against the ground-truth phase function.
        let mut t = 0.0;
        for _ in 0..12 {
            t += 5.0;
            client.simulation_step(t).unwrap();
            let now = Seconds::new(client.simulation_time().unwrap());
            for (i, light) in lights.iter().enumerate() {
                let expected = match light.phase_at(now) {
                    velopt_road::Phase::Green => "G",
                    velopt_road::Phase::Red => "r",
                };
                let got = client.traffic_light_state(&format!("tl{i}")).unwrap();
                assert_eq!(got, expected, "tl{i} at {now}");
            }
        }
        assert!(client.traffic_light_state("tl9").is_err());
        assert!(client.traffic_light_state("bogus").is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn induction_loop_counts_over_traci() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.add_detector(Meters::new(100.0)).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(900.0));
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        client.simulation_step(120.0).unwrap();
        // SUMO LAST_STEP_VEHICLE_NUMBER semantics: per-completed-step
        // counts, and reads never consume anything. Regression: the old
        // handler drained the detector window on every read, so the second
        // of two consecutive reads (another TraCI poller, or the SAE volume
        // feed) always saw zero.
        let mut total = 0;
        for _ in 0..600 {
            client.simulation_step(0.0).unwrap();
            let count = client.induction_loop_count("loop0").unwrap();
            let again = client.induction_loop_count("loop0").unwrap();
            assert_eq!(count, again, "loop reads must be non-destructive");
            total += count;
        }
        assert!(total > 5, "saw {total} crossings in 60 s");
        assert!(client.induction_loop_count("loop7").is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn network_backend_scopes_object_ids_by_corridor() {
        let net = {
            let mut feeder = CorridorSpec::through(Road::us25(), 1);
            feeder.arrival_rate = VehiclesPerHour::new(700.0);
            feeder.detectors.push(Meters::new(100.0));
            let mut sink = CorridorSpec::terminal(Road::us25());
            sink.detectors.push(Meters::new(100.0));
            let mut net = Network::new(vec![feeder, sink], 2, SimConfig::default()).unwrap();
            net.spawn_ego(0, MetersPerSecond::new(5.0)).unwrap();
            net
        };
        let ego_name = net.ego_vehicle_id().unwrap().to_string();
        let server = TraciServer::spawn(net).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();

        client.simulation_step(60.0).unwrap();
        let ids = client.vehicle_ids().unwrap();
        assert!(ids.contains(&ego_name));
        // Corridor-scoped signal and detector names resolve per corridor…
        for object in ["tl0:0", "tl0:1", "tl1:0", "tl1:1"] {
            client.traffic_light_state(object).unwrap();
        }
        let c0 = client.induction_loop_count("loop0:0").unwrap();
        assert_eq!(c0, client.induction_loop_count("loop0:0").unwrap());
        client.induction_loop_count("loop1:0").unwrap();
        // …and single-corridor names or out-of-range scopes are rejected.
        assert!(client.traffic_light_state("tl0").is_err());
        assert!(client.traffic_light_state("tl2:0").is_err());
        assert!(client.induction_loop_count("loop0").is_err());
        assert!(client.induction_loop_count("loop1:3").is_err());

        // Ego control works through the network backend, and the 2D
        // position's y channel reports the corridor index.
        client.set_vehicle_speed(&ego_name, 3.0).unwrap();
        for _ in 0..50 {
            client.simulation_step(0.0).unwrap();
        }
        let speed = client.vehicle_speed(&ego_name).unwrap();
        assert!((speed - 3.0).abs() < 0.05, "speed {speed}");
        let (_, y) = client.vehicle_position(&ego_name).unwrap();
        assert_eq!(y, 0.0, "ego still on corridor 0");
        // Background vehicles are controllable too (the fleet co-simulation
        // drives every EV), wherever in the network they are; unknown ids
        // stay rejected.
        let ids = client.vehicle_ids().unwrap();
        let background = ids.iter().find(|i| **i != ego_name).unwrap();
        client.set_vehicle_speed(background, 5.0).unwrap();
        assert!(client.set_vehicle_speed("veh999999", 5.0).is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn subscriptions_deliver_values_each_step() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();

        client
            .subscribe_vehicle("veh0", &[ids::VAR_SPEED, ids::VAR_POSITION], 0.0, 1e9)
            .unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].object, "veh0");
        let speed = results[0]
            .value_of(ids::VAR_SPEED)
            .unwrap()
            .as_double()
            .unwrap();
        assert!(speed > 0.0);
        assert!(matches!(
            results[0].value_of(ids::VAR_POSITION),
            Some(crate::TraciValue::Position2D(_, _))
        ));

        // Unsupported variables are rejected at subscription time.
        assert!(client.subscribe_vehicle("veh0", &[0x7E], 0.0, 1e9).is_err());

        // An empty variable list cancels the subscription.
        client.subscribe_vehicle("veh0", &[], 0.0, 1e9).unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert!(results.is_empty());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn expired_or_vanished_subscriptions_produce_no_results() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        // Window already over at subscription time.
        client
            .subscribe_vehicle("veh0", &[ids::VAR_SPEED], 0.0, 0.05)
            .unwrap();
        client.simulation_step(1.0).unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert!(results.is_empty(), "window [0, 0.05) is long over");
        // Subscribing to a vehicle that never exists yields no results
        // either (it may enter later in SUMO semantics).
        client
            .subscribe_vehicle("veh99", &[ids::VAR_SPEED], 0.0, 1e9)
            .unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert!(results.is_empty());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn background_vehicles_accept_speed_commands() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(1200.0));
            sim.run_until(Seconds::new(30.0)).unwrap();
            sim
        };
        assert!(sim.vehicle_count() > 0);
        let background_id = sim.vehicles()[0].id().to_string();
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        // Every live vehicle is controllable — the fleet co-simulation
        // drives background EVs through this path, not just the ego…
        client.set_vehicle_speed(&background_id, 5.0).unwrap();
        // …while unknown and malformed ids stay rejected.
        assert!(client.set_vehicle_speed("veh999999", 5.0).is_err());
        assert!(client.set_vehicle_speed("car1", 5.0).is_err());
        client.close().unwrap();
        server.join();
    }
}
