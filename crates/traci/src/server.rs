//! The TraCI server fronting a [`velopt_microsim::Simulation`].

use crate::protocol::{
    ids, put_string, read_message, take_f64, take_string, take_u8, write_message, Command, Status,
    TraciValue,
};
use bytes::{BufMut, BytesMut};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use velopt_common::units::{MetersPerSecond, Seconds};
use velopt_common::{Error, Result};
use velopt_microsim::Simulation;
use velopt_road::Phase;

/// TraCI API level this server implements (matches recent SUMO releases).
pub const API_LEVEL: i32 = 20;

/// A TCP server exposing a microsim [`Simulation`] through the TraCI
/// protocol.
///
/// Object naming: vehicles are `veh<N>` (the [`VehicleId`] display form),
/// traffic lights `tl<N>` by corridor order, induction loops `loop<N>` by
/// insertion order. See the crate-level example.
///
/// [`VehicleId`]: velopt_microsim::VehicleId
#[derive(Debug)]
pub struct TraciServer {
    addr: SocketAddr,
    sim: Arc<Mutex<Simulation>>,
    handle: Option<JoinHandle<()>>,
}

impl TraciServer {
    /// Binds to an ephemeral localhost port and serves clients on a
    /// background thread (one at a time; the loop ends when a client sends
    /// `CMD_CLOSE` and no new connection arrives before the listener is
    /// dropped).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn spawn(sim: Simulation) -> Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let sim = Arc::new(Mutex::new(sim));
        let sim_for_thread = Arc::clone(&sim);
        let handle = std::thread::spawn(move || {
            // Serve connections until the server handle is dropped; each
            // accept error (listener closed) terminates the loop.
            while let Ok((stream, _)) = listener.accept() {
                let keep_going = serve_connection(stream, &sim_for_thread);
                if !keep_going {
                    break;
                }
            }
        });
        Ok(Self {
            addr,
            sim,
            handle: Some(handle),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared access to the simulation (for out-of-band inspection in tests
    /// and harnesses — e.g. reading the ego trace after a run).
    pub fn simulation(&self) -> Arc<Mutex<Simulation>> {
        Arc::clone(&self.sim)
    }

    /// Waits for the serving thread to finish (after a client sent
    /// `CMD_CLOSE`).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TraciServer {
    fn drop(&mut self) {
        // The listener thread exits after the active client closes; we do
        // not block in drop (C-DTOR-BLOCK): harnesses call `join()` when
        // they need determinism.
        if let Some(h) = self.handle.take() {
            drop(h);
        }
    }
}

/// A registered variable subscription (connection-local state).
#[derive(Debug, Clone)]
struct Subscription {
    object: String,
    variables: Vec<u8>,
    begin: f64,
    end: f64,
}

/// Serves one client; returns `false` when the server should stop accepting
/// (client requested close).
fn serve_connection(mut stream: TcpStream, sim: &Arc<Mutex<Simulation>>) -> bool {
    stream.set_nodelay(true).ok();
    let mut subscriptions: Vec<Subscription> = Vec::new();
    loop {
        let commands = match read_message(&mut stream) {
            Ok(c) => c,
            Err(_) => return true, // client vanished; accept the next one
        };
        let mut responses = Vec::new();
        let mut close_requested = false;
        for cmd in commands {
            match handle_command(&cmd, sim, &mut subscriptions) {
                Ok(mut cmds) => responses.append(&mut cmds),
                Err(e) => responses.push(Status::err(cmd.id, e.to_string()).to_command()),
            }
            if cmd.id == ids::CMD_CLOSE {
                close_requested = true;
            }
        }
        if write_message(&mut stream, &responses).is_err() {
            return true;
        }
        if close_requested {
            return false;
        }
    }
}

/// Executes one command against the simulation, returning the response
/// commands (status first).
fn handle_command(
    cmd: &Command,
    sim: &Arc<Mutex<Simulation>>,
    subscriptions: &mut Vec<Subscription>,
) -> Result<Vec<Command>> {
    match cmd.id {
        ids::CMD_GETVERSION => {
            let mut buf = BytesMut::new();
            buf.put_i32(API_LEVEL);
            put_string(&mut buf, "velopt-microsim (TraCI-compatible)");
            Ok(vec![
                Status::ok(cmd.id).to_command(),
                Command::new(cmd.id, buf.freeze()),
            ])
        }
        ids::CMD_SIMSTEP => {
            let mut payload = cmd.payload.clone();
            let target = take_f64(&mut payload)?;
            let results = {
                let mut sim = sim.lock();
                if target <= 0.0 {
                    sim.step();
                } else {
                    sim.run_until(Seconds::new(target))?;
                }
                subscription_results(&sim, subscriptions)
            };
            // The simstep result carries the subscription-result count, then
            // one RESPONSE_SUBSCRIBE command per live subscription.
            let mut buf = BytesMut::new();
            buf.put_i32(results.len() as i32);
            let mut out = vec![
                Status::ok(cmd.id).to_command(),
                Command::new(cmd.id, buf.freeze()),
            ];
            out.extend(results);
            Ok(out)
        }
        ids::CMD_SUBSCRIBE_VEHICLE_VARIABLE => {
            let mut payload = cmd.payload.clone();
            let begin = take_f64(&mut payload)?;
            let end = take_f64(&mut payload)?;
            let object = take_string(&mut payload)?;
            let count = take_u8(&mut payload)? as usize;
            let mut variables = Vec::with_capacity(count);
            for _ in 0..count {
                let var = take_u8(&mut payload)?;
                if var != ids::VAR_SPEED && var != ids::VAR_POSITION {
                    return Err(Error::protocol(format!(
                        "unsupported subscription variable 0x{var:02x}"
                    )));
                }
                variables.push(var);
            }
            if variables.is_empty() {
                // SUMO semantics: an empty list cancels the subscription.
                subscriptions.retain(|s| s.object != object);
            } else {
                subscriptions.retain(|s| s.object != object);
                subscriptions.push(Subscription {
                    object,
                    variables,
                    begin,
                    end,
                });
            }
            Ok(vec![Status::ok(cmd.id).to_command()])
        }
        ids::CMD_CLOSE => Ok(vec![Status::ok(cmd.id).to_command()]),
        ids::CMD_GET_SIM_VARIABLE => {
            let (var, _object, _) = decode_get(cmd)?;
            let value = match var {
                ids::VAR_TIME => TraciValue::Double(sim.lock().time().value()),
                other => {
                    return Err(Error::protocol(format!(
                        "unsupported simulation variable 0x{other:02x}"
                    )))
                }
            };
            Ok(get_response(cmd, var, "", value))
        }
        ids::CMD_GET_VEHICLE_VARIABLE => {
            let (var, object, _) = decode_get(cmd)?;
            let sim = sim.lock();
            let value = match var {
                ids::ID_LIST => TraciValue::StringList(
                    sim.vehicles().iter().map(|v| v.id().to_string()).collect(),
                ),
                ids::VAR_SPEED => {
                    let v = find_vehicle(&sim, &object)?;
                    TraciValue::Double(v.speed().value())
                }
                ids::VAR_POSITION => {
                    let v = find_vehicle(&sim, &object)?;
                    TraciValue::Position2D(v.position().value(), 0.0)
                }
                other => {
                    return Err(Error::protocol(format!(
                        "unsupported vehicle variable 0x{other:02x}"
                    )))
                }
            };
            Ok(get_response(cmd, var, &object, value))
        }
        ids::CMD_GET_TL_VARIABLE => {
            let (var, object, _) = decode_get(cmd)?;
            if var != ids::TL_RED_YELLOW_GREEN_STATE {
                return Err(Error::protocol(format!(
                    "unsupported traffic-light variable 0x{var:02x}"
                )));
            }
            let sim = sim.lock();
            let idx = parse_index(&object, "tl")?;
            let lights = sim.road().traffic_lights();
            let light = lights
                .get(idx)
                .ok_or_else(|| Error::protocol(format!("no traffic light '{object}'")))?;
            let state = match light.phase_at(sim.time()) {
                Phase::Green => "G",
                Phase::Red => "r",
            };
            Ok(get_response(
                cmd,
                var,
                &object,
                TraciValue::String(state.into()),
            ))
        }
        ids::CMD_GET_INDUCTIONLOOP_VARIABLE => {
            let (var, object, _) = decode_get(cmd)?;
            if var != ids::LAST_STEP_VEHICLE_NUMBER {
                return Err(Error::protocol(format!(
                    "unsupported induction-loop variable 0x{var:02x}"
                )));
            }
            let mut sim = sim.lock();
            let now = sim.time();
            let idx = parse_index(&object, "loop")?;
            let det = sim
                .detector_mut(idx)
                .ok_or_else(|| Error::protocol(format!("no induction loop '{object}'")))?;
            let count = det.window_count() as i32;
            let _ = det.take_window(now);
            Ok(get_response(cmd, var, &object, TraciValue::Integer(count)))
        }
        ids::CMD_SET_VEHICLE_VARIABLE => {
            let mut payload = cmd.payload.clone();
            let var = take_u8(&mut payload)?;
            let object = take_string(&mut payload)?;
            if var != ids::VAR_SPEED {
                return Err(Error::protocol(format!(
                    "unsupported vehicle set-variable 0x{var:02x}"
                )));
            }
            let value = TraciValue::decode(&mut payload)?.as_double()?;
            let mut sim = sim.lock();
            let ego_is_target = sim.ego().is_some()
                && sim.vehicles().iter().any(|v| {
                    v.id().to_string() == object && v.kind() == velopt_microsim::VehicleKind::Ego
                });
            if !ego_is_target {
                return Err(Error::protocol(format!(
                    "vehicle '{object}' is not externally controllable"
                )));
            }
            let command = if value < 0.0 {
                None // negative setSpeed returns control to car-following
            } else {
                Some(MetersPerSecond::new(value))
            };
            sim.set_ego_command(command)?;
            Ok(vec![Status::ok(cmd.id).to_command()])
        }
        other => Ok(vec![Command::new(other, {
            let mut buf = BytesMut::new();
            buf.put_u8(ids::RTYPE_NOTIMPLEMENTED);
            put_string(&mut buf, "command not implemented");
            buf.freeze()
        })]),
    }
}

/// Builds the per-step subscription result commands. Subscriptions whose
/// vehicle has left the simulation (or whose time window is over) produce
/// no result.
fn subscription_results(sim: &Simulation, subscriptions: &[Subscription]) -> Vec<Command> {
    let now = sim.time().value();
    let mut out = Vec::new();
    for sub in subscriptions {
        if now < sub.begin || now >= sub.end {
            continue;
        }
        let Ok(vehicle) = find_vehicle(sim, &sub.object) else {
            continue;
        };
        let mut buf = BytesMut::new();
        put_string(&mut buf, &sub.object);
        buf.put_u8(sub.variables.len() as u8);
        for &var in &sub.variables {
            buf.put_u8(var);
            buf.put_u8(ids::RTYPE_OK);
            let value = match var {
                ids::VAR_SPEED => TraciValue::Double(vehicle.speed().value()),
                ids::VAR_POSITION => TraciValue::Position2D(vehicle.position().value(), 0.0),
                _ => unreachable!("variables validated at subscription time"),
            };
            value.encode(&mut buf);
        }
        out.push(Command::new(
            ids::RESPONSE_SUBSCRIBE_VEHICLE_VARIABLE,
            buf.freeze(),
        ));
    }
    out
}

fn decode_get(cmd: &Command) -> Result<(u8, String, ())> {
    let mut payload = cmd.payload.clone();
    let var = take_u8(&mut payload)?;
    let object = take_string(&mut payload)?;
    Ok((var, object, ()))
}

fn get_response(cmd: &Command, var: u8, object: &str, value: TraciValue) -> Vec<Command> {
    let mut buf = BytesMut::new();
    buf.put_u8(var);
    put_string(&mut buf, object);
    value.encode(&mut buf);
    vec![
        Status::ok(cmd.id).to_command(),
        Command::new(cmd.id.wrapping_add(ids::RESPONSE_OFFSET), buf.freeze()),
    ]
}

fn find_vehicle<'a>(sim: &'a Simulation, object: &str) -> Result<&'a velopt_microsim::Vehicle> {
    sim.vehicles()
        .iter()
        .find(|v| v.id().to_string() == object)
        .ok_or_else(|| Error::protocol(format!("no vehicle '{object}'")))
}

fn parse_index(object: &str, prefix: &str) -> Result<usize> {
    object
        .strip_prefix(prefix)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::protocol(format!("malformed object id '{object}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TraciClient;
    use velopt_common::units::{Meters, VehiclesPerHour};
    use velopt_microsim::SimConfig;
    use velopt_road::Road;

    fn server() -> TraciServer {
        let sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
        TraciServer::spawn(sim).unwrap()
    }

    #[test]
    fn version_handshake() {
        let server = server();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        let v = client.get_version().unwrap();
        assert_eq!(v.api, API_LEVEL);
        assert!(v.software.contains("velopt"));
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn step_advances_time_and_targets_work() {
        let server = server();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        assert_eq!(client.simulation_time().unwrap(), 0.0);
        client.simulation_step(0.0).unwrap();
        let t1 = client.simulation_time().unwrap();
        assert!((t1 - 0.1).abs() < 1e-9);
        client.simulation_step(5.0).unwrap();
        assert!(client.simulation_time().unwrap() >= 5.0);
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn vehicle_queries_and_ego_control() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(300.0));
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();

        let ids = client.vehicle_ids().unwrap();
        assert!(ids.contains(&"veh0".to_string()));
        let speed = client.vehicle_speed("veh0").unwrap();
        assert!((speed - 5.0).abs() < 1e-9);
        let (x, y) = client.vehicle_position("veh0").unwrap();
        assert_eq!((x, y), (0.0, 0.0));

        // Command the ego and verify after stepping.
        client.set_vehicle_speed("veh0", 3.0).unwrap();
        for _ in 0..100 {
            client.simulation_step(0.0).unwrap();
        }
        let speed = client.vehicle_speed("veh0").unwrap();
        assert!((speed - 3.0).abs() < 0.05, "speed {speed}");

        // Releasing control lets it accelerate again.
        client.set_vehicle_speed("veh0", -1.0).unwrap();
        for _ in 0..100 {
            client.simulation_step(0.0).unwrap();
        }
        assert!(client.vehicle_speed("veh0").unwrap() > 3.5);

        // Unknown vehicle errors cleanly.
        assert!(client.vehicle_speed("veh99").is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn traffic_light_state_follows_phases() {
        let server = server();
        let lights = Road::us25().traffic_lights().to_vec();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        // Drive the clock through one full cycle and check both heads
        // against the ground-truth phase function.
        let mut t = 0.0;
        for _ in 0..12 {
            t += 5.0;
            client.simulation_step(t).unwrap();
            let now = Seconds::new(client.simulation_time().unwrap());
            for (i, light) in lights.iter().enumerate() {
                let expected = match light.phase_at(now) {
                    velopt_road::Phase::Green => "G",
                    velopt_road::Phase::Red => "r",
                };
                let got = client.traffic_light_state(&format!("tl{i}")).unwrap();
                assert_eq!(got, expected, "tl{i} at {now}");
            }
        }
        assert!(client.traffic_light_state("tl9").is_err());
        assert!(client.traffic_light_state("bogus").is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn induction_loop_counts_over_traci() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.add_detector(Meters::new(100.0)).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(900.0));
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        client.simulation_step(120.0).unwrap();
        let count = client.induction_loop_count("loop0").unwrap();
        assert!(count > 5, "saw {count} crossings");
        // The window resets after a read.
        let again = client.induction_loop_count("loop0").unwrap();
        assert!(again <= count);
        assert!(client.induction_loop_count("loop7").is_err());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn subscriptions_deliver_values_each_step() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();

        client
            .subscribe_vehicle("veh0", &[ids::VAR_SPEED, ids::VAR_POSITION], 0.0, 1e9)
            .unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].object, "veh0");
        let speed = results[0]
            .value_of(ids::VAR_SPEED)
            .unwrap()
            .as_double()
            .unwrap();
        assert!(speed > 0.0);
        assert!(matches!(
            results[0].value_of(ids::VAR_POSITION),
            Some(crate::TraciValue::Position2D(_, _))
        ));

        // Unsupported variables are rejected at subscription time.
        assert!(client.subscribe_vehicle("veh0", &[0x7E], 0.0, 1e9).is_err());

        // An empty variable list cancels the subscription.
        client.subscribe_vehicle("veh0", &[], 0.0, 1e9).unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert!(results.is_empty());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn expired_or_vanished_subscriptions_produce_no_results() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.spawn_ego(MetersPerSecond::new(5.0)).unwrap();
            sim
        };
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        // Window already over at subscription time.
        client
            .subscribe_vehicle("veh0", &[ids::VAR_SPEED], 0.0, 0.05)
            .unwrap();
        client.simulation_step(1.0).unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert!(results.is_empty(), "window [0, 0.05) is long over");
        // Subscribing to a vehicle that never exists yields no results
        // either (it may enter later in SUMO semantics).
        client
            .subscribe_vehicle("veh99", &[ids::VAR_SPEED], 0.0, 1e9)
            .unwrap();
        let results = client.simulation_step_collect(0.0).unwrap();
        assert!(results.is_empty());
        client.close().unwrap();
        server.join();
    }

    #[test]
    fn set_speed_on_background_vehicle_is_rejected() {
        let sim = {
            let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
            sim.set_arrival_rate(VehiclesPerHour::new(1200.0));
            sim.run_until(Seconds::new(30.0)).unwrap();
            sim
        };
        assert!(sim.vehicle_count() > 0);
        let background_id = sim.vehicles()[0].id().to_string();
        let server = TraciServer::spawn(sim).unwrap();
        let mut client = TraciClient::connect(server.addr()).unwrap();
        assert!(client.set_vehicle_speed(&background_id, 5.0).is_err());
        client.close().unwrap();
        server.join();
    }
}
