//! A hand-rolled implementation of SUMO's **TraCI** wire protocol.
//!
//! The paper applies its optimized velocity profiles "in SUMO using \[the\]
//! TraCI interface" (§III-B-3): an external controller connects to the
//! simulator over TCP and, every step, reads the ego vehicle's state and
//! commands its speed. This crate reproduces that control path against
//! [`velopt_microsim`] with the *real* TraCI message format, so the client
//! side is a faithful TraCI client:
//!
//! * [`protocol`] — message framing (4-byte big-endian message length,
//!   1-byte or `0x00` + 4-byte command lengths), typed values
//!   ([`TraciValue`]), command/status/result encoding, and the command and
//!   variable identifier constants from SUMO's `TraCIConstants`.
//! * [`TraciClient`] — a typed client over any TCP stream:
//!   `get_version`, `simulation_step`, vehicle speed/position get,
//!   `set_speed`, traffic-light state, induction-loop counts, simulation
//!   time, and `close`.
//! * [`TraciServer`] — serves one client per connection, translating TraCI
//!   commands into calls on a [`TraciBackend`]: a single-corridor
//!   [`velopt_microsim::Simulation`] (vehicles `veh<N>`, traffic lights
//!   `tl<N>`, induction loops `loop<N>`) or a multi-corridor
//!   [`velopt_microsim::Network`] (network-unique `veh<N>` plus
//!   corridor-scoped `tl<corridor>:<N>` and `loop<corridor>:<N>`).
//!
//! # Examples
//!
//! ```
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_microsim::{SimConfig, Simulation};
//! use velopt_road::Road;
//! use velopt_traci::{TraciClient, TraciServer};
//!
//! let sim = Simulation::new(Road::us25(), SimConfig::default())?;
//! let server = TraciServer::spawn(sim)?;
//! let mut client = TraciClient::connect(server.addr())?;
//! let version = client.get_version()?;
//! assert!(version.api >= 20);
//! client.simulation_step(0.0)?; // advance one step
//! assert!(client.simulation_time()? > 0.0);
//! client.close()?;
//! # Ok(())
//! # }
//! ```

mod backend;
mod client;
pub mod protocol;
mod server;

pub use backend::{TraciBackend, VehicleView};
pub use client::{SubscriptionResult, TraciClient, Version};
pub use protocol::TraciValue;
pub use server::TraciServer;
