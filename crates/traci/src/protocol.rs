//! TraCI wire format: framing, typed values, commands and constants.
//!
//! The format follows SUMO's TraCI specification:
//!
//! * A **message** is a 4-byte big-endian total length (including itself)
//!   followed by one or more commands.
//! * A **command** starts with its length — one byte if the whole command
//!   fits in 255 bytes, otherwise a `0x00` byte followed by a 4-byte length
//!   — then a 1-byte command identifier and the payload.
//! * Values are **typed**: a 1-byte type code followed by the big-endian
//!   payload.
//! * The server answers every command with a **status** response (command
//!   id, result code, description string), optionally followed by a result
//!   command whose id is `command id + 0x10` for "get variable" commands.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use velopt_common::{Error, Result};

/// Command and variable identifiers (the subset of SUMO's `TraCIConstants`
/// this reproduction needs).
pub mod ids {
    /// Retrieve the TraCI API version and simulator identity.
    pub const CMD_GETVERSION: u8 = 0x00;
    /// Advance the simulation (payload: target time as double; 0 = one step).
    pub const CMD_SIMSTEP: u8 = 0x02;
    /// Close the connection and tear down the simulation.
    pub const CMD_CLOSE: u8 = 0x7F;
    /// Get an induction-loop variable.
    pub const CMD_GET_INDUCTIONLOOP_VARIABLE: u8 = 0xA0;
    /// Get a traffic-light variable.
    pub const CMD_GET_TL_VARIABLE: u8 = 0xA2;
    /// Get a vehicle variable.
    pub const CMD_GET_VEHICLE_VARIABLE: u8 = 0xA4;
    /// Get a simulation variable.
    pub const CMD_GET_SIM_VARIABLE: u8 = 0xAB;
    /// Set a vehicle variable.
    pub const CMD_SET_VEHICLE_VARIABLE: u8 = 0xC4;
    /// Subscribe to vehicle variables (results arrive with each sim step).
    pub const CMD_SUBSCRIBE_VEHICLE_VARIABLE: u8 = 0xD4;
    /// Response carrying one subscription's values.
    pub const RESPONSE_SUBSCRIBE_VEHICLE_VARIABLE: u8 = 0xE4;

    /// Offset added to a get command's id to form its result command id.
    pub const RESPONSE_OFFSET: u8 = 0x10;

    /// Variable: list of object ids.
    pub const ID_LIST: u8 = 0x00;
    /// Variable: number of vehicles on an induction loop in the last step.
    pub const LAST_STEP_VEHICLE_NUMBER: u8 = 0x10;
    /// Variable: traffic-light state string (e.g. `"G"` / `"r"`).
    pub const TL_RED_YELLOW_GREEN_STATE: u8 = 0x20;
    /// Variable: vehicle speed (double, m/s). Also the `setSpeed` target.
    pub const VAR_SPEED: u8 = 0x40;
    /// Variable: vehicle position (2D).
    pub const VAR_POSITION: u8 = 0x42;
    /// Variable: simulation time in seconds (double).
    pub const VAR_TIME: u8 = 0x66;

    /// Status result: success.
    pub const RTYPE_OK: u8 = 0x00;
    /// Status result: command not implemented by this server.
    pub const RTYPE_NOTIMPLEMENTED: u8 = 0x01;
    /// Status result: error, see description.
    pub const RTYPE_ERR: u8 = 0xFF;
}

/// Type codes for [`TraciValue`].
mod type_codes {
    pub const POSITION_2D: u8 = 0x01;
    pub const TYPE_UBYTE: u8 = 0x07;
    pub const TYPE_BYTE: u8 = 0x08;
    pub const TYPE_INTEGER: u8 = 0x09;
    pub const TYPE_DOUBLE: u8 = 0x0B;
    pub const TYPE_STRING: u8 = 0x0C;
    pub const TYPE_STRINGLIST: u8 = 0x0E;
    pub const TYPE_COMPOUND: u8 = 0x0F;
}

/// A typed TraCI value.
#[derive(Debug, Clone, PartialEq)]
pub enum TraciValue {
    /// Unsigned byte.
    UByte(u8),
    /// Signed byte.
    Byte(i8),
    /// 32-bit integer.
    Integer(i32),
    /// 64-bit float.
    Double(f64),
    /// Length-prefixed UTF-8 string.
    String(String),
    /// List of strings.
    StringList(Vec<String>),
    /// 2-D position (x, y).
    Position2D(f64, f64),
    /// Compound value: item count followed by nested typed values.
    Compound(Vec<TraciValue>),
}

impl TraciValue {
    /// Encodes the value (type byte + payload) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            TraciValue::UByte(v) => {
                buf.put_u8(type_codes::TYPE_UBYTE);
                buf.put_u8(*v);
            }
            TraciValue::Byte(v) => {
                buf.put_u8(type_codes::TYPE_BYTE);
                buf.put_i8(*v);
            }
            TraciValue::Integer(v) => {
                buf.put_u8(type_codes::TYPE_INTEGER);
                buf.put_i32(*v);
            }
            TraciValue::Double(v) => {
                buf.put_u8(type_codes::TYPE_DOUBLE);
                buf.put_f64(*v);
            }
            TraciValue::String(s) => {
                buf.put_u8(type_codes::TYPE_STRING);
                put_string(buf, s);
            }
            TraciValue::StringList(list) => {
                buf.put_u8(type_codes::TYPE_STRINGLIST);
                buf.put_i32(list.len() as i32);
                for s in list {
                    put_string(buf, s);
                }
            }
            TraciValue::Position2D(x, y) => {
                buf.put_u8(type_codes::POSITION_2D);
                buf.put_f64(*x);
                buf.put_f64(*y);
            }
            TraciValue::Compound(items) => {
                buf.put_u8(type_codes::TYPE_COMPOUND);
                buf.put_i32(items.len() as i32);
                for item in items {
                    item.encode(buf);
                }
            }
        }
    }

    /// Decodes one typed value from `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or an unknown type code.
    pub fn decode(buf: &mut Bytes) -> Result<TraciValue> {
        let code = take_u8(buf)?;
        Self::decode_payload(code, buf)
    }

    fn decode_payload(code: u8, buf: &mut Bytes) -> Result<TraciValue> {
        match code {
            type_codes::TYPE_UBYTE => Ok(TraciValue::UByte(take_u8(buf)?)),
            type_codes::TYPE_BYTE => Ok(TraciValue::Byte(take_u8(buf)? as i8)),
            type_codes::TYPE_INTEGER => Ok(TraciValue::Integer(take_i32(buf)?)),
            type_codes::TYPE_DOUBLE => Ok(TraciValue::Double(take_f64(buf)?)),
            type_codes::TYPE_STRING => Ok(TraciValue::String(take_string(buf)?)),
            type_codes::TYPE_STRINGLIST => {
                let n = take_i32(buf)?;
                // Every string needs at least its 4-byte length prefix, so a
                // count larger than remaining/4 is malformed — reject before
                // allocating (a hostile length would otherwise OOM us).
                if n < 0 || n as usize > buf.remaining() / 4 {
                    return Err(Error::protocol("implausible string-list length"));
                }
                let mut list = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    list.push(take_string(buf)?);
                }
                Ok(TraciValue::StringList(list))
            }
            type_codes::POSITION_2D => {
                let x = take_f64(buf)?;
                let y = take_f64(buf)?;
                Ok(TraciValue::Position2D(x, y))
            }
            type_codes::TYPE_COMPOUND => {
                let n = take_i32(buf)?;
                // Every item needs at least a type byte; bound the count by
                // the bytes actually present before allocating.
                if n < 0 || n as usize > buf.remaining() {
                    return Err(Error::protocol("implausible compound length"));
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    items.push(TraciValue::decode(buf)?);
                }
                Ok(TraciValue::Compound(items))
            }
            other => Err(Error::protocol(format!("unknown type code 0x{other:02x}"))),
        }
    }

    /// Extracts a double, erroring on any other variant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the value is not a `Double`.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            TraciValue::Double(v) => Ok(*v),
            other => Err(Error::protocol(format!("expected double, got {other:?}"))),
        }
    }

    /// Extracts a string, erroring on any other variant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the value is not a `String`.
    pub fn as_string(&self) -> Result<&str> {
        match self {
            TraciValue::String(s) => Ok(s),
            other => Err(Error::protocol(format!("expected string, got {other:?}"))),
        }
    }

    /// Extracts an integer, erroring on any other variant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the value is not an `Integer`.
    pub fn as_integer(&self) -> Result<i32> {
        match self {
            TraciValue::Integer(v) => Ok(*v),
            other => Err(Error::protocol(format!("expected integer, got {other:?}"))),
        }
    }
}

/// One decoded command (or response command) of a message.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// The command identifier.
    pub id: u8,
    /// Raw payload (everything after the id byte).
    pub payload: Bytes,
}

impl Command {
    /// Builds a command from id and payload bytes.
    pub fn new(id: u8, payload: impl Into<Bytes>) -> Self {
        Self {
            id,
            payload: payload.into(),
        }
    }

    /// Encodes the command (length prefix + id + payload) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        let content_len = 1 + 1 + self.payload.len(); // len byte + id + payload
        if content_len <= u8::MAX as usize {
            buf.put_u8(content_len as u8);
        } else {
            buf.put_u8(0);
            buf.put_i32((content_len + 4) as i32);
        }
        buf.put_u8(self.id);
        buf.put_slice(&self.payload);
    }

    /// Decodes one command from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or inconsistent lengths.
    pub fn decode(buf: &mut Bytes) -> Result<Command> {
        let first = take_u8(buf)?;
        let total = if first != 0 {
            first as usize
        } else {
            let ext = take_i32(buf)?;
            if ext < 6 {
                return Err(Error::protocol("extended command length too small"));
            }
            // Extended length includes the 1-byte marker and 4-byte length.
            ext as usize - 4
        };
        // `total` now counts: 1 length byte + 1 id byte + payload.
        if total < 2 {
            return Err(Error::protocol("command length too small"));
        }
        let id = take_u8(buf)?;
        let payload_len = total - 2;
        if buf.remaining() < payload_len {
            return Err(Error::protocol("truncated command payload"));
        }
        let payload = buf.split_to(payload_len);
        Ok(Command { id, payload })
    }
}

/// A status response to one command.
#[derive(Debug, Clone, PartialEq)]
pub struct Status {
    /// The command this status answers.
    pub command: u8,
    /// Result code ([`ids::RTYPE_OK`] on success).
    pub result: u8,
    /// Human-readable description (empty on success).
    pub description: String,
}

impl Status {
    /// A success status for `command`.
    pub fn ok(command: u8) -> Self {
        Self {
            command,
            result: ids::RTYPE_OK,
            description: String::new(),
        }
    }

    /// An error status for `command`.
    pub fn err(command: u8, description: impl Into<String>) -> Self {
        Self {
            command,
            result: ids::RTYPE_ERR,
            description: description.into(),
        }
    }

    /// Encodes as a command.
    pub fn to_command(&self) -> Command {
        let mut buf = BytesMut::new();
        buf.put_u8(self.result);
        put_string(&mut buf, &self.description);
        Command::new(self.command, buf.freeze())
    }

    /// Decodes from a command.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation.
    pub fn from_command(cmd: &Command) -> Result<Status> {
        let mut payload = cmd.payload.clone();
        let result = take_u8(&mut payload)?;
        let description = take_string(&mut payload)?;
        Ok(Status {
            command: cmd.id,
            result,
            description,
        })
    }
}

/// Encodes a whole message (length header + commands) ready to write to a
/// socket.
pub fn encode_message(commands: &[Command]) -> Bytes {
    let mut body = BytesMut::new();
    for c in commands {
        c.encode(&mut body);
    }
    let mut msg = BytesMut::with_capacity(4 + body.len());
    msg.put_i32((4 + body.len()) as i32);
    msg.put_slice(&body);
    msg.freeze()
}

/// Decodes a message body (after the 4-byte length header has been consumed)
/// into commands.
///
/// # Errors
///
/// Returns [`Error::Protocol`] if the body cannot be fully parsed.
pub fn decode_message_body(mut body: Bytes) -> Result<Vec<Command>> {
    let mut commands = Vec::new();
    while body.has_remaining() {
        commands.push(Command::decode(&mut body)?);
    }
    Ok(commands)
}

/// Reads one full message from a blocking reader.
///
/// # Errors
///
/// Returns [`Error::Io`] on socket errors and [`Error::Protocol`] on
/// malformed lengths.
pub fn read_message(reader: &mut impl std::io::Read) -> Result<Vec<Command>> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let total = i32::from_be_bytes(header);
    if total < 4 {
        return Err(Error::protocol(format!("message length {total} too small")));
    }
    let mut body = vec![0u8; (total - 4) as usize];
    reader.read_exact(&mut body)?;
    decode_message_body(Bytes::from(body))
}

/// Writes one full message to a blocking writer.
///
/// # Errors
///
/// Returns [`Error::Io`] on socket errors.
pub fn write_message(writer: &mut impl std::io::Write, commands: &[Command]) -> Result<()> {
    let msg = encode_message(commands);
    writer.write_all(&msg)?;
    writer.flush()?;
    Ok(())
}

/// Writes a TraCI length-prefixed string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_i32(s.len() as i32);
    buf.put_slice(s.as_bytes());
}

/// Reads one byte.
///
/// # Errors
///
/// Returns [`Error::Protocol`] if the buffer is empty.
pub fn take_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::protocol("unexpected end of buffer"));
    }
    Ok(buf.get_u8())
}

/// Reads a big-endian i32.
///
/// # Errors
///
/// Returns [`Error::Protocol`] on truncation.
pub fn take_i32(buf: &mut Bytes) -> Result<i32> {
    if buf.remaining() < 4 {
        return Err(Error::protocol("unexpected end of buffer"));
    }
    Ok(buf.get_i32())
}

/// Reads a big-endian f64.
///
/// # Errors
///
/// Returns [`Error::Protocol`] on truncation.
pub fn take_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(Error::protocol("unexpected end of buffer"));
    }
    Ok(buf.get_f64())
}

/// Reads a TraCI length-prefixed string.
///
/// # Errors
///
/// Returns [`Error::Protocol`] on truncation or invalid UTF-8.
pub fn take_string(buf: &mut Bytes) -> Result<String> {
    let len = take_i32(buf)?;
    if len < 0 || buf.remaining() < len as usize {
        return Err(Error::protocol("truncated string"));
    }
    let raw = buf.split_to(len as usize);
    String::from_utf8(raw.to_vec()).map_err(|_| Error::protocol("string is not valid utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: TraciValue) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = TraciValue::decode(&mut bytes).unwrap();
        assert_eq!(back, v);
        assert!(!bytes.has_remaining(), "decoder must consume everything");
    }

    #[test]
    fn value_round_trips() {
        round_trip(TraciValue::UByte(255));
        round_trip(TraciValue::Byte(-7));
        round_trip(TraciValue::Integer(-123456));
        round_trip(TraciValue::Double(13.25));
        round_trip(TraciValue::String("hello TraCI".into()));
        round_trip(TraciValue::StringList(vec!["a".into(), "b".into()]));
        round_trip(TraciValue::Position2D(1800.0, 0.0));
        round_trip(TraciValue::Compound(vec![
            TraciValue::Integer(2),
            TraciValue::String("nested".into()),
            TraciValue::Compound(vec![TraciValue::Double(0.5)]),
        ]));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(TraciValue::Double(2.0).as_double().unwrap(), 2.0);
        assert!(TraciValue::Double(2.0).as_string().is_err());
        assert_eq!(TraciValue::String("x".into()).as_string().unwrap(), "x");
        assert_eq!(TraciValue::Integer(5).as_integer().unwrap(), 5);
        assert!(TraciValue::Integer(5).as_double().is_err());
    }

    #[test]
    fn unknown_type_code_rejected() {
        let mut bytes = Bytes::from_static(&[0x55, 0, 0]);
        assert!(TraciValue::decode(&mut bytes).is_err());
    }

    #[test]
    fn command_round_trip_short() {
        let cmd = Command::new(ids::CMD_SIMSTEP, vec![1, 2, 3]);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Command::decode(&mut bytes).unwrap();
        assert_eq!(back, cmd);
    }

    #[test]
    fn command_round_trip_extended_length() {
        // Payload longer than 253 bytes forces the extended length form.
        let cmd = Command::new(0xA4, vec![0xAB; 1000]);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        assert_eq!(buf[0], 0, "extended length marker");
        let mut bytes = buf.freeze();
        let back = Command::decode(&mut bytes).unwrap();
        assert_eq!(back, cmd);
    }

    #[test]
    fn truncated_command_rejected() {
        let cmd = Command::new(0x02, vec![9; 10]);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..5);
        assert!(Command::decode(&mut truncated).is_err());
    }

    #[test]
    fn message_round_trip_multiple_commands() {
        let cmds = vec![
            Command::new(ids::CMD_GETVERSION, Vec::<u8>::new()),
            Command::new(ids::CMD_SIMSTEP, vec![0; 9]),
        ];
        let msg = encode_message(&cmds);
        let total = i32::from_be_bytes(msg[0..4].try_into().unwrap());
        assert_eq!(total as usize, msg.len());
        let back = decode_message_body(msg.slice(4..)).unwrap();
        assert_eq!(back, cmds);
    }

    #[test]
    fn status_round_trip() {
        for status in [Status::ok(0x02), Status::err(0xA4, "no such vehicle")] {
            let cmd = status.to_command();
            let back = Status::from_command(&cmd).unwrap();
            assert_eq!(back, status);
        }
    }

    #[test]
    fn read_write_message_over_pipe() {
        let cmds = vec![Command::new(ids::CMD_CLOSE, Vec::<u8>::new())];
        let mut buf = Vec::new();
        write_message(&mut buf, &cmds).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_message(&mut cursor).unwrap();
        assert_eq!(back, cmds);
    }

    #[test]
    fn bad_message_header_rejected() {
        let mut cursor = std::io::Cursor::new(vec![0, 0, 0, 2]);
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn string_with_invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_i32(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(take_string(&mut buf.freeze()).is_err());
    }
}
