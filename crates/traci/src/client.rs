//! The TraCI client.

use crate::protocol::{
    self, ids, put_string, read_message, take_string, take_u8, write_message, Command, Status,
    TraciValue,
};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::{TcpStream, ToSocketAddrs};
use velopt_common::{Error, Result};

/// One subscription's values delivered with a simulation step.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionResult {
    /// The subscribed object's id.
    pub object: String,
    /// `(variable id, value)` pairs in subscription order.
    pub values: Vec<(u8, TraciValue)>,
}

impl SubscriptionResult {
    /// The value of a specific variable, if present.
    pub fn value_of(&self, variable: u8) -> Option<&TraciValue> {
        self.values
            .iter()
            .find(|(v, _)| *v == variable)
            .map(|(_, val)| val)
    }
}

/// The version information returned by `CMD_GETVERSION`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// TraCI API level.
    pub api: i32,
    /// Human-readable simulator identity.
    pub software: String,
}

/// A blocking TraCI client over TCP.
///
/// Every request sends one command message and reads the paired
/// status/result message, exactly like SUMO's own client libraries. See the
/// crate-level example.
#[derive(Debug)]
pub struct TraciClient {
    stream: TcpStream,
}

impl TraciClient {
    /// Connects to a TraCI server.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Requests the server's version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on malformed responses and [`Error::Io`]
    /// on socket failures.
    pub fn get_version(&mut self) -> Result<Version> {
        let responses = self.request(Command::new(ids::CMD_GETVERSION, Vec::<u8>::new()))?;
        let result = responses
            .first()
            .ok_or_else(|| Error::protocol("missing version result"))?;
        let mut payload = result.payload.clone();
        let api = protocol::take_i32(&mut payload)?;
        let software = take_string(&mut payload)?;
        Ok(Version { api, software })
    }

    /// Advances the simulation to `target_time` seconds (0 = one step).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`]/[`Error::Io`] on failures.
    pub fn simulation_step(&mut self, target_time: f64) -> Result<()> {
        self.simulation_step_collect(target_time)?;
        Ok(())
    }

    /// Advances the simulation and returns the values of every live
    /// variable subscription (see
    /// [`subscribe_vehicle`](Self::subscribe_vehicle)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`]/[`Error::Io`] on failures.
    pub fn simulation_step_collect(&mut self, target_time: f64) -> Result<Vec<SubscriptionResult>> {
        let mut buf = BytesMut::new();
        buf.put_f64(target_time);
        let responses = self.request(Command::new(ids::CMD_SIMSTEP, buf.freeze()))?;
        let mut results = Vec::new();
        for cmd in &responses {
            if cmd.id != ids::RESPONSE_SUBSCRIBE_VEHICLE_VARIABLE {
                continue;
            }
            let mut payload: Bytes = cmd.payload.clone();
            let object = take_string(&mut payload)?;
            let count = take_u8(&mut payload)? as usize;
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                let var = take_u8(&mut payload)?;
                let status = take_u8(&mut payload)?;
                let value = TraciValue::decode(&mut payload)?;
                if status == ids::RTYPE_OK {
                    values.push((var, value));
                }
            }
            results.push(SubscriptionResult { object, values });
        }
        Ok(results)
    }

    /// Subscribes to vehicle variables for `[begin, end)`; their values
    /// arrive with every subsequent
    /// [`simulation_step_collect`](Self::simulation_step_collect). An empty
    /// variable list cancels the object's subscription.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the server rejects a variable.
    pub fn subscribe_vehicle(
        &mut self,
        vehicle: &str,
        variables: &[u8],
        begin: f64,
        end: f64,
    ) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_f64(begin);
        buf.put_f64(end);
        put_string(&mut buf, vehicle);
        buf.put_u8(variables.len() as u8);
        for &v in variables {
            buf.put_u8(v);
        }
        self.request(Command::new(
            ids::CMD_SUBSCRIBE_VEHICLE_VARIABLE,
            buf.freeze(),
        ))?;
        Ok(())
    }

    /// Reads the current simulation time in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`]/[`Error::Io`] on failures.
    pub fn simulation_time(&mut self) -> Result<f64> {
        self.get_variable(ids::CMD_GET_SIM_VARIABLE, ids::VAR_TIME, "")?
            .as_double()
    }

    /// Reads a vehicle's speed in m/s.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] with the server's message if the vehicle
    /// does not exist.
    pub fn vehicle_speed(&mut self, vehicle: &str) -> Result<f64> {
        self.get_variable(ids::CMD_GET_VEHICLE_VARIABLE, ids::VAR_SPEED, vehicle)?
            .as_double()
    }

    /// Reads a vehicle's 2-D position (corridor offset, 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] with the server's message if the vehicle
    /// does not exist.
    pub fn vehicle_position(&mut self, vehicle: &str) -> Result<(f64, f64)> {
        match self.get_variable(ids::CMD_GET_VEHICLE_VARIABLE, ids::VAR_POSITION, vehicle)? {
            TraciValue::Position2D(x, y) => Ok((x, y)),
            other => Err(Error::protocol(format!("expected position, got {other:?}"))),
        }
    }

    /// Lists the ids of all vehicles currently in the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`]/[`Error::Io`] on failures.
    pub fn vehicle_ids(&mut self) -> Result<Vec<String>> {
        match self.get_variable(ids::CMD_GET_VEHICLE_VARIABLE, ids::ID_LIST, "")? {
            TraciValue::StringList(list) => Ok(list),
            other => Err(Error::protocol(format!("expected id list, got {other:?}"))),
        }
    }

    /// Commands a vehicle's speed (TraCI `setSpeed`). A negative value
    /// returns control to the car-following model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] with the server's message if the vehicle
    /// does not exist or is not externally controllable.
    pub fn set_vehicle_speed(&mut self, vehicle: &str, speed: f64) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(ids::VAR_SPEED);
        put_string(&mut buf, vehicle);
        TraciValue::Double(speed).encode(&mut buf);
        self.request(Command::new(ids::CMD_SET_VEHICLE_VARIABLE, buf.freeze()))?;
        Ok(())
    }

    /// Reads a traffic light's state string (`"G"` during green, `"r"`
    /// during red).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the light does not exist.
    pub fn traffic_light_state(&mut self, light: &str) -> Result<String> {
        Ok(self
            .get_variable(
                ids::CMD_GET_TL_VARIABLE,
                ids::TL_RED_YELLOW_GREEN_STATE,
                light,
            )?
            .as_string()?
            .to_owned())
    }

    /// Reads the number of vehicles that crossed an induction loop during
    /// the last **completed** simulation step (SUMO
    /// `LAST_STEP_VEHICLE_NUMBER`). Reading is non-destructive: repeated
    /// reads within the same step return the same count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the loop does not exist.
    pub fn induction_loop_count(&mut self, loop_id: &str) -> Result<i32> {
        self.get_variable(
            ids::CMD_GET_INDUCTIONLOOP_VARIABLE,
            ids::LAST_STEP_VEHICLE_NUMBER,
            loop_id,
        )?
        .as_integer()
    }

    /// Closes the session; the server tears down after acknowledging.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on socket failures.
    pub fn close(&mut self) -> Result<()> {
        self.request(Command::new(ids::CMD_CLOSE, Vec::<u8>::new()))?;
        Ok(())
    }

    /// Issues a "get variable" command and decodes the typed result value.
    fn get_variable(&mut self, command: u8, variable: u8, object: &str) -> Result<TraciValue> {
        let mut buf = BytesMut::new();
        buf.put_u8(variable);
        put_string(&mut buf, object);
        let responses = self.request(Command::new(command, buf.freeze()))?;
        let result = responses
            .first()
            .ok_or_else(|| Error::protocol("missing get-variable result"))?;
        if result.id != command.wrapping_add(ids::RESPONSE_OFFSET) {
            return Err(Error::protocol(format!(
                "unexpected result command 0x{:02x}",
                result.id
            )));
        }
        let mut payload: Bytes = result.payload.clone();
        let var = take_u8(&mut payload)?;
        if var != variable {
            return Err(Error::protocol("result variable mismatch"));
        }
        let _object = take_string(&mut payload)?;
        TraciValue::decode(&mut payload)
    }

    /// Sends one command, checks its status, and returns any further result
    /// commands.
    fn request(&mut self, command: Command) -> Result<Vec<Command>> {
        let command_id = command.id;
        write_message(&mut self.stream, &[command])?;
        let mut responses = read_message(&mut self.stream)?;
        if responses.is_empty() {
            return Err(Error::protocol("empty response message"));
        }
        let status = Status::from_command(&responses[0])?;
        if status.command != command_id {
            return Err(Error::protocol(format!(
                "status for wrong command: 0x{:02x} vs 0x{:02x}",
                status.command, command_id
            )));
        }
        if status.result != ids::RTYPE_OK {
            return Err(Error::protocol(format!(
                "server rejected command 0x{command_id:02x}: {}",
                status.description
            )));
        }
        responses.remove(0);
        Ok(responses)
    }
}
