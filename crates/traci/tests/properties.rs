//! Property-based tests: the wire format round-trips arbitrary values.

use bytes::BytesMut;
use proptest::prelude::*;
use velopt_traci::protocol::{decode_message_body, encode_message, Command, Status, TraciValue};

/// Strategy for arbitrary (bounded-depth) TraCI values.
fn arb_value() -> impl Strategy<Value = TraciValue> {
    let leaf = prop_oneof![
        any::<u8>().prop_map(TraciValue::UByte),
        any::<i8>().prop_map(TraciValue::Byte),
        any::<i32>().prop_map(TraciValue::Integer),
        (-1e12f64..1e12).prop_map(TraciValue::Double),
        "[a-zA-Z0-9_ ]{0,32}".prop_map(TraciValue::String),
        prop::collection::vec("[a-z0-9]{0,8}", 0..5).prop_map(TraciValue::StringList),
        ((-1e6f64..1e6), (-1e6f64..1e6)).prop_map(|(x, y)| TraciValue::Position2D(x, y)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(TraciValue::Compound)
    })
}

proptest! {
    #[test]
    fn value_round_trip(v in arb_value()) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = TraciValue::decode(&mut bytes).unwrap();
        prop_assert_eq!(back, v);
        prop_assert!(bytes.is_empty());
    }

    #[test]
    fn command_round_trip(id in any::<u8>(), payload in prop::collection::vec(any::<u8>(), 0..600)) {
        let cmd = Command::new(id, payload);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Command::decode(&mut bytes).unwrap();
        prop_assert_eq!(back, cmd);
        prop_assert!(bytes.is_empty());
    }

    #[test]
    fn message_round_trip(
        cmds in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..300)),
            0..6,
        )
    ) {
        let cmds: Vec<Command> = cmds.into_iter().map(|(id, p)| Command::new(id, p)).collect();
        let msg = encode_message(&cmds);
        let back = decode_message_body(msg.slice(4..)).unwrap();
        prop_assert_eq!(back, cmds);
    }

    #[test]
    fn status_round_trip(id in any::<u8>(), result in any::<u8>(), desc in "[ -~]{0,64}") {
        let status = Status { command: id, result, description: desc };
        let back = Status::from_command(&status.to_command()).unwrap();
        prop_assert_eq!(back, status);
    }

    /// Arbitrary byte soup never panics the decoder (it may error).
    #[test]
    fn decoder_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message_body(bytes::Bytes::from(garbage.clone()));
        let mut b = bytes::Bytes::from(garbage);
        let _ = TraciValue::decode(&mut b);
    }
}
