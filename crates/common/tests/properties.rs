//! Property-based tests for the shared foundations.

use proptest::prelude::*;
use velopt_common::interp::PiecewiseLinear;
use velopt_common::rng::SplitMix64;
use velopt_common::series::TimeSeries;
use velopt_common::stats;
use velopt_common::units::{KilometersPerHour, Meters, MetersPerSecond, Seconds};

proptest! {
    #[test]
    fn unit_conversion_round_trip(v in -500.0f64..500.0) {
        let kmh = KilometersPerHour::new(v);
        let back = kmh.to_meters_per_second().to_kilometers_per_hour();
        prop_assert!((back.value() - v).abs() < 1e-9);
    }

    #[test]
    fn speed_times_time_matches_distance(v in 0.0f64..60.0, t in 0.0f64..1000.0) {
        let d = MetersPerSecond::new(v) * Seconds::new(t);
        prop_assert!((d.value() - v * t).abs() < 1e-9);
    }

    #[test]
    fn rmse_is_nonnegative_and_zero_iff_equal(xs in prop::collection::vec(-1e3f64..1e3, 1..64)) {
        let r = stats::rmse(&xs, &xs).unwrap();
        prop_assert_eq!(r, 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let r2 = stats::rmse(&shifted, &xs).unwrap();
        prop_assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mre_scale_invariant(
        xs in prop::collection::vec(1.0f64..1e3, 1..64),
        scale in 0.1f64..10.0,
    ) {
        // MRE is invariant to multiplying both series by the same factor.
        let pred: Vec<f64> = xs.iter().map(|x| x * 1.1).collect();
        let m1 = stats::mre(&pred, &xs).unwrap();
        let xs2: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let pred2: Vec<f64> = pred.iter().map(|x| x * scale).collect();
        let m2 = stats::mre(&pred2, &xs2).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn percentile_within_range(
        xs in prop::collection::vec(-1e3f64..1e3, 1..64),
        q in 0.0f64..=1.0,
    ) {
        let p = stats::percentile(&xs, q).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn piecewise_eval_within_knot_extrema(
        ys in prop::collection::vec(-100.0f64..100.0, 2..16),
        x in -50.0f64..250.0,
    ) {
        let knots: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (i as f64 * 10.0, y)).collect();
        let pl = PiecewiseLinear::new(knots).unwrap();
        let v = pl.eval(x);
        prop_assert!(v >= pl.min_y() - 1e-9 && v <= pl.max_y() + 1e-9);
    }

    #[test]
    fn time_series_integral_bounded_by_extrema(
        samples in prop::collection::vec(-10.0f64..10.0, 2..128),
        step in 0.01f64..2.0,
    ) {
        let n = samples.len();
        let ts = TimeSeries::from_samples(Seconds::ZERO, Seconds::new(step), samples).unwrap();
        let integral = ts.integrate();
        let span = step * (n - 1) as f64;
        prop_assert!(integral <= ts.max_value() * span + 1e-9);
        prop_assert!(integral >= ts.min_value() * span - 1e-9);
    }

    #[test]
    fn time_series_resample_preserves_endpoints(
        samples in prop::collection::vec(0.0f64..10.0, 2..64),
    ) {
        let ts = TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), samples).unwrap();
        let rs = ts.resample(Seconds::new(0.25)).unwrap();
        prop_assert!((rs.samples()[0] - ts.samples()[0]).abs() < 1e-12);
        // The resampled end lands exactly on the original end for step 0.25.
        let end = rs.sample_at(ts.end()).unwrap();
        prop_assert!((end - *ts.samples().last().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn splitmix_uniform_in_bounds(seed in any::<u64>(), lo in -10.0f64..0.0, width in 0.0f64..10.0) {
        let mut rng = SplitMix64::new(seed);
        let x = rng.uniform(lo, lo + width);
        prop_assert!(x >= lo && x <= lo + width);
    }

    #[test]
    fn distance_div_speed_consistent(d in 1.0f64..1e4, v in 0.1f64..60.0) {
        let t = Meters::new(d) / MetersPerSecond::new(v);
        prop_assert!((MetersPerSecond::new(v) * t).value() - d < 1e-6);
    }
}
