//! Newtype wrappers for the physical quantities used across the workspace.
//!
//! Every unit is a thin wrapper around `f64` with:
//!
//! * a `new` constructor and a `value` accessor,
//! * arithmetic operators that are dimensionally meaningful (e.g.
//!   `Meters / Seconds -> MetersPerSecond`),
//! * [`Display`](std::fmt::Display) with the SI suffix.
//!
//! Using distinct types for distance, time, speed and acceleration prevents
//! the classic unit-mixup bugs in the dynamic-programming optimizer, where
//! positions, arrival times and speeds flow through the same state tuples.
//!
//! # Examples
//!
//! ```
//! use velopt_common::units::{Meters, MetersPerSecond, Seconds};
//!
//! let gap = Meters::new(30.0);
//! let speed = MetersPerSecond::new(10.0);
//! let time_to_cover: Seconds = gap / speed;
//! assert_eq!(time_to_cover, Seconds::new(3.0));
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` as this unit.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use velopt_common::units::", stringify!($name), ";")]
            #[doc = concat!("let q = ", stringify!($name), "::new(1.5);")]
            /// assert_eq!(q.value(), 1.5);
            /// ```
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying `f64`.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the quantity is a finite number.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(p) = f.precision() {
                    write!(f, "{:.*} {}", p, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

unit!(
    /// A distance in meters.
    Meters,
    "m"
);
unit!(
    /// A duration or instant in seconds.
    Seconds,
    "s"
);
unit!(
    /// A speed in meters per second.
    MetersPerSecond,
    "m/s"
);
unit!(
    /// An acceleration in meters per second squared.
    MetersPerSecondSq,
    "m/s^2"
);
unit!(
    /// A speed in kilometers per hour (display/UI convenience).
    KilometersPerHour,
    "km/h"
);
unit!(
    /// An electrical potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electrical charge in ampere-hours; the paper reports EV energy use in
    /// milliampere-hours drawn from the 399 V pack.
    AmpereHours,
    "Ah"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// A traffic flow rate in vehicles per hour.
    VehiclesPerHour,
    "veh/h"
);
unit!(
    /// An electrical current in amperes — the unit of the paper's charge
    /// consumption rate ζ (Eq. 3).
    Amperes,
    "A"
);
unit!(
    /// An angle in radians (used for road grade).
    Radians,
    "rad"
);

impl Meters {
    /// Builds a distance from kilometers.
    ///
    /// # Examples
    ///
    /// ```
    /// use velopt_common::units::Meters;
    /// assert_eq!(Meters::from_kilometers(4.2), Meters::new(4200.0));
    /// ```
    #[inline]
    pub fn from_kilometers(km: f64) -> Self {
        Self::new(km * 1000.0)
    }
}

impl Seconds {
    /// Builds a duration from whole hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * 3600.0)
    }

    /// Expresses the duration in hours.
    #[inline]
    pub fn to_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// Builds a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }
}

impl MetersPerSecond {
    /// Converts to kilometers per hour.
    ///
    /// # Examples
    ///
    /// ```
    /// use velopt_common::units::MetersPerSecond;
    /// let v = MetersPerSecond::new(15.0).to_kilometers_per_hour();
    /// assert_eq!(v.value(), 54.0);
    /// ```
    #[inline]
    pub fn to_kilometers_per_hour(self) -> KilometersPerHour {
        KilometersPerHour::new(self.value() * 3.6)
    }
}

impl KilometersPerHour {
    /// Converts to meters per second.
    #[inline]
    pub fn to_meters_per_second(self) -> MetersPerSecond {
        MetersPerSecond::new(self.value() / 3.6)
    }
}

impl Radians {
    /// Builds an angle from degrees.
    #[inline]
    pub fn from_degrees(deg: f64) -> Self {
        Self::new(deg.to_radians())
    }

    /// Builds the grade angle from a slope percentage (rise/run * 100).
    ///
    /// # Examples
    ///
    /// ```
    /// use velopt_common::units::Radians;
    /// let theta = Radians::from_grade_percent(5.0);
    /// assert!((theta.value() - 0.05_f64.atan()).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_grade_percent(percent: f64) -> Self {
        Self::new((percent / 100.0).atan())
    }

    /// The sine of the angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.value().sin()
    }

    /// The cosine of the angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.value().cos()
    }
}

impl AmpereHours {
    /// Builds a charge from milliampere-hours.
    #[inline]
    pub fn from_milliamp_hours(mah: f64) -> Self {
        Self::new(mah / 1000.0)
    }

    /// Expresses the charge in milliampere-hours (the unit of Fig. 3/7 in the
    /// paper).
    #[inline]
    pub fn to_milliamp_hours(self) -> f64 {
        self.value() * 1000.0
    }
}

// Dimensional cross-type operators.

impl Div<Seconds> for Meters {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond::new(self.value() / rhs.value())
    }
}

impl Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters::new(self.value() * rhs.value())
    }
}

impl Mul<MetersPerSecond> for Seconds {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: MetersPerSecond) -> Meters {
        rhs * self
    }
}

impl Div<Seconds> for MetersPerSecond {
    type Output = MetersPerSecondSq;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecondSq {
        MetersPerSecondSq::new(self.value() / rhs.value())
    }
}

impl Mul<Seconds> for MetersPerSecondSq {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond::new(self.value() * rhs.value())
    }
}

impl Div<MetersPerSecondSq> for MetersPerSecond {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecondSq) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Mul<Seconds> for Watts {
    type Output = f64;
    /// Energy in joules.
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.value() * rhs.value()
    }
}

impl Amperes {
    /// The charge accumulated by this current over a duration.
    ///
    /// # Examples
    ///
    /// ```
    /// use velopt_common::units::{Amperes, Seconds};
    /// let q = Amperes::new(2.0).over(Seconds::new(1800.0));
    /// assert_eq!(q.value(), 1.0); // 2 A for half an hour = 1 Ah
    /// ```
    #[inline]
    pub fn over(self, duration: Seconds) -> AmpereHours {
        AmpereHours::new(self.value() * duration.value() / 3600.0)
    }
}

impl VehiclesPerHour {
    /// The flow expressed in vehicles per second.
    #[inline]
    pub fn per_second(self) -> f64 {
        self.value() / 3600.0
    }

    /// Builds a flow rate from a vehicles-per-second figure.
    #[inline]
    pub fn from_per_second(vps: f64) -> Self {
        Self::new(vps * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmh_mps_round_trip() {
        let v = KilometersPerHour::new(72.0);
        let back = v.to_meters_per_second().to_kilometers_per_hour();
        assert!((back.value() - 72.0).abs() < 1e-12);
    }

    #[test]
    fn distance_over_time_is_speed() {
        assert_eq!(
            Meters::new(100.0) / Seconds::new(4.0),
            MetersPerSecond::new(25.0)
        );
    }

    #[test]
    fn distance_over_speed_is_time() {
        assert_eq!(
            Meters::new(100.0) / MetersPerSecond::new(25.0),
            Seconds::new(4.0)
        );
    }

    #[test]
    fn accel_times_time_is_speed() {
        assert_eq!(
            MetersPerSecondSq::new(2.5) * Seconds::new(4.0),
            MetersPerSecond::new(10.0)
        );
    }

    #[test]
    fn speed_over_accel_is_time() {
        // The VM model's ramp-up time v_min / a_max.
        let t = MetersPerSecond::new(11.18) / MetersPerSecondSq::new(2.5);
        assert!((t.value() - 4.472).abs() < 1e-9);
    }

    #[test]
    fn clamp_and_minmax() {
        let v = MetersPerSecond::new(40.0);
        assert_eq!(
            v.clamp(MetersPerSecond::ZERO, MetersPerSecond::new(30.0)),
            MetersPerSecond::new(30.0)
        );
        assert_eq!(v.min(MetersPerSecond::new(10.0)).value(), 10.0);
        assert_eq!(v.max(MetersPerSecond::new(50.0)).value(), 50.0);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Meters::new(1.0).clamp(Meters::new(2.0), Meters::new(1.0));
    }

    #[test]
    fn grade_percent_angle() {
        let theta = Radians::from_grade_percent(0.0);
        assert_eq!(theta.sin(), 0.0);
        assert_eq!(theta.cos(), 1.0);
    }

    #[test]
    fn ampere_hours_milliamp_round_trip() {
        let q = AmpereHours::from_milliamp_hours(460.0);
        assert!((q.value() - 0.46).abs() < 1e-12);
        assert!((q.to_milliamp_hours() - 460.0).abs() < 1e-12);
    }

    #[test]
    fn vehicles_per_hour_per_second() {
        let rate = VehiclesPerHour::new(3600.0);
        assert_eq!(rate.per_second(), 1.0);
        assert_eq!(VehiclesPerHour::from_per_second(0.5).value(), 1800.0);
    }

    #[test]
    fn sum_of_distances() {
        let total: Meters = [Meters::new(1.0), Meters::new(2.5)].into_iter().sum();
        assert_eq!(total, Meters::new(3.5));
    }

    #[test]
    fn display_has_suffix_and_precision() {
        assert_eq!(format!("{:.2}", Meters::new(1.234)), "1.23 m");
        assert_eq!(format!("{}", Seconds::new(3.0)), "3 s");
    }

    #[test]
    fn hours_minutes_conversions() {
        assert_eq!(Seconds::from_hours(1.5).value(), 5400.0);
        assert_eq!(Seconds::from_minutes(2.0).value(), 120.0);
        assert!((Seconds::new(1800.0).to_hours() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negation_and_sub_assign() {
        let mut a = MetersPerSecondSq::new(1.5);
        a -= MetersPerSecondSq::new(3.0);
        assert_eq!(a, MetersPerSecondSq::new(-1.5));
        assert_eq!(-a, MetersPerSecondSq::new(1.5));
    }
}
