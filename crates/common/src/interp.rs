//! Linear interpolation and piecewise-linear curves.
//!
//! Road grade profiles and speed-limit envelopes are represented as
//! piecewise-linear functions of distance; the DP optimizer evaluates them at
//! every station. [`PiecewiseLinear`] is the shared implementation.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Linear interpolation between `(x0, y0)` and `(x1, y1)` evaluated at `x`.
///
/// `x` is clamped to the segment, so the result never extrapolates.
///
/// # Examples
///
/// ```
/// assert_eq!(velopt_common::interp::lerp(0.0, 0.0, 10.0, 100.0, 2.5), 25.0);
/// assert_eq!(velopt_common::interp::lerp(0.0, 0.0, 10.0, 100.0, 20.0), 100.0);
/// ```
pub fn lerp(x0: f64, y0: f64, x1: f64, y1: f64, x: f64) -> f64 {
    if x1 == x0 {
        return y0;
    }
    let t = ((x - x0) / (x1 - x0)).clamp(0.0, 1.0);
    y0 + t * (y1 - y0)
}

/// A piecewise-linear curve defined by knots with strictly increasing `x`.
///
/// Evaluation outside the knot range clamps to the boundary values, which is
/// the natural behaviour for grade and limit profiles (the road is flat
/// beyond the surveyed section).
///
/// # Examples
///
/// ```
/// use velopt_common::interp::PiecewiseLinear;
///
/// let grade = PiecewiseLinear::new(vec![(0.0, 0.0), (100.0, 2.0), (200.0, 0.0)]).unwrap();
/// assert_eq!(grade.eval(50.0), 1.0);
/// assert_eq!(grade.eval(-10.0), 0.0);
/// assert_eq!(grade.eval(500.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Creates a curve from `(x, y)` knots.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if fewer than one knot is supplied or
    /// the `x` values are not strictly increasing and finite.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self> {
        if knots.is_empty() {
            return Err(Error::invalid_input("piecewise curve needs >= 1 knot"));
        }
        if knots.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(Error::invalid_input("piecewise curve knots must be finite"));
        }
        for w in knots.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(Error::invalid_input(
                    "piecewise curve knots must have strictly increasing x",
                ));
            }
        }
        Ok(Self { knots })
    }

    /// A constant curve.
    pub fn constant(y: f64) -> Self {
        Self {
            knots: vec![(0.0, y)],
        }
    }

    /// Evaluates the curve at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let ks = &self.knots;
        if x <= ks[0].0 {
            return ks[0].1;
        }
        if x >= ks[ks.len() - 1].0 {
            return ks[ks.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = ks.partition_point(|&(kx, _)| kx <= x);
        let (x0, y0) = ks[idx - 1];
        let (x1, y1) = ks[idx];
        lerp(x0, y0, x1, y1, x)
    }

    /// The knots of the curve.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Minimum `y` over the knots (exact for piecewise-linear curves).
    pub fn min_y(&self) -> f64 {
        self.knots
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum `y` over the knots.
    pub fn max_y(&self) -> f64 {
        self.knots
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_degenerate_segment() {
        assert_eq!(lerp(1.0, 5.0, 1.0, 9.0, 1.0), 5.0);
    }

    #[test]
    fn rejects_bad_knots() {
        assert!(PiecewiseLinear::new(vec![]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(1.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(f64::NAN, 1.0)]).is_err());
    }

    #[test]
    fn single_knot_is_constant() {
        let c = PiecewiseLinear::new(vec![(5.0, 3.0)]).unwrap();
        assert_eq!(c.eval(0.0), 3.0);
        assert_eq!(c.eval(100.0), 3.0);
    }

    #[test]
    fn constant_constructor() {
        let c = PiecewiseLinear::constant(-2.0);
        assert_eq!(c.eval(123.0), -2.0);
        assert_eq!(c.min_y(), -2.0);
        assert_eq!(c.max_y(), -2.0);
    }

    #[test]
    fn eval_on_knots_and_between() {
        let pl = PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)]).unwrap();
        assert_eq!(pl.eval(0.0), 0.0);
        assert_eq!(pl.eval(10.0), 10.0);
        assert_eq!(pl.eval(15.0), 5.0);
        assert_eq!(pl.eval(20.0), 0.0);
    }

    #[test]
    fn extrema() {
        let pl = PiecewiseLinear::new(vec![(0.0, -1.0), (1.0, 4.0), (2.0, 2.0)]).unwrap();
        assert_eq!(pl.min_y(), -1.0);
        assert_eq!(pl.max_y(), 4.0);
        assert_eq!(pl.knots().len(), 3);
    }
}
