//! A tiny deterministic pseudo-random generator.
//!
//! The synthetic workloads in this reproduction (traffic-volume feeds,
//! vehicle injection, Krauss dawdling) must be reproducible across runs and
//! platforms so that the figure harnesses regenerate identical series. This
//! module implements SplitMix64 — a well-known, statistically solid 64-bit
//! generator with a one-word state — rather than threading `rand` generics
//! through every crate. Crates that need `rand` distributions (the traffic
//! generator) still use `rand`, seeded from here.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use velopt_common::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns an approximately standard-normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponential inter-arrival time with the given rate
    /// (events per unit time). Used for Poisson vehicle injection.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

/// Shuffles `items` in place with a Fisher–Yates walk driven by `rng`.
///
/// Draws exactly `items.len().saturating_sub(1)` values from the
/// generator (one per swap position, high to low) regardless of the
/// element values, so the RNG stream consumed is a pure function of the
/// slice length — callers interleaving other draws stay reproducible.
///
/// # Examples
///
/// ```
/// use velopt_common::rng::{shuffle, SplitMix64};
///
/// let mut order: Vec<usize> = (0..10).collect();
/// shuffle(&mut order, &mut SplitMix64::new(42));
/// let mut sorted = order.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..10).collect::<Vec<_>>()); // still a permutation
/// ```
pub fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_mean_near_zero() {
        let mut rng = SplitMix64::new(12345);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "normal mean drifted: {mean}");
    }

    #[test]
    fn exponential_mean_near_inverse_rate() {
        let mut rng = SplitMix64::new(777);
        let rate = 2.0;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.02,
            "exponential mean drifted: {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SplitMix64::new(11);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_zero_rate() {
        SplitMix64::new(0).exponential(0.0);
    }

    #[test]
    fn shuffle_empty_slice_is_a_no_op() {
        let mut rng = SplitMix64::new(1);
        let before = rng.clone();
        let mut items: [u32; 0] = [];
        shuffle(&mut items, &mut rng);
        assert_eq!(rng, before, "empty shuffle must not consume the stream");
    }

    #[test]
    fn shuffle_single_element_is_a_no_op() {
        let mut rng = SplitMix64::new(1);
        let before = rng.clone();
        let mut items = [7u32];
        shuffle(&mut items, &mut rng);
        assert_eq!(items, [7]);
        assert_eq!(rng, before, "1-element shuffle must not consume the stream");
    }

    #[test]
    fn shuffle_produces_a_permutation() {
        for seed in 0..20u64 {
            let mut items: Vec<usize> = (0..57).collect();
            shuffle(&mut items, &mut SplitMix64::new(seed));
            let mut sorted = items.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..57).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shuffle_is_deterministic_given_seed() {
        let mut a: Vec<u8> = (0..100).collect();
        let mut b: Vec<u8> = (0..100).collect();
        shuffle(&mut a, &mut SplitMix64::new(0xDEAD_BEEF));
        shuffle(&mut b, &mut SplitMix64::new(0xDEAD_BEEF));
        assert_eq!(a, b);
        let mut c: Vec<u8> = (0..100).collect();
        shuffle(&mut c, &mut SplitMix64::new(0xDEAD_BEE5));
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }
}
