//! Deterministic chunked parallelism.
//!
//! Callers parallelize a buffer by splitting it into contiguous, disjoint
//! `&mut` chunks (one or more elements each); every chunk is processed by
//! exactly one thread. Chunk boundaries depend only on the data geometry —
//! never on the thread count or on scheduling — and within a chunk work
//! runs in the same order as the sequential path, so the buffer contents
//! are bit-identical whether the work runs on one thread or sixteen.
//! Per-chunk results (metric counters) are returned in chunk order so any
//! fold over them is deterministic too.
//!
//! The DP solver leans on this for layer relaxation (each chunk is a band
//! of target-speed rows) and the traffic predictor for mini-batch gradient
//! accumulation (each chunk is a band of samples); both advertise
//! bit-identical output for any thread count on the strength of this
//! contract.
//!
//! Two execution strategies share it:
//!
//! * [`map_chunks`] — spawns scoped workers per call. Fine for one-shot
//!   fan-outs (batch planning spreads whole solves this way).
//! * [`team_scope`] / [`Team`] — spawns the workers **once** and reuses
//!   them across many rounds via a barrier protocol. A DP solve relaxes
//!   hundreds of layers — and an SGD epoch visits dozens of mini-batches —
//!   each only tens of microseconds of work; per-round thread spawning
//!   would dwarf the work itself, so callers keep one team alive for the
//!   whole loop.

use std::cell::UnsafeCell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Barrier;

/// Resolves a configured worker count: `0` means one worker per available
/// core, anything else is taken literally (minimum 1).
pub fn effective_threads(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// chunk may be shorter), applies `f` to each, and returns the per-chunk
/// results **in chunk order**. `f` receives the offset of its chunk's
/// first element within `data`.
///
/// With `threads > 1` chunks are spread round-robin over scoped worker
/// threads; each chunk is still a disjoint `&mut` slice processed by
/// exactly one thread, so the writes are race-free by construction and
/// the output is independent of the thread count.
///
/// # Panics
///
/// Panics if `chunk_len == 0` or a worker thread panics.
pub fn map_chunks<T, R, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| f(ci * chunk_len, chunk))
            .collect();
    }

    let workers = threads.min(n_chunks);
    // Static round-robin assignment: no runtime scheduling, so which thread
    // owns which chunk is fixed up front (only timing varies across runs).
    let mut buckets: Vec<Vec<(usize, usize, &mut [T])>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[ci % workers].push((ci, ci * chunk_len, chunk));
    }

    let mut results: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(ci, offset, chunk)| (ci, f(offset, chunk)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (ci, r) in handle.join().expect("worker thread panicked") {
                results[ci] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk produces a result"))
        .collect()
}

/// One round's worth of work, published by the main thread for the team.
///
/// The function pointer is only dereferenced between the round's start and
/// done barriers, while the referent (a closure on the main thread's
/// stack) is provably alive.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    n_chunks: usize,
}

/// State shared between the main thread and the persistent workers.
struct TeamShared {
    /// The current round's job; written by main before the start barrier.
    job: AtomicPtr<Job>,
    /// Round entry: main + workers all arrive before any chunk runs.
    start: Barrier,
    /// Round exit: main + workers all arrive before `run` returns.
    done: Barrier,
    /// Set by main (under the start barrier) to retire the workers.
    shutdown: AtomicBool,
    /// Set by any thread whose chunk closure panicked this round.
    poisoned: AtomicBool,
}

/// A persistent worker team created by [`team_scope`].
///
/// With one worker the team degenerates to inline sequential execution —
/// no threads, no barriers — so callers can use one code path for every
/// thread count.
pub struct Team<'a> {
    workers: usize,
    shared: Option<&'a TeamShared>,
}

/// Runs every chunk index assigned to `worker` (the static stride
/// partition `ci % workers == worker`), trapping panics so the thread
/// always reaches the round's done barrier.
fn run_stride(job: &Job, shared: &TeamShared, worker: usize, workers: usize) {
    // SAFETY: the job pointer (and the closure it points to) outlives the
    // round; see `Job`.
    let f = unsafe { &*job.f };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut ci = worker;
        while ci < job.n_chunks {
            f(ci);
            ci += workers;
        }
    }));
    if outcome.is_err() {
        shared.poisoned.store(true, Ordering::Release);
    }
}

/// Releases the workers into shutdown even if the driver panics, so the
/// enclosing thread scope can join instead of deadlocking.
struct ShutdownGuard<'a> {
    shared: &'a TeamShared,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.start.wait();
    }
}

/// Spawns `threads - 1` worker threads (the caller participates as worker
/// 0), hands the driver a [`Team`], and joins the workers when the driver
/// returns. With `threads <= 1` no threads are spawned and every
/// [`Team::map_chunks`] call runs inline.
pub fn team_scope<Ret>(threads: usize, driver: impl FnOnce(&Team<'_>) -> Ret) -> Ret {
    let threads = threads.max(1);
    if threads == 1 {
        return driver(&Team {
            workers: 1,
            shared: None,
        });
    }
    let shared = TeamShared {
        job: AtomicPtr::new(std::ptr::null_mut()),
        start: Barrier::new(threads),
        done: Barrier::new(threads),
        shutdown: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
    };
    std::thread::scope(|scope| {
        for worker in 1..threads {
            let shared = &shared;
            scope.spawn(move || loop {
                shared.start.wait();
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // SAFETY: between the start and done barriers the job
                // pointer published by `Team::run` is valid.
                let job = unsafe { &*shared.job.load(Ordering::Acquire) };
                run_stride(job, shared, worker, threads);
                shared.done.wait();
            });
        }
        let _guard = ShutdownGuard { shared: &shared };
        driver(&Team {
            workers: threads,
            shared: Some(&shared),
        })
    })
}

/// Raw-pointer newtype so a chunk base pointer can cross the closure's
/// `Sync` bound; the disjoint-chunk partition makes the aliasing sound.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced through the disjoint chunk
// ranges `map_chunks` hands each worker, so moving it across threads
// cannot create aliasing access to any `T: Send` element.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — shared references to the wrapper only yield the raw
// pointer, and every dereference stays within one chunk's disjoint range.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — edition-2021 closures capture disjoint fields, and the
    /// bare `*mut T` field would not be `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Result slots written by whichever thread owns the chunk; `Sync` is
/// sound because distinct chunks write distinct slots exactly once.
struct SyncSlots<T>(Vec<UnsafeCell<Option<T>>>);
// SAFETY: slot `i` is written exactly once, by the unique owner of chunk
// `i` (see `put`), and only read after the round's done barrier — no two
// threads ever touch the same cell concurrently.
unsafe impl<T: Send> Sync for SyncSlots<T> {}

impl<T> SyncSlots<T> {
    /// # Safety
    ///
    /// Each slot index must be written by at most one thread per round
    /// (here: the unique owner of chunk `i`).
    unsafe fn put(&self, i: usize, value: T) {
        // SAFETY: the caller guarantees exclusive ownership of slot `i`
        // this round, so the raw cell write cannot race.
        unsafe { *self.0[i].get() = Some(value) };
    }
}

impl Team<'_> {
    /// The team's worker count (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one round: every chunk index in `0..n_chunks` is executed
    /// exactly once, partitioned over the team by stride.
    fn run(&self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = self.shared else {
            for ci in 0..n_chunks {
                f(ci);
            }
            return;
        };
        // SAFETY: the erased lifetime is a formality — the pointer is only
        // dereferenced between this round's start and done barriers, while
        // `f` is provably alive.
        let f_erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Job {
            f: f_erased,
            n_chunks,
        };
        shared
            .job
            .store(&job as *const Job as *mut Job, Ordering::Release);
        shared.start.wait();
        run_stride(&job, shared, 0, self.workers);
        shared.done.wait();
        if shared.poisoned.swap(false, Ordering::AcqRel) {
            panic!("worker thread panicked");
        }
    }

    /// [`map_chunks`] over the persistent team: same chunk geometry, same
    /// deterministic per-chunk results, but the threads already exist —
    /// one barrier round instead of a spawn/join cycle per call.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` or a chunk closure panics on any worker.
    pub fn map_chunks<T, R, F>(&self, data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        if self.shared.is_none() || n_chunks <= 1 {
            return data
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(ci, chunk)| f(ci * chunk_len, chunk))
                .collect();
        }
        let len = data.len();
        let base = SendPtr(data.as_mut_ptr());
        let slots = SyncSlots((0..n_chunks).map(|_| UnsafeCell::new(None)).collect());
        let job = |ci: usize| {
            let offset = ci * chunk_len;
            let end = (offset + chunk_len).min(len);
            // SAFETY: chunk `ci` covers `[offset, end)`; distinct chunk
            // indices give disjoint ranges and `run` executes each index
            // exactly once, so no two threads alias the same elements.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(offset), end - offset) };
            let r = f(offset, chunk);
            // SAFETY: slot `ci` is written only by the owner of chunk `ci`.
            unsafe { slots.put(ci, r) };
        };
        self.run(n_chunks, &job);
        slots
            .0
            .into_iter()
            .map(|slot| slot.into_inner().expect("every chunk produces a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn chunk_results_are_ordered_and_complete() {
        for threads in [1, 2, 5, 16] {
            let mut data: Vec<u64> = (0..103).collect();
            let sums = map_chunks(&mut data, 10, threads, |offset, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
                (offset, chunk.iter().sum::<u64>())
            });
            assert_eq!(sums.len(), 11);
            // Offsets come back in chunk order regardless of thread count.
            assert!(sums.windows(2).all(|w| w[0].0 < w[1].0));
            let total: u64 = sums.iter().map(|(_, s)| s).sum();
            assert_eq!(total, (1..=103).sum::<u64>());
            assert_eq!(data[0], 1);
            assert_eq!(data[102], 103);
        }
    }

    #[test]
    fn identical_output_across_thread_counts() {
        let baseline = {
            let mut data = vec![0u64; 97];
            map_chunks(&mut data, 7, 1, |offset, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + k) as u64 * 3 + 1;
                }
                chunk.len()
            });
            data
        };
        for threads in [2, 3, 8] {
            let mut data = vec![0u64; 97];
            map_chunks(&mut data, 7, threads, |offset, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + k) as u64 * 3 + 1;
                }
                chunk.len()
            });
            assert_eq!(data, baseline);
        }
    }

    #[test]
    fn team_matches_map_chunks_over_many_rounds() {
        let rounds = 25usize;
        let baseline: Vec<Vec<u64>> = (0..rounds)
            .map(|r| {
                let mut data = vec![0u64; 61];
                map_chunks(&mut data, 9, 1, |offset, chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = ((offset + k) * (r + 1)) as u64;
                    }
                    chunk.iter().sum::<u64>()
                });
                data
            })
            .collect();
        for threads in [1, 2, 4, 7] {
            team_scope(threads, |team| {
                for (r, expect) in baseline.iter().enumerate() {
                    let mut data = vec![0u64; 61];
                    let sums = team.map_chunks(&mut data, 9, |offset, chunk| {
                        for (k, x) in chunk.iter_mut().enumerate() {
                            *x = ((offset + k) * (r + 1)) as u64;
                        }
                        chunk.iter().sum::<u64>()
                    });
                    assert_eq!(&data, expect, "round {r} diverged at {threads} threads");
                    assert_eq!(sums.len(), 61usize.div_ceil(9));
                    assert_eq!(
                        sums.iter().sum::<u64>(),
                        expect.iter().sum::<u64>(),
                        "per-chunk sums must cover the data exactly once"
                    );
                }
            });
        }
    }

    #[test]
    fn team_scope_returns_driver_value() {
        let got = team_scope(3, |team| {
            let mut data = vec![1u8; 10];
            let counts = team.map_chunks(&mut data, 3, |_, chunk| chunk.len());
            counts.into_iter().sum::<usize>()
        });
        assert_eq!(got, 10);
    }

    #[test]
    fn team_worker_panic_propagates() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            team_scope(2, |team| {
                let mut data = vec![0u8; 16];
                team.map_chunks(&mut data, 2, |offset, _| {
                    assert!(offset != 8, "boom");
                });
            });
        }));
        assert!(outcome.is_err(), "a panicking chunk must fail the round");
    }

    #[test]
    fn team_survives_a_poisoned_round() {
        // After a panic is reported, the team must still run later rounds
        // (the poisoned flag is per-round, not sticky).
        team_scope(2, |team| {
            let mut data = vec![0u8; 8];
            let first = catch_unwind(AssertUnwindSafe(|| {
                team.map_chunks(&mut data, 2, |offset, _| assert!(offset != 4));
            }));
            assert!(first.is_err());
            let mut data = vec![0u64; 8];
            let sums = team.map_chunks(&mut data, 2, |offset, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + k) as u64;
                }
                chunk.len() as u64
            });
            assert_eq!(sums.iter().sum::<u64>(), 8);
            assert_eq!(data, (0..8).collect::<Vec<u64>>());
        });
    }
}
