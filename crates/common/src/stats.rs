//! Descriptive statistics and the error metrics used in the paper.
//!
//! The paper evaluates its stacked-autoencoder traffic predictor with **Mean
//! Relative Error** (MRE) and **Root Mean Squared Error** (RMSE), and its
//! queue-length model by visual RMSE against collected data (Fig. 4–5). The
//! functions here implement those metrics plus the handful of descriptive
//! statistics the benches report.

use crate::error::{Error, Result};

/// Arithmetic mean of a slice.
///
/// Returns `0.0` for an empty slice, which is the convention used throughout
/// the workload reports (an empty day contributes zero volume).
///
/// # Examples
///
/// ```
/// assert_eq!(velopt_common::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(velopt_common::stats::mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice (division by `n`).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root Mean Squared Error between predictions and ground truth.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] if the slices differ in length or are
/// empty.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// let rmse = velopt_common::stats::rmse(&[1.0, 2.0], &[1.0, 4.0])?;
/// assert!((rmse - 2.0_f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn rmse(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    paired(predicted, actual)?;
    let mse = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64;
    Ok(mse.sqrt())
}

/// Mean Relative Error between predictions and ground truth, as a fraction.
///
/// Pairs whose actual value is zero are skipped (relative error is undefined
/// there); this matches how hourly traffic-volume MRE is computed in the
/// traffic-forecasting literature the paper cites, where night hours with
/// zero counts are excluded.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] if the slices differ in length, are empty,
/// or if *every* actual value is zero.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// let mre = velopt_common::stats::mre(&[110.0, 90.0], &[100.0, 100.0])?;
/// assert!((mre - 0.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn mre(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    paired(predicted, actual)?;
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if *a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(Error::invalid_input(
            "mre undefined: every actual value is zero",
        ));
    }
    Ok(total / n as f64)
}

/// Mean Absolute Error between predictions and ground truth.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] if the slices differ in length or are
/// empty.
pub fn mae(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    paired(predicted, actual)?;
    Ok(predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64)
}

/// Linear-interpolated percentile (`q` in `[0, 1]`) of a slice.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for an empty slice or `q` outside `[0,1]`.
pub fn percentile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::invalid_input("percentile of empty slice"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(Error::invalid_input("percentile q must be in [0, 1]"));
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in percentile"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// The percentile spread of a sample set: the numbers the continuous
/// benchmarks report per scenario.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// let s = velopt_common::stats::Percentiles::from_samples(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.p50, 2.5);
/// assert_eq!(s.max, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Smallest sample.
    pub min: f64,
    /// Median (linear-interpolated).
    pub p50: f64,
    /// 90th percentile (linear-interpolated).
    pub p90: f64,
    /// 95th percentile (linear-interpolated) — the serving-latency SLO
    /// point the cloud bench gates on.
    pub p95: f64,
    /// 99th percentile (linear-interpolated).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Summarizes a sample set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Result<Self> {
        Ok(Self {
            min: percentile(xs, 0.0)?,
            p50: percentile(xs, 0.5)?,
            p90: percentile(xs, 0.9)?,
            p95: percentile(xs, 0.95)?,
            p99: percentile(xs, 0.99)?,
            max: percentile(xs, 1.0)?,
        })
    }
}

/// Online accumulator for mean/min/max over a stream of samples.
///
/// Used by the microscopic simulator to aggregate per-step telemetry without
/// storing every sample.
///
/// # Examples
///
/// ```
/// use velopt_common::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 6.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.count(), 3);
/// assert_eq!(acc.mean(), 3.0);
/// assert_eq!(acc.min(), Some(1.0));
/// assert_eq!(acc.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of samples seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

fn paired(predicted: &[f64], actual: &[f64]) -> Result<()> {
    if predicted.len() != actual.len() {
        return Err(Error::invalid_input(format!(
            "length mismatch: {} predictions vs {} actuals",
            predicted.len(),
            actual.len()
        )));
    }
    if predicted.is_empty() {
        return Err(Error::invalid_input("empty metric input"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn rmse_rejects_mismatched_lengths() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
    }

    #[test]
    fn mre_skips_zero_actuals() {
        let mre = mre(&[10.0, 50.0], &[0.0, 100.0]).unwrap();
        assert!((mre - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mre_all_zero_actuals_is_error() {
        assert!(mre(&[1.0, 2.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 3.0], &[2.0, 1.0]).unwrap(), 1.5);
    }

    #[test]
    fn percentile_median_and_bounds() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.5).unwrap(), 2.0);
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 1.0).unwrap(), 3.0);
        assert!(percentile(&xs, 1.5).is_err());
        assert!(percentile(&[], 0.5).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.25).unwrap(), 2.5);
    }

    #[test]
    fn percentiles_summary() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        let s = Percentiles::from_samples(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.5);
        assert_eq!(s.max, 4.0);
        assert!(s.p90 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(Percentiles::from_samples(&[]).is_err());
    }

    #[test]
    fn accumulator_empty() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }
}
