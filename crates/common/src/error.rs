//! The workspace-wide error type.
//!
//! Every fallible public API in the `velopt` crates returns
//! [`Result<T>`](Result) with this [`Error`]. The variants are deliberately
//! coarse: this is a research library, and the useful signal is *which layer*
//! rejected the input, carried in a human-readable message.

use std::fmt;

/// A specialized result type for `velopt` operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the `velopt` crates.
///
/// # Examples
///
/// ```
/// use velopt_common::{Error, Result};
///
/// fn check(dt: f64) -> Result<()> {
///     if dt <= 0.0 {
///         return Err(Error::invalid_input("time step must be positive"));
///     }
///     Ok(())
/// }
/// assert!(check(-1.0).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An argument failed validation (wrong range, inconsistent combination).
    InvalidInput(String),
    /// A model was used outside of its domain (e.g. querying a road position
    /// past the end of the corridor).
    OutOfDomain(String),
    /// An optimization problem has no feasible solution under the supplied
    /// constraints (e.g. no velocity profile can hit every green window).
    Infeasible(String),
    /// A numeric routine failed to converge or produced a non-finite value.
    Numeric(String),
    /// A wire-protocol message was malformed or truncated.
    Protocol(String),
    /// An underlying I/O operation failed (TraCI sockets).
    Io(String),
}

impl Error {
    /// Builds an [`Error::InvalidInput`].
    pub fn invalid_input(msg: impl Into<String>) -> Self {
        Error::InvalidInput(msg.into())
    }

    /// Builds an [`Error::OutOfDomain`].
    pub fn out_of_domain(msg: impl Into<String>) -> Self {
        Error::OutOfDomain(msg.into())
    }

    /// Builds an [`Error::Infeasible`].
    pub fn infeasible(msg: impl Into<String>) -> Self {
        Error::Infeasible(msg.into())
    }

    /// Builds an [`Error::Numeric`].
    pub fn numeric(msg: impl Into<String>) -> Self {
        Error::Numeric(msg.into())
    }

    /// Builds an [`Error::Protocol`].
    pub fn protocol(msg: impl Into<String>) -> Self {
        Error::Protocol(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInput(m) => write!(f, "invalid input: {m}"),
            Error::OutOfDomain(m) => write!(f, "out of domain: {m}"),
            Error::Infeasible(m) => write!(f, "infeasible: {m}"),
            Error::Numeric(m) => write!(f, "numeric failure: {m}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = Error::invalid_input("bad step");
        assert_eq!(e.to_string(), "invalid input: bad step");
        let e = Error::infeasible("no profile");
        assert_eq!(e.to_string(), "infeasible: no profile");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("pipe"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn equality_on_variants() {
        assert_eq!(Error::numeric("x"), Error::numeric("x"));
        assert_ne!(Error::numeric("x"), Error::protocol("x"));
    }
}
