//! Shared foundations for the `velopt` workspace.
//!
//! This crate provides the small, dependency-light vocabulary that every other
//! crate in the reproduction of *"Velocity Optimization of Pure Electric
//! Vehicles with Traffic Dynamics Consideration"* (ICDCS 2017) builds on:
//!
//! * [`units`] — newtype wrappers for physical quantities ([`Meters`],
//!   [`Seconds`], [`MetersPerSecond`], …) so that a queue length can never be
//!   added to a battery capacity by accident.
//! * [`stats`] — the error metrics used in the paper's evaluation
//!   (mean relative error, root mean squared error) plus basic descriptive
//!   statistics.
//! * [`series`] — a uniformly-sampled [`TimeSeries`] used for velocity
//!   profiles, queue-length traces and traffic-volume feeds.
//! * [`interp`] — linear interpolation and piecewise-linear curves.
//! * [`rng`] — a tiny, deterministic SplitMix64 generator so that synthetic
//!   workloads are reproducible without pulling `rand` into every crate.
//! * [`par`] — deterministic chunked parallelism (scoped fan-outs and a
//!   persistent worker [`par::Team`]) shared by the DP solver and the
//!   traffic predictor's mini-batch trainer.
//! * [`error`] — the workspace-wide [`Error`] type.
//!
//! # Examples
//!
//! ```
//! use velopt_common::units::{KilometersPerHour, MetersPerSecond};
//!
//! let v = KilometersPerHour::new(54.0).to_meters_per_second();
//! assert!((v.value() - 15.0).abs() < 1e-9);
//! ```

pub mod error;
pub mod interp;
pub mod par;
pub mod rng;
pub mod series;
pub mod stats;
pub mod units;

pub use error::{Error, Result};
pub use series::TimeSeries;
pub use units::{
    AmpereHours, Amperes, KilometersPerHour, Meters, MetersPerSecond, MetersPerSecondSq, Radians,
    Seconds, VehiclesPerHour, Volts, Watts,
};
